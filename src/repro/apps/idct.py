"""``idct`` — 8x8 inverse discrete cosine transform (Powerstone/EEMBC style).

The benchmark performs a fixed-point two-dimensional IDCT on a sequence of
8x8 coefficient blocks, the core of JPEG/MPEG decoding.  The 2-D transform
is computed as two passes of 1-D 8-point transforms with a transpose in
between, so that a *single* static inner loop (the 8-tap dot product with
the cosine table) accounts for almost all multiplies — matching the paper's
"single most critical region" partitioning model.

The cosine basis is scaled by 256 and results are shifted right by 8, the
usual fixed-point arrangement for integer IDCTs of that era.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .base import Benchmark, format_initializer, wrap32
from .generators import dct_coefficients

#: Fixed-point scale of the cosine table (2**8).
COS_SCALE_SHIFT = 8


def cosine_table() -> List[int]:
    """The 8x8 scaled IDCT basis: ``table[k*8+n] = round(256*C(k)*cos((2n+1)k*pi/16))/2``."""
    table: List[int] = []
    for k in range(8):
        ck = math.sqrt(0.5) if k == 0 else 1.0
        for n in range(8):
            value = 0.5 * ck * math.cos((2 * n + 1) * k * math.pi / 16.0)
            table.append(int(round(value * (1 << COS_SCALE_SHIFT))))
    return table


_SOURCE_TEMPLATE = """\
int blocks[{total_words}] = {blocks_init};
int cos_table[64] = {cos_init};
int work[64];
int tmp[64];

int main() {{
    int blk;
    int p;
    int r;
    int n;
    int k;
    int sum;
    int checksum;
    checksum = 0;
    for (blk = 0; blk < {num_blocks}; blk = blk + 1) {{
        for (r = 0; r < 64; r = r + 1) {{
            work[r] = blocks[blk * 64 + r];
        }}
        for (p = 0; p < 2; p = p + 1) {{
            for (r = 0; r < 8; r = r + 1) {{
                for (n = 0; n < 8; n = n + 1) {{
                    sum = 0;
                    for (k = 0; k < 8; k = k + 1) {{
                        sum = sum + work[r * 8 + k] * cos_table[k * 8 + n];
                    }}
                    tmp[r * 8 + n] = sum >> {scale};
                }}
            }}
            for (r = 0; r < 8; r = r + 1) {{
                for (n = 0; n < 8; n = n + 1) {{
                    work[n * 8 + r] = tmp[r * 8 + n];
                }}
            }}
        }}
        for (r = 0; r < 64; r = r + 1) {{
            checksum = checksum + work[r] ^ (checksum >> 3);
        }}
    }}
    return checksum;
}}
"""


def idct_block_reference(block: Sequence[int], table: Sequence[int]) -> List[int]:
    """Reference fixed-point 2-D IDCT of one 8x8 block (row/column passes)."""
    work = [wrap32(v) for v in block]
    for _ in range(2):
        tmp = [0] * 64
        for r in range(8):
            for n in range(8):
                total = 0
                for k in range(8):
                    total = wrap32(total + work[r * 8 + k] * table[k * 8 + n])
                tmp[r * 8 + n] = total >> COS_SCALE_SHIFT
        for r in range(8):
            for n in range(8):
                work[n * 8 + r] = tmp[r * 8 + n]
    return work


def reference(blocks: Sequence[int], num_blocks: int) -> int:
    """Python model of the benchmark's checksum."""
    table = cosine_table()
    checksum = 0
    for blk in range(num_blocks):
        block = blocks[blk * 64:(blk + 1) * 64]
        work = idct_block_reference(block, table)
        for value in work:
            checksum = wrap32(wrap32(checksum + value) ^ (checksum >> 3))
    return checksum


def build(num_blocks: int = 4, seed: int = 0x1DC7_0003) -> Benchmark:
    """Create an ``idct`` instance transforming ``num_blocks`` 8x8 blocks."""
    blocks = dct_coefficients(seed, num_blocks)
    source = _SOURCE_TEMPLATE.format(
        total_words=64 * num_blocks,
        num_blocks=num_blocks,
        blocks_init=format_initializer(blocks),
        cos_init=format_initializer(cosine_table()),
        scale=COS_SCALE_SHIFT,
    )
    return Benchmark(
        name="idct",
        suite="Powerstone",
        description=f"fixed-point 2-D IDCT of {num_blocks} 8x8 blocks",
        source=source,
        expected_checksum=reference(blocks, num_blocks),
        kernel_description=(
            "the 8-tap dot product against the cosine table (one MAC and two "
            "array reads per iteration), shared by the row and column passes"
        ),
        kernel_function="main",
        parameters={"num_blocks": num_blocks, "seed": seed},
    )
