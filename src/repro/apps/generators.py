"""Deterministic input-data generators for the benchmark suite.

The original Powerstone / EEMBC benchmarks ship with fixed input data sets
(a fax scan line, an 8x8 DCT block, a CAN message log, ...).  We do not
have those files, so each benchmark instance embeds synthetic data produced
by a small linear congruential generator.  Using our own LCG rather than
:mod:`random` keeps the data identical across Python versions and platforms,
which in turn keeps every checksum and cycle count in ``EXPERIMENTS.md``
exactly reproducible.
"""

from __future__ import annotations

from typing import List


class DeterministicGenerator:
    """A 32-bit linear congruential generator (Numerical Recipes constants)."""

    MULTIPLIER = 1664525
    INCREMENT = 1013904223
    MASK = 0xFFFFFFFF

    def __init__(self, seed: int = 0x1234_5678):
        self.state = seed & self.MASK

    def next_u32(self) -> int:
        self.state = (self.state * self.MULTIPLIER + self.INCREMENT) & self.MASK
        return self.state

    def next_in_range(self, low: int, high: int) -> int:
        """Uniform-ish value in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError("empty range")
        span = high - low + 1
        return low + (self.next_u32() >> 8) % span

    def values(self, count: int, low: int, high: int) -> List[int]:
        return [self.next_in_range(low, high) for _ in range(count)]

    def words(self, count: int) -> List[int]:
        return [self.next_u32() for _ in range(count)]


def word_data(count: int, seed: int) -> List[int]:
    """``count`` full 32-bit words (used by ``brev`` and ``bitmnp``)."""
    return DeterministicGenerator(seed).words(count)


def small_values(count: int, seed: int, low: int = 0, high: int = 15) -> List[int]:
    """``count`` small values (used for matrices and pixel data)."""
    return DeterministicGenerator(seed).values(count, low, high)


def run_lengths(count: int, seed: int, max_run: int = 64) -> List[int]:
    """Run lengths for the fax decoder: mostly short runs with a few long ones.

    Group-3 fax lines alternate white and black runs; white runs tend to be
    long (background) and black runs short (text strokes).  The generator
    mimics that bimodal behaviour so the decoded line length is realistic.
    """
    generator = DeterministicGenerator(seed)
    lengths: List[int] = []
    for index in range(count):
        if index % 2 == 0:  # white run
            lengths.append(generator.next_in_range(8, max_run))
        else:  # black run
            lengths.append(generator.next_in_range(1, 12))
    return lengths


def can_messages(count: int, seed: int) -> List[int]:
    """Synthetic 11-bit CAN identifiers with a skewed distribution."""
    generator = DeterministicGenerator(seed)
    messages: List[int] = []
    for _ in range(count):
        base = generator.next_in_range(0, 0x7FF)
        # Cluster half the traffic around a handful of "hot" identifiers so
        # that the acceptance filter matches a realistic fraction of frames.
        if generator.next_in_range(0, 1):
            base = (base & 0x70F) | 0x120
        messages.append(base)
    return messages


def dct_coefficients(seed: int, num_blocks: int) -> List[int]:
    """Quantised DCT coefficient blocks: sparse, mostly low-frequency."""
    generator = DeterministicGenerator(seed)
    blocks: List[int] = []
    for _ in range(num_blocks):
        block = [0] * 64
        block[0] = generator.next_in_range(-512, 512)  # DC term
        for _ in range(generator.next_in_range(6, 18)):
            position = generator.next_in_range(1, 63)
            block[position] = generator.next_in_range(-128, 128)
        blocks.extend(block)
    return blocks
