"""``matmul`` — integer matrix multiplication (Powerstone).

Section 2 of the paper uses ``matmul`` to quantify the value of the
hardware multiplier: without it the compiler calls a software multiply
routine for every product, making the application 1.3x slower.  In the main
experiments its critical region — the inner product loop — is partitioned
to the WCLA where the 32-bit MAC unit performs one multiply-accumulate per
memory-limited iteration.
"""

from __future__ import annotations

from typing import List

from .base import Benchmark, format_initializer, wrap32
from .generators import small_values

_SOURCE_TEMPLATE = """\
int mat_a[{elements}] = {a_init};
int mat_b[{elements}] = {b_init};
int mat_c[{elements}];

int main() {{
    int i;
    int j;
    int k;
    int sum;
    int checksum;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            sum = 0;
            for (k = 0; k < {n}; k = k + 1) {{
                sum = sum + mat_a[i * {n} + k] * mat_b[k * {n} + j];
            }}
            mat_c[i * {n} + j] = sum;
        }}
    }}
    checksum = 0;
    for (i = 0; i < {elements}; i = i + 1) {{
        checksum = checksum + mat_c[i] ^ (checksum >> 5);
    }}
    return checksum;
}}
"""


def multiply_reference(a: List[int], b: List[int], n: int) -> List[int]:
    """Reference integer matrix product."""
    c = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            total = 0
            for k in range(n):
                total = wrap32(total + a[i * n + k] * b[k * n + j])
            c[i * n + j] = total
    return c


def reference(a: List[int], b: List[int], n: int) -> int:
    """Python model of the benchmark's checksum.

    Mirrors the kernel-language checksum loop, including its operator
    precedence: ``checksum + mat_c[i] ^ (checksum >> 5)`` parses as
    ``(checksum + mat_c[i]) ^ (checksum >> 5)`` because ``^`` binds more
    loosely than ``+``.
    """
    c = multiply_reference(a, b, n)
    checksum = 0
    for value in c:
        checksum = wrap32(wrap32(checksum + value) ^ (checksum >> 5))
    return checksum


def build(n: int = 14, seed: int = 0x3A7_0002) -> Benchmark:
    """Create a ``matmul`` instance multiplying two ``n`` x ``n`` matrices."""
    elements = n * n
    a = small_values(elements, seed, low=0, high=15)
    b = small_values(elements, seed + 1, low=0, high=15)
    source = _SOURCE_TEMPLATE.format(
        n=n,
        elements=elements,
        a_init=format_initializer(a),
        b_init=format_initializer(b),
    )
    return Benchmark(
        name="matmul",
        suite="Powerstone",
        description=f"{n}x{n} integer matrix multiplication",
        source=source,
        expected_checksum=reference(a, b, n),
        kernel_description=(
            "the inner-product loop (one multiply-accumulate and two array "
            "reads per iteration), mapped onto the WCLA's 32-bit MAC"
        ),
        kernel_function="main",
        parameters={"n": n, "seed": seed},
    )
