"""Benchmark infrastructure.

The paper evaluates warp processing on six embedded benchmark applications
drawn from the Motorola Powerstone suite and from EEMBC: ``brev``,
``g3fax``, ``canrdr``, ``bitmnp``, ``idct`` and ``matmul``.  The original
sources are proprietary, so :mod:`repro.apps` re-implements each kernel in
the kernel language with the same computational structure (bit reversal,
run-length fax decoding, CAN message filtering, bit manipulation, 8-point
IDCT, integer matrix multiply) and with deterministic, seeded input data.

Every benchmark provides

* the kernel-language source with the input data embedded as global array
  initialisers,
* a pure-Python reference model that computes the expected checksum, used
  by the tests to prove the compiler + simulator + warp flow are
  functionally correct,
* a description of which loop constitutes the critical kernel, mirroring
  the "single most critical region" the paper's profiler selects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

_WORD_MASK = 0xFFFFFFFF


def wrap32(value: int) -> int:
    """Wrap ``value`` to signed 32-bit two's complement (Python int)."""
    value &= _WORD_MASK
    if value >= 0x8000_0000:
        value -= 0x1_0000_0000
    return value


def uwrap32(value: int) -> int:
    """Wrap ``value`` to an unsigned 32-bit bit pattern."""
    return value & _WORD_MASK


def format_initializer(values: Sequence[int]) -> str:
    """Render an initialiser list for embedding in kernel-language source."""
    return "{" + ", ".join(str(wrap32(v)) for v in values) + "}"


@dataclass
class Benchmark:
    """One benchmark application ready to be compiled and executed."""

    #: Short name as used in the paper's figures (e.g. ``"brev"``).
    name: str
    #: Which suite the original came from (``"Powerstone"`` or ``"EEMBC"``).
    suite: str
    #: One-line description of the computation.
    description: str
    #: Kernel-language source text with input data embedded.
    source: str
    #: Expected checksum (the value returned by ``main``).
    expected_checksum: int
    #: Human-readable description of the critical kernel.
    kernel_description: str
    #: Name of the function containing the critical loop (for reporting).
    kernel_function: str = "main"
    #: Free-form parameters used to generate the instance.
    parameters: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.expected_checksum = wrap32(self.expected_checksum)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Benchmark({self.name!r}, checksum={self.expected_checksum})"


class BenchmarkRegistry:
    """Registry of benchmark factory functions keyed by name."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Benchmark]] = {}

    def register(self, name: str, factory: Callable[..., Benchmark]) -> None:
        if name in self._factories:
            raise ValueError(f"benchmark {name!r} already registered")
        self._factories[name] = factory

    def names(self) -> List[str]:
        return list(self._factories.keys())

    def build(self, name: str, **kwargs) -> Benchmark:
        if name not in self._factories:
            raise KeyError(f"unknown benchmark {name!r}; known: {self.names()}")
        return self._factories[name](**kwargs)

    def build_all(self, **kwargs) -> List[Benchmark]:
        return [self.build(name, **kwargs) for name in self.names()]


#: The global registry used by :mod:`repro.apps.suite`.
REGISTRY = BenchmarkRegistry()
