"""``canrdr`` — CAN remote data request processing (EEMBC automotive).

The EEMBC ``canrdr`` kernel models a controller-area-network node scanning
received frames, applying an acceptance filter to each identifier and
handling the frames that match.  Our re-implementation walks a log of CAN
identifiers and payload words; for every frame whose masked identifier
matches the acceptance code it updates a match counter and folds the
payload into a running response checksum.

The critical region is the single scan loop: two unit-stride array reads,
a mask/compare, and two conditionally-updated accumulators — a loop the
synthesis flow implements with predicated (multiplexed) register updates.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import Benchmark, format_initializer, wrap32
from .generators import DeterministicGenerator, can_messages

#: Acceptance filter reproduced in both the kernel source and the reference.
ACCEPT_MASK = 0x70F
ACCEPT_CODE = 0x100

_SOURCE_TEMPLATE = """\
int msg_id[{count}] = {id_init};
int msg_data[{count}] = {data_init};

int main() {{
    int i;
    int id;
    int matched;
    int response;
    matched = 0;
    response = 0;
    for (i = 0; i < {count}; i = i + 1) {{
        id = msg_id[i];
        if ((id & {mask}) == {code}) {{
            matched = matched + 1;
            response = response + (msg_data[i] ^ id);
        }}
    }}
    return response + matched * 1024 + {count};
}}
"""


def reference(identifiers: Sequence[int], payloads: Sequence[int]) -> int:
    """Python model of the benchmark's checksum."""
    matched = 0
    response = 0
    for identifier, payload in zip(identifiers, payloads):
        if (identifier & ACCEPT_MASK) == ACCEPT_CODE:
            matched += 1
            response = wrap32(response + (wrap32(payload) ^ identifier))
    return wrap32(response + matched * 1024 + len(identifiers))


def build(count: int = 512, seed: int = 0xCA0D_0005) -> Benchmark:
    """Create a ``canrdr`` instance scanning ``count`` CAN frames."""
    identifiers = can_messages(count, seed)
    payloads = DeterministicGenerator(seed ^ 0x5A5A_5A5A).values(count, 0, 0xFFFF)
    source = _SOURCE_TEMPLATE.format(
        count=count,
        id_init=format_initializer(identifiers),
        data_init=format_initializer(payloads),
        mask=ACCEPT_MASK,
        code=ACCEPT_CODE,
    )
    return Benchmark(
        name="canrdr",
        suite="EEMBC",
        description="CAN remote-data-request frame filtering and response",
        source=source,
        expected_checksum=reference(identifiers, payloads),
        kernel_description=(
            "the frame scan loop: two unit-stride reads, an identifier "
            "mask/compare, and two predicated accumulator updates"
        ),
        kernel_function="main",
        parameters={"count": count, "seed": seed},
    )
