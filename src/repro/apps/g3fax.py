"""``g3fax`` — Group-3 fax run-length decoding (Powerstone).

The Powerstone ``g3fax`` benchmark decodes Group-3 encoded fax scan lines
into pixel runs.  Our re-implementation keeps the structure that matters to
the warp-processing study: an outer loop walks the run-length codes of the
encoded lines and an inner fill loop writes each run of identical pixels
into the scan-line buffer.  The inner fill loop — a single store with an
address that advances by one each iteration — is the critical region and is
precisely the kind of regular-access-pattern loop the WCLA's data address
generator supports.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import Benchmark, format_initializer, wrap32
from .generators import run_lengths

_SOURCE_TEMPLATE = """\
int runs[{num_runs}] = {runs_init};
int line[{line_capacity}];

int main() {{
    int i;
    int j;
    int len;
    int color;
    int p;
    int checksum;
    checksum = 0;
    p = 0;
    color = 0;
    for (i = 0; i < {num_runs}; i = i + 1) {{
        len = runs[i];
        for (j = 0; j < len; j = j + 1) {{
            line[p + j] = color;
        }}
        p = p + len;
        color = 1 - color;
        checksum = checksum + p + color;
    }}
    checksum = checksum + line[0] + line[p - 1] + p * 8;
    return checksum;
}}
"""


def decode_reference(runs: Sequence[int]) -> List[int]:
    """Reference run-length decode into a pixel line."""
    line: List[int] = []
    color = 0
    for length in runs:
        line.extend([color] * length)
        color = 1 - color
    return line


def reference(runs: Sequence[int]) -> int:
    """Python model of the benchmark's checksum."""
    checksum = 0
    position = 0
    color = 0
    for length in runs:
        position += length
        color = 1 - color
        checksum = wrap32(checksum + position + color)
    line = decode_reference(runs)
    checksum = wrap32(checksum + line[0] + line[position - 1] + position * 8)
    return checksum


def build(num_runs: int = 96, seed: int = 0xFA40_0004,
          line_capacity: int = 4096) -> Benchmark:
    """Create a ``g3fax`` instance decoding ``num_runs`` run-length codes."""
    runs = run_lengths(num_runs, seed)
    total_pixels = sum(runs)
    if total_pixels > line_capacity:
        raise ValueError("decoded line does not fit the line buffer")
    source = _SOURCE_TEMPLATE.format(
        num_runs=num_runs,
        runs_init=format_initializer(runs),
        line_capacity=line_capacity,
    )
    return Benchmark(
        name="g3fax",
        suite="Powerstone",
        description="Group-3 fax run-length decoding of scan lines",
        source=source,
        expected_checksum=reference(runs),
        kernel_description=(
            "the run fill loop that stores one pixel per iteration at a "
            "unit-stride address"
        ),
        kernel_function="main",
        parameters={"num_runs": num_runs, "seed": seed,
                    "total_pixels": total_pixels},
    )
