"""Benchmark suite registry.

Provides the six-application suite of the paper's evaluation (Figures 6 and
7) plus helpers to build every benchmark with its default parameters or
with scaled-down parameters for quick tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import bitmnp, brev, canrdr, g3fax, idct, matmul
from .base import REGISTRY, Benchmark

#: Benchmark order as it appears on the x-axis of Figures 6 and 7.
PAPER_ORDER = ("brev", "g3fax", "canrdr", "bitmnp", "idct", "matmul")

_BUILDERS = {
    "brev": brev.build,
    "g3fax": g3fax.build,
    "canrdr": canrdr.build,
    "bitmnp": bitmnp.build,
    "idct": idct.build,
    "matmul": matmul.build,
}

for _name, _builder in _BUILDERS.items():
    REGISTRY.register(_name, _builder)

#: Reduced-size parameters used by fast unit tests (same code paths, less time).
SMALL_PARAMETERS: Dict[str, Dict[str, int]] = {
    "brev": {"count": 32},
    "g3fax": {"num_runs": 16},
    "canrdr": {"count": 64},
    "bitmnp": {"count": 32},
    "idct": {"num_blocks": 1},
    "matmul": {"n": 6},
}


def benchmark_names() -> List[str]:
    """The benchmark names in the order used by the paper's figures."""
    return list(PAPER_ORDER)


def build_benchmark(name: str, small: bool = False, **overrides) -> Benchmark:
    """Build one benchmark by name.

    ``small=True`` applies the reduced-size parameters used by the unit
    tests; explicit keyword ``overrides`` always win.
    """
    if name not in _BUILDERS:
        raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}")
    parameters = dict(SMALL_PARAMETERS.get(name, {})) if small else {}
    parameters.update(overrides)
    return _BUILDERS[name](**parameters)


def build_suite(small: bool = False,
                names: Optional[List[str]] = None) -> List[Benchmark]:
    """Build the full suite (or ``names``) in paper order."""
    selected = names if names is not None else benchmark_names()
    return [build_benchmark(name, small=small) for name in selected]
