"""``bitmnp`` — bit manipulation (EEMBC automotive).

The EEMBC automotive ``bitmnp01`` kernel exercises bit-level manipulation:
shifting, masking, and counting bits of data words, followed by a
formatting phase that arranges the results for a display buffer.  Our
re-implementation keeps both phases:

* the *analysis* loop (the critical region) mixes each input word with
  shift/XOR operations and counts its set bits with the SWAR
  shift/mask/add network — all constant-distance shifts, so the hardware
  implementation is wires plus a few adders;
* the *formatting* loop packs the per-word counts into nibble groups and
  remains in software, which keeps the kernel fraction of this benchmark
  below that of ``brev`` just as in the paper's Figure 6.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import Benchmark, format_initializer, wrap32, uwrap32
from .generators import word_data

_SOURCE_TEMPLATE = """\
int data[{count}] = {data_init};
int counts[{count}];
int packed[{packed_words}];

int main() {{
    int i;
    int v;
    int c;
    int checksum;
    int acc;
    int slot;
    checksum = 0;
    for (i = 0; i < {count}; i = i + 1) {{
        v = data[i];
        v = v ^ (v >> 13);
        v = (v & 0x0000FFFF) | ((v << 7) & 0x7FFF0000);
        c = v - ((v >> 1) & 0x55555555);
        c = (c & 0x33333333) + ((c >> 2) & 0x33333333);
        c = (c + (c >> 4)) & 0x0F0F0F0F;
        c = c + (c >> 8);
        c = c + (c >> 16);
        c = c & 63;
        counts[i] = c;
        checksum = checksum ^ (c + (v & 255));
    }}
    for (i = 0; i < {packed_words}; i = i + 1) {{
        acc = 0;
        for (slot = 0; slot < 4; slot = slot + 1) {{
            acc = (acc << 8) | (counts[i * 4 + slot] & 255);
        }}
        packed[i] = acc;
        checksum = checksum + acc;
    }}
    return checksum;
}}
"""


def mix_and_count(value: int) -> int:
    """Reference model of the per-word analysis step (mix then popcount)."""
    v = wrap32(value)
    v = wrap32(v ^ (v >> 13))
    v = wrap32((v & 0x0000FFFF) | (wrap32(v << 7) & 0x7FFF0000))
    c = wrap32(v - ((v >> 1) & 0x55555555))
    c = wrap32((c & 0x33333333) + ((c >> 2) & 0x33333333))
    c = wrap32((c + (c >> 4)) & 0x0F0F0F0F)
    c = wrap32(c + (c >> 8))
    c = wrap32(c + (c >> 16))
    return c & 63


def mixed_value(value: int) -> int:
    """The mixed word whose low byte feeds the checksum."""
    v = wrap32(value)
    v = wrap32(v ^ (v >> 13))
    v = wrap32((v & 0x0000FFFF) | (wrap32(v << 7) & 0x7FFF0000))
    return v


def reference(values: Sequence[int]) -> int:
    """Python model of the benchmark's checksum."""
    checksum = 0
    counts: List[int] = []
    for value in values:
        count = mix_and_count(value)
        counts.append(count)
        checksum = wrap32(checksum ^ wrap32(count + (mixed_value(value) & 255)))
    for i in range(len(values) // 4):
        acc = 0
        for slot in range(4):
            acc = wrap32(wrap32(acc << 8) | (counts[i * 4 + slot] & 255))
        checksum = wrap32(checksum + acc)
    return checksum


def build(count: int = 256, seed: int = 0xB17_0006) -> Benchmark:
    """Create a ``bitmnp`` instance analysing ``count`` data words."""
    if count % 4:
        raise ValueError("count must be a multiple of 4 for the packing loop")
    values = word_data(count, seed)
    source = _SOURCE_TEMPLATE.format(
        count=count,
        packed_words=count // 4,
        data_init=format_initializer(values),
    )
    return Benchmark(
        name="bitmnp",
        suite="EEMBC",
        description="bit manipulation: word mixing, population count, packing",
        source=source,
        expected_checksum=reference(values),
        kernel_description=(
            "the per-word mix + SWAR population-count loop (constant shifts, "
            "masks and adds); the packing loop stays in software"
        ),
        kernel_function="main",
        parameters={"count": count, "seed": seed},
    )
