"""``brev`` — bit reversal (Powerstone).

The paper singles ``brev`` out twice: its critical kernel "performs an
efficient bit reversal but heavily relies on shift operations", which makes
it 2.1x slower when the MicroBlaze is configured without the barrel shifter
and multiplier (Section 2), and it is the best case for warp processing —
after partitioning, "the resulting hardware circuit is much more efficient,
requiring only wires to implement the bit reversal", yielding the 16.9x
speedup that dominates Figure 6.

Our re-implementation reverses the 32 bits of every word of an input block
using the classic five-stage shift/mask/merge network, exactly the pattern
that collapses into wires once mapped to hardware.
"""

from __future__ import annotations

from typing import List

from .base import Benchmark, format_initializer, wrap32, uwrap32
from .generators import word_data

_SOURCE_TEMPLATE = """\
int input[{count}] = {input_init};
int output[{count}];

int main() {{
    int i;
    int x;
    int checksum;
    int parity;
    checksum = 0;
    for (i = 0; i < {count}; i = i + 1) {{
        x = input[i];
        x = ((x >> 1) & 0x55555555) | ((x << 1) & 0xAAAAAAAA);
        x = ((x >> 2) & 0x33333333) | ((x << 2) & 0xCCCCCCCC);
        x = ((x >> 4) & 0x0F0F0F0F) | ((x << 4) & 0xF0F0F0F0);
        x = ((x >> 8) & 0x00FF00FF) | ((x << 8) & 0xFF00FF00);
        x = ((x >> 16) & 0x0000FFFF) | ((x << 16) & 0xFFFF0000);
        output[i] = x;
        checksum = checksum ^ (x + i);
    }}
    parity = 0;
    for (i = 0; i < {count}; i = i + 4) {{
        parity = parity ^ output[i];
    }}
    return checksum + parity;
}}
"""


def reverse_bits32(value: int) -> int:
    """Reference bit reversal of a 32-bit word (matches the kernel exactly)."""
    x = uwrap32(value)
    x = ((x >> 1) & 0x55555555) | ((x << 1) & 0xAAAAAAAA)
    x = ((x >> 2) & 0x33333333) | ((x << 2) & 0xCCCCCCCC)
    x = ((x >> 4) & 0x0F0F0F0F) | ((x << 4) & 0xF0F0F0F0)
    x = ((x >> 8) & 0x00FF00FF) | ((x << 8) & 0xFF00FF00)
    x = ((x >> 16) & 0x0000FFFF) | ((x << 16) & 0xFFFF0000)
    return uwrap32(x)


def reference(values: List[int]) -> int:
    """Python model of the benchmark's checksum."""
    checksum = 0
    reversed_words = [reverse_bits32(value) for value in values]
    for index, reversed_word in enumerate(reversed_words):
        checksum = uwrap32(checksum ^ uwrap32(reversed_word + index))
    parity = 0
    for index in range(0, len(values), 4):
        parity = uwrap32(parity ^ reversed_words[index])
    return wrap32(checksum + parity)


def build(count: int = 256, seed: int = 0xB1E5_0001) -> Benchmark:
    """Create a ``brev`` instance over ``count`` pseudo-random words."""
    values = word_data(count, seed)
    source = _SOURCE_TEMPLATE.format(
        count=count,
        input_init=format_initializer(values),
    )
    return Benchmark(
        name="brev",
        suite="Powerstone",
        description="bit reversal of a block of 32-bit words",
        source=source,
        expected_checksum=reference(values),
        kernel_description=(
            "the per-word five-stage shift/mask bit-reversal loop; in "
            "hardware the reversal reduces to wiring"
        ),
        kernel_function="main",
        parameters={"count": count, "seed": seed},
    )
