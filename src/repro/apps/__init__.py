"""Powerstone / EEMBC-style benchmark applications.

Re-implementations (in the kernel language) of the six embedded benchmarks
the paper evaluates — ``brev``, ``g3fax``, ``canrdr``, ``bitmnp``, ``idct``
and ``matmul`` — together with deterministic input-data generators and
pure-Python reference models used to verify functional correctness of the
whole compile → simulate → warp flow.
"""

from .base import Benchmark, BenchmarkRegistry, REGISTRY, format_initializer, uwrap32, wrap32
from .suite import (
    PAPER_ORDER,
    SMALL_PARAMETERS,
    benchmark_names,
    build_benchmark,
    build_suite,
)

__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "REGISTRY",
    "format_initializer",
    "uwrap32",
    "wrap32",
    "PAPER_ORDER",
    "SMALL_PARAMETERS",
    "benchmark_names",
    "build_benchmark",
    "build_suite",
]
