"""Differential fuzzing fleet for the warp simulator engine registry.

Three layers, each usable on its own:

- :mod:`repro.fuzz.generator` — seeded random MicroBlaze program
  generation (weighted profiles, nested loops, delay slots, imm prefixes,
  near-fault addressing, OPB traffic), reproducible from
  ``(seed, profile)`` and shrinkable.
- :mod:`repro.fuzz.harness` — run one program (or a whole campaign)
  across every registered engine and compare checksums, registers, BRAM
  images, statistics, memory-port counters and profiler rankings against
  the reference interpreter.
- :mod:`repro.fuzz.bisect` — on divergence, binary-search the first
  divergent instruction with engine-independent ``WARPCKPT`` checkpoints
  and :func:`repro.microblaze.checkpoint.run_slice` budget splitting, and
  emit a re-runnable :class:`~repro.fuzz.bisect.ReproBundle`.
"""

from .bisect import ReproBundle, bisect_divergence
from .generator import (
    GeneratorProfile,
    PROFILES,
    generate_program,
    generate_source,
    num_blocks,
    profile_names,
    resolve_profile,
    shrink,
)
from .harness import (
    CampaignReport,
    Divergence,
    EngineObservation,
    ProgramVerdict,
    REFERENCE_ENGINE,
    check_program,
    classify_divergence,
    fuzz_peripherals,
    observe,
    run_campaign,
)

__all__ = [
    "CampaignReport",
    "Divergence",
    "EngineObservation",
    "GeneratorProfile",
    "PROFILES",
    "ProgramVerdict",
    "REFERENCE_ENGINE",
    "ReproBundle",
    "bisect_divergence",
    "check_program",
    "classify_divergence",
    "fuzz_peripherals",
    "generate_program",
    "generate_source",
    "num_blocks",
    "observe",
    "profile_names",
    "resolve_profile",
    "run_campaign",
    "shrink",
]
