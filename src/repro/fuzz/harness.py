"""Registry-wide differential execution of generated programs.

For one generated kernel the harness runs the reference interpreter and
every other registered engine (optionally also in ``precise_fault_stats``
mode), captures a full :class:`EngineObservation` from each run — outcome,
checksum, register file, program counter, data image, execution
statistics, memory-port counters, OPB traffic and the on-chip profiler's
rankings — and reports every component in which an engine disagrees with
the reference.

The ROADMAP carries one *documented* divergence: default-mode
(non-``precise_fault_stats``) block engines may skew statistics when a
runtime fault lands mid-block, with identical register file and data
memory (the tier-1 guarantee tested by
``test_default_mode_keeps_architectural_state``).  The harness classifies
exactly that shape — default mode, both runs faulted with the same error,
differences confined to the statistics-derived components (``stats``,
port counters, ``profiler``) and the fault-time ``pc`` — as a **known**
divergence (its own counter and report field) so a campaign surfaces it
without drowning real bugs in it.  A second, narrower known shape exists
in precise mode: block scanners fetch ahead of execution, so a faulted
run may over-count the *instruction* fetch port by the lookahead words
(``instr_ports`` only).  Everything else is *unexplained* and fails the
campaign.

:func:`run_campaign` is the fleet entry point: a seed range through one
profile, every engine, counters published to the live telemetry plane
(``warp_fuzz_*`` families) and divergences automatically bisected to a
replayable repro bundle (see :mod:`repro.fuzz.bisect`).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..isa.program import Program
from ..microblaze import (
    ExecutionLimitExceeded,
    MicroBlazeSystem,
    PAPER_CONFIG,
)
from ..microblaze.config import MicroBlazeConfig
from ..microblaze.engines import engine_names, validate_engine_name
from ..microblaze.opb import OPB_BASE_ADDRESS, SimplePeripheral
from ..profiler.profiler import OnChipProfiler
from .generator import generate_program, resolve_profile

#: Reference engine every other engine is compared against.
REFERENCE_ENGINE = "interp"

#: Promotion threshold installed on threshold-capable engines so the
#: region engine actually forms fused regions inside the short generated
#: kernels (mirrors the registry-wide differential test suite).
DEFAULT_HOT_THRESHOLD = 8

#: Default per-run instruction budget.  Generated programs are bounded by
#: construction (all loops are down-counters); an engine that fails to
#: terminate within this budget shows up as an ``outcome`` divergence.
DEFAULT_MAX_INSTRUCTIONS = 2_000_000


def fuzz_peripherals() -> Tuple[SimplePeripheral, ...]:
    """Fresh peripherals for one run of an OPB-traffic program (one
    4-register device at the OPB base, matching the generator's window)."""
    return (SimplePeripheral(OPB_BASE_ADDRESS, num_registers=4,
                             name="fuzz-opb"),)


# ------------------------------------------------------------------ observation
@dataclass
class EngineObservation:
    """Everything one engine's run of one program exposes for comparison."""

    engine: str
    precise_fault_stats: bool
    #: ``"halted"`` | ``"fault"`` | ``"limit"``
    outcome: str
    error: Optional[str]
    checksum: int
    pc: int
    registers: List[int]
    stats: Dict
    ports: Dict[str, int]
    opb: Dict[str, object]
    profiler: Dict[str, object]
    #: Full data BRAM image (kept for state diffs; compared via digest).
    data: bytes = b""

    def comparable(self) -> Dict[str, object]:
        """The named components a differential comparison runs over."""
        return {
            "outcome": (self.outcome, self.error),
            "checksum": self.checksum,
            "registers": tuple(self.registers),
            "pc": self.pc,
            "data": hashlib.sha256(self.data).hexdigest(),
            "stats": tuple(sorted(self.stats.items(),
                                  key=lambda item: repr(item[0]))),
            # Instruction- and data-side port counters are separate
            # components: translation lookahead legitimately skews the
            # instruction side on faulted runs, never the data side.
            "instr_ports": tuple(sorted(
                (key, count) for key, count in self.ports.items()
                if key.startswith("instr"))),
            "data_ports": tuple(sorted(
                (key, count) for key, count in self.ports.items()
                if not key.startswith("instr"))),
            "opb": tuple(sorted((key, repr(value))
                                for key, value in self.opb.items())),
            "profiler": tuple(sorted((key, repr(value))
                                     for key, value in
                                     self.profiler.items())),
        }


def _build_system(engine: str, precise_fault_stats: bool,
                  config: MicroBlazeConfig, with_opb: bool,
                  hot_threshold: Optional[int]) -> MicroBlazeSystem:
    peripherals = fuzz_peripherals() if with_opb else ()
    system = MicroBlazeSystem(config=config, peripherals=peripherals,
                              engine=engine,
                              precise_fault_stats=precise_fault_stats)
    impl = system.cpu._engine_impl
    if hot_threshold is not None and hasattr(impl, "hot_threshold"):
        impl.hot_threshold = hot_threshold
    return system


def observe(program: Program, engine: str, *,
            precise_fault_stats: bool = False,
            config: MicroBlazeConfig = PAPER_CONFIG,
            with_opb: bool = False,
            hot_threshold: Optional[int] = DEFAULT_HOT_THRESHOLD,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            ) -> EngineObservation:
    """Run ``program`` once on ``engine`` and capture the full observation.

    Faults and budget exhaustion are observations, not errors: the
    *outcome* (including the fault type and message) is itself a compared
    component, so an engine that faults differently — or fails to
    terminate when the reference halts — diverges loudly.
    """
    system = _build_system(engine, precise_fault_stats, config, with_opb,
                           hot_threshold)
    profiler = OnChipProfiler()
    system.cpu.add_listener(profiler)
    outcome, error = "halted", None
    try:
        try:
            system.run(program, max_instructions=max_instructions)
        finally:
            system.cpu.remove_listener(profiler)
    except ExecutionLimitExceeded as limit:
        outcome, error = "limit", f"{type(limit).__name__}: {limit}"
    except Exception as fault:  # noqa: BLE001 - fault type is compared
        outcome, error = "fault", f"{type(fault).__name__}: {fault}"
    opb_state: Dict[str, object] = {
        "reads": system.opb.reads,
        "writes": system.opb.writes,
    }
    for peripheral in system.opb.peripherals:
        snapshot = getattr(peripheral, "snapshot_state", None)
        if callable(snapshot):
            opb_state[peripheral.name] = snapshot()
    return EngineObservation(
        engine=engine,
        precise_fault_stats=precise_fault_stats,
        outcome=outcome,
        error=error,
        checksum=system.cpu.read_register(3),
        pc=system.cpu.pc,
        registers=list(system.cpu.registers),
        stats=system.cpu.stats.to_plain(),
        ports={
            "data_a": system.data_bram.port_a_accesses,
            "data_b": system.data_bram.port_b_accesses,
            "instr_a": system.instr_bram.port_a_accesses,
            "instr_b": system.instr_bram.port_b_accesses,
        },
        opb=opb_state,
        profiler={
            "critical_regions": profiler.critical_regions(),
            "edge_counts": profiler.edge_counts,
            "totals": (profiler.total_branches, profiler.backward_taken,
                       profiler.instructions_observed),
        },
        data=bytes(system.data_bram.storage),
    )


# ------------------------------------------------------------------- divergence
@dataclass
class Divergence:
    """One engine disagreeing with the reference on one program."""

    seed: int
    profile: str
    engine: str
    reference: str
    precise_fault_stats: bool
    #: Names of the differing observation components.
    fields: Tuple[str, ...]
    #: True when this is the ROADMAP's documented default-mode
    #: mid-block-fault statistics skew (two identically-faulted runs with
    #: ``precise_fault_stats=False`` differing only in statistics-derived
    #: components and the fault-time pc).
    known: bool

    def to_plain(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "engine": self.engine,
            "reference": self.reference,
            "precise_fault_stats": self.precise_fault_stats,
            "fields": list(self.fields),
            "known": self.known,
        }


#: Components default-mode block engines may legitimately skew when a
#: fault lands mid-block: the deferred statistics themselves, anything
#: derived from the instruction stream (port counters, profiler
#: rankings) and the fault-time pc.  Registers, checksum, data image,
#: OPB state and the outcome (fault type + message) must still match —
#: the tier-1 architectural guarantee.
KNOWN_FAULT_SKEW_FIELDS = frozenset({"stats", "instr_ports", "data_ports",
                                     "profiler", "pc"})

#: In ``precise_fault_stats`` mode the execution statistics, fault pc and
#: data side are interpreter-exact; only the instruction-fetch port may
#: still over-count on a faulted run, by the words the block scanner
#: fetched past the fault point (translation lookahead).
KNOWN_PRECISE_FAULT_SKEW_FIELDS = frozenset({"instr_ports"})


def classify_divergence(fields: Sequence[str], *, precise_fault_stats: bool,
                        reference_outcome: str, engine_outcome: str) -> bool:
    """True when a divergence matches a documented known shape."""
    if reference_outcome != "fault" or engine_outcome != "fault":
        return False
    allowed = KNOWN_PRECISE_FAULT_SKEW_FIELDS if precise_fault_stats \
        else KNOWN_FAULT_SKEW_FIELDS
    return set(fields) <= allowed


def compare_observations(reference: EngineObservation,
                         observed: EngineObservation) -> Tuple[str, ...]:
    """Names of the components in which ``observed`` differs."""
    left, right = reference.comparable(), observed.comparable()
    return tuple(name for name in left if left[name] != right[name])


@dataclass
class ProgramVerdict:
    """Differential outcome of one generated program across the fleet."""

    seed: int
    profile: str
    engines: Tuple[str, ...]
    #: Reference-run instruction count (per precise mode).
    instructions: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def unexplained(self) -> List[Divergence]:
        return [d for d in self.divergences if not d.known]

    @property
    def known(self) -> List[Divergence]:
        return [d for d in self.divergences if d.known]


def check_program(program: Program, *, seed: int = -1, profile: str = "?",
                  engines: Optional[Sequence[str]] = None,
                  precise_modes: Sequence[bool] = (False,),
                  config: MicroBlazeConfig = PAPER_CONFIG,
                  with_opb: bool = False,
                  hot_threshold: Optional[int] = DEFAULT_HOT_THRESHOLD,
                  max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                  ) -> ProgramVerdict:
    """Run ``program`` across every engine (× precise modes) and compare
    each against the reference interpreter."""
    if engines is None:
        engines = engine_names()
    engines = tuple(validate_engine_name(name) for name in engines)
    verdict = ProgramVerdict(seed=seed, profile=profile, engines=engines,
                             instructions=0)
    for precise in precise_modes:
        reference = observe(program, REFERENCE_ENGINE,
                            precise_fault_stats=precise, config=config,
                            with_opb=with_opb, hot_threshold=hot_threshold,
                            max_instructions=max_instructions)
        verdict.instructions = max(verdict.instructions,
                                   reference.stats["instructions"])
        for engine in engines:
            if engine == REFERENCE_ENGINE:
                continue
            observed = observe(program, engine, precise_fault_stats=precise,
                               config=config, with_opb=with_opb,
                               hot_threshold=hot_threshold,
                               max_instructions=max_instructions)
            fields = compare_observations(reference, observed)
            if fields:
                verdict.divergences.append(Divergence(
                    seed=seed, profile=profile, engine=engine,
                    reference=REFERENCE_ENGINE, precise_fault_stats=precise,
                    fields=fields,
                    known=classify_divergence(
                        fields, precise_fault_stats=precise,
                        reference_outcome=reference.outcome,
                        engine_outcome=observed.outcome),
                ))
    return verdict


# --------------------------------------------------------------------- campaign
@dataclass
class CampaignReport:
    """Aggregate of one fuzzing campaign (one seed range, one profile)."""

    profile: str
    engines: Tuple[str, ...]
    precise_modes: Tuple[bool, ...]
    start_seed: int
    programs: int = 0
    #: Instructions executed across every engine run of the campaign.
    instructions: int = 0
    divergences: List[Dict] = field(default_factory=list)
    known_divergences: int = 0
    unexplained_divergences: int = 0
    bisect_steps: int = 0
    bundles: List[Dict] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def programs_per_second(self) -> float:
        return self.programs / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.wall_seconds \
            if self.wall_seconds else 0.0

    def to_plain(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "engines": list(self.engines),
            "precise_modes": list(self.precise_modes),
            "start_seed": self.start_seed,
            "programs": self.programs,
            "instructions": self.instructions,
            "divergences": list(self.divergences),
            "known_divergences": self.known_divergences,
            "unexplained_divergences": self.unexplained_divergences,
            "bisect_steps": self.bisect_steps,
            "bundles": list(self.bundles),
            "wall_seconds": round(self.wall_seconds, 4),
            "programs_per_second": round(self.programs_per_second, 2),
            "instructions_per_second": round(self.instructions_per_second, 1),
        }


def run_campaign(count: int, *, start_seed: int = 0, profile="mixed",
                 engines: Optional[Sequence[str]] = None,
                 precise_modes: Sequence[bool] = (False,),
                 config: MicroBlazeConfig = PAPER_CONFIG,
                 hot_threshold: Optional[int] = DEFAULT_HOT_THRESHOLD,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 bisect_divergences: bool = True,
                 time_budget_s: Optional[float] = None) -> CampaignReport:
    """Fuzz ``count`` consecutive seeds of ``profile`` across the fleet.

    Divergent programs are bisected to their first divergent instruction
    and packaged as replayable repro bundles (unless
    ``bisect_divergences=False``).  ``time_budget_s`` stops the campaign
    early at a program boundary — the report says how many programs
    actually ran.  Counters land in the live telemetry plane when one is
    installed (``warp_fuzz_programs_total``, ``warp_fuzz_instructions_-
    total``, ``warp_fuzz_divergences_total``, ``warp_fuzz_bisect_steps_-
    total``).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    resolved = resolve_profile(profile)
    if engines is None:
        engines = engine_names()
    engines = tuple(validate_engine_name(name) for name in engines)
    precise_modes = tuple(precise_modes)
    report = CampaignReport(profile=resolved.name, engines=engines,
                            precise_modes=precise_modes,
                            start_seed=start_seed)
    runs_per_program = len(precise_modes) * len(engines)
    start = time.perf_counter()
    for seed in range(start_seed, start_seed + count):
        if time_budget_s is not None \
                and time.perf_counter() - start >= time_budget_s:
            break
        program = generate_program(seed, resolved)
        verdict = check_program(
            program, seed=seed, profile=resolved.name, engines=engines,
            precise_modes=precise_modes, config=config,
            with_opb=resolved.opb_traffic, hot_threshold=hot_threshold,
            max_instructions=max_instructions)
        report.programs += 1
        # Every engine (reference included) executes the whole program, so
        # the fuzzed-instruction tally scales with the fleet width.
        executed = verdict.instructions * max(1, runs_per_program)
        report.instructions += executed
        if obs.ACTIVE is not None:
            obs.inc("warp_fuzz_programs_total", profile=resolved.name)
            obs.inc("warp_fuzz_instructions_total", float(executed),
                    profile=resolved.name)
        for divergence in verdict.divergences:
            report.divergences.append(divergence.to_plain())
            if divergence.known:
                report.known_divergences += 1
            else:
                report.unexplained_divergences += 1
            if obs.ACTIVE is not None:
                obs.inc("warp_fuzz_divergences_total",
                        engine=divergence.engine,
                        kind="known" if divergence.known else "unexplained")
        if verdict.unexplained and bisect_divergences:
            from .bisect import bisect_divergence
            for divergence in verdict.unexplained:
                bundle = bisect_divergence(
                    program, divergence.engine, seed=seed,
                    profile=resolved.name,
                    precise_fault_stats=divergence.precise_fault_stats,
                    with_opb=resolved.opb_traffic,
                    hot_threshold=hot_threshold,
                    max_instructions=max_instructions)
                if bundle is not None:
                    report.bisect_steps += bundle.bisect_steps
                    report.bundles.append(bundle.to_plain())
    report.wall_seconds = time.perf_counter() - start
    return report
