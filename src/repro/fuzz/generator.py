"""Seeded random MicroBlaze program generator for the differential fuzzer.

Every program is produced deterministically from ``(seed, profile)``: the
generator seeds one :class:`random.Random` from that pair, builds a list of
self-contained *body blocks* (straight-line arithmetic, nested bounded
loops, data-dependent forward branches, delay-slot branch variants,
``imm``-prefixed 32-bit constants, masked BRAM loads/stores, OPB peripheral
traffic, and — in the ``faulty`` profile — deliberately near-fault
addressing), and assembles prologue + blocks + a checksum epilogue through
the ordinary :func:`repro.isa.assemble` path.  The same ``(seed, profile)``
therefore always yields bit-identical text and data images, which is what
makes a divergence report replayable from two integers and a name.

Programs are *shrinkable*: body blocks are independent by construction
(every block re-establishes the loop counters and address registers it
uses), so :func:`shrink` can greedily drop blocks while a caller-supplied
predicate (e.g. "the engines still diverge") keeps holding, yielding a
minimal reproducer.

Register conventions (chosen so blocks stay droppable):

========  ==========================================================
``r3``    checksum accumulator (folded in the epilogue, returned)
``r5-r12``  work pool — every generated ALU/memory op targets these
``r15``   link register of generated ``brlid``/``rtsd`` call blocks
``r16``   constant 0, base register of immediate-form loads/stores
``r17``   address scratch (masked effective addresses)
``r18/r19``  outer/inner loop down-counters
========  ==========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..isa import assemble
from ..isa.program import Program

#: Byte size of the data window generated programs read and write.  Small
#: enough that the whole window sits inside every configuration's data
#: BRAM, large enough that store patterns actually collide and interleave.
DATA_WINDOW_BYTES = 512

#: Address masks confining generated effective addresses to the data
#: window, per access width.  The aligned masks guarantee fault-free
#: accesses; the ``faulty`` profile uses the byte mask for every width, so
#: word/half accesses hit misaligned addresses and raise real faults.
ALIGNED_MASKS = {"word": 0x1FC, "half": 0x1FE, "byte": 0x1FF}

#: OPB register window exposed to generated programs (fits the default
#: 4-register :class:`~repro.microblaze.opb.SimplePeripheral`).
OPB_WINDOW_OFFSETS = (0, 4, 8, 12)

_WORK_REGS = tuple(range(5, 13))
_CHECKSUM_REG = 3
_LINK_REG = 15
_ZERO_BASE_REG = 16
_ADDR_REG = 17
_OUTER_COUNTER = 18
_INNER_COUNTER = 19

_COND_STEMS = ("beq", "bne", "blt", "ble", "bgt", "bge")


@dataclass(frozen=True)
class GeneratorProfile:
    """One weighted recipe for random program generation.

    ``weights`` maps op-category names to relative frequencies; categories
    with zero weight are never emitted.  All bounds are inclusive.
    """

    name: str
    description: str
    blocks: Tuple[int, int] = (3, 7)
    ops_per_block: Tuple[int, int] = (4, 12)
    loop_probability: float = 0.6
    nested_loop_probability: float = 0.35
    outer_iterations: Tuple[int, int] = (3, 17)
    inner_iterations: Tuple[int, int] = (2, 6)
    branch_probability: float = 0.5
    delay_slot_probability: float = 0.5
    call_probability: float = 0.2
    weights: Tuple[Tuple[str, int], ...] = (
        ("alu", 6), ("logical", 4), ("mul", 2), ("barrel", 2),
        ("shift", 2), ("imm32", 1), ("load", 3), ("store", 3),
    )
    #: Use the byte-aligned mask for every access width, producing
    #: misaligned word/half addresses — real, comparable faults.
    near_fault: bool = False
    #: Emit OPB peripheral reads/writes (the harness attaches a
    #: :class:`~repro.microblaze.opb.SimplePeripheral` at the OPB base).
    opb_traffic: bool = False


#: The built-in generation profiles, selectable by name everywhere a
#: campaign is configured (CLI, WarpJob, wire codec).
PROFILES: Dict[str, GeneratorProfile] = {
    profile.name: profile
    for profile in (
        GeneratorProfile(
            name="mixed",
            description="balanced mix of ALU, memory, loops and branches",
        ),
        GeneratorProfile(
            name="alu",
            description="arithmetic/logic heavy, long straight-line blocks",
            ops_per_block=(8, 20),
            loop_probability=0.4,
            weights=(("alu", 8), ("logical", 6), ("mul", 3), ("barrel", 3),
                     ("shift", 3), ("imm32", 2)),
        ),
        GeneratorProfile(
            name="memory",
            description="BRAM load/store heavy with colliding addresses",
            weights=(("alu", 3), ("logical", 2), ("imm32", 1),
                     ("load", 7), ("store", 7)),
        ),
        GeneratorProfile(
            name="branchy",
            description="dense nested loops and data-dependent branches",
            blocks=(4, 8),
            ops_per_block=(3, 7),
            loop_probability=0.9,
            nested_loop_probability=0.6,
            branch_probability=0.9,
            delay_slot_probability=0.7,
            weights=(("alu", 6), ("logical", 3), ("shift", 2), ("load", 2),
                     ("store", 2)),
        ),
        GeneratorProfile(
            name="faulty",
            description="near-fault addressing: misaligned word/half "
                        "accesses raise real memory faults",
            near_fault=True,
            weights=(("alu", 4), ("logical", 2), ("load", 6), ("store", 6)),
        ),
        GeneratorProfile(
            name="opb",
            description="peripheral-bus traffic interleaved with BRAM work",
            opb_traffic=True,
            weights=(("alu", 4), ("logical", 2), ("load", 3), ("store", 3),
                     ("opb_load", 3), ("opb_store", 3)),
        ),
    )
}


def profile_names() -> List[str]:
    return sorted(PROFILES)


def resolve_profile(profile) -> GeneratorProfile:
    """Accept a profile object or name; unknown names raise ``KeyError``
    listing the available profiles."""
    if isinstance(profile, GeneratorProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise KeyError(f"unknown fuzz profile {profile!r}; choose from "
                       f"{profile_names()}") from None


# --------------------------------------------------------------------------- blocks
@dataclass
class _Block:
    """One droppable body block: its main lines plus any subroutine it
    calls (emitted after the epilogue so fallthrough never reaches it)."""

    lines: List[str] = field(default_factory=list)
    subroutine: List[str] = field(default_factory=list)


class _BlockBuilder:
    """Emits one block's assembly from the shared deterministic stream."""

    def __init__(self, rng: random.Random, profile: GeneratorProfile,
                 index: int):
        self.rng = rng
        self.profile = profile
        self.index = index
        self.block = _Block()
        self._labels = 0
        categories = [name for name, weight in profile.weights
                      for _ in range(weight)]
        self._categories = categories

    # ------------------------------------------------------------- helpers
    def _label(self, kind: str) -> str:
        self._labels += 1
        return f"Lb{self.index}_{kind}{self._labels}"

    def _work(self) -> int:
        return self.rng.choice(_WORK_REGS)

    def _reg(self, number: int) -> str:
        return f"r{number}"

    def emit(self, line: str) -> None:
        self.block.lines.append(f"    {line}")

    # ----------------------------------------------------------------- ops
    def _op_alu(self) -> None:
        if self.rng.random() < 0.5:
            mnemonic = self.rng.choice(("add", "rsub", "addk", "rsubk",
                                        "cmp", "cmpu"))
            self.emit(f"{mnemonic} {self._reg(self._work())}, "
                      f"{self._reg(self._work())}, {self._reg(self._work())}")
        else:
            mnemonic = self.rng.choice(("addi", "rsubi", "addik", "rsubik"))
            imm = self.rng.randint(-32768, 32767)
            self.emit(f"{mnemonic} {self._reg(self._work())}, "
                      f"{self._reg(self._work())}, {imm}")

    def _op_logical(self) -> None:
        if self.rng.random() < 0.5:
            mnemonic = self.rng.choice(("or", "and", "xor", "andn"))
            self.emit(f"{mnemonic} {self._reg(self._work())}, "
                      f"{self._reg(self._work())}, {self._reg(self._work())}")
        else:
            mnemonic = self.rng.choice(("ori", "andi", "xori", "andni"))
            imm = self.rng.randint(-32768, 32767)
            self.emit(f"{mnemonic} {self._reg(self._work())}, "
                      f"{self._reg(self._work())}, {imm}")

    def _op_mul(self) -> None:
        if self.rng.random() < 0.5:
            self.emit(f"mul {self._reg(self._work())}, "
                      f"{self._reg(self._work())}, {self._reg(self._work())}")
        else:
            self.emit(f"muli {self._reg(self._work())}, "
                      f"{self._reg(self._work())}, "
                      f"{self.rng.randint(-32768, 32767)}")

    def _op_barrel(self) -> None:
        if self.rng.random() < 0.5:
            mnemonic = self.rng.choice(("bsrl", "bsra", "bsll"))
            self.emit(f"{mnemonic} {self._reg(self._work())}, "
                      f"{self._reg(self._work())}, {self._reg(self._work())}")
        else:
            mnemonic = self.rng.choice(("bsrli", "bsrai", "bslli"))
            self.emit(f"{mnemonic} {self._reg(self._work())}, "
                      f"{self._reg(self._work())}, {self.rng.randint(0, 31)}")

    def _op_shift(self) -> None:
        mnemonic = self.rng.choice(("sra", "src", "srl", "sext8", "sext16"))
        self.emit(f"{mnemonic} {self._reg(self._work())}, "
                  f"{self._reg(self._work())}")

    def _op_imm32(self) -> None:
        # ``li`` expands to an imm-prefixed pair for 32-bit constants; mix
        # in small constants so both expansions appear.
        if self.rng.random() < 0.7:
            value = self.rng.getrandbits(32) - (1 << 31)
        else:
            value = self.rng.randint(-32768, 32767)
        self.emit(f"li {self._reg(self._work())}, {value}")

    def _mask_for(self, width: str) -> int:
        if self.profile.near_fault:
            return ALIGNED_MASKS["byte"]
        return ALIGNED_MASKS[width]

    def _op_load(self) -> None:
        width = self.rng.choice(("word", "half", "byte"))
        mnemonic = {"word": "lw", "half": "lhu", "byte": "lbu"}[width]
        if self.rng.random() < 0.5:
            self.emit(f"andi {self._reg(_ADDR_REG)}, "
                      f"{self._reg(self._work())}, {self._mask_for(width)}")
            self.emit(f"{mnemonic} {self._reg(self._work())}, "
                      f"{self._reg(_ZERO_BASE_REG)}, {self._reg(_ADDR_REG)}")
        else:
            offset = self.rng.randrange(0, DATA_WINDOW_BYTES)
            offset &= self._mask_for(width)
            self.emit(f"{mnemonic}i {self._reg(self._work())}, "
                      f"{self._reg(_ZERO_BASE_REG)}, {offset}")

    def _op_store(self) -> None:
        width = self.rng.choice(("word", "half", "byte"))
        mnemonic = {"word": "sw", "half": "sh", "byte": "sb"}[width]
        if self.rng.random() < 0.5:
            self.emit(f"andi {self._reg(_ADDR_REG)}, "
                      f"{self._reg(self._work())}, {self._mask_for(width)}")
            self.emit(f"{mnemonic} {self._reg(self._work())}, "
                      f"{self._reg(_ZERO_BASE_REG)}, {self._reg(_ADDR_REG)}")
        else:
            offset = self.rng.randrange(0, DATA_WINDOW_BYTES)
            offset &= self._mask_for(width)
            self.emit(f"{mnemonic}i {self._reg(self._work())}, "
                      f"{self._reg(_ZERO_BASE_REG)}, {offset}")

    def _op_opb(self, store: bool) -> None:
        from ..microblaze.opb import OPB_BASE_ADDRESS
        address = OPB_BASE_ADDRESS + self.rng.choice(OPB_WINDOW_OFFSETS)
        self.emit(f"li {self._reg(_ADDR_REG)}, {address}")
        if store:
            self.emit(f"sw {self._reg(self._work())}, "
                      f"{self._reg(_ADDR_REG)}, {self._reg(_ZERO_BASE_REG)}")
        else:
            self.emit(f"lw {self._reg(self._work())}, "
                      f"{self._reg(_ADDR_REG)}, {self._reg(_ZERO_BASE_REG)}")

    def _delay_op(self) -> None:
        """Exactly one single-word instruction, safe in a delay slot (a
        multi-word expansion there would split an ``imm`` prefix or an
        address-mask pair across the branch)."""
        mnemonic = self.rng.choice(("add", "rsub", "xor", "or", "and",
                                    "addk"))
        self.emit(f"{mnemonic} {self._reg(self._work())}, "
                  f"{self._reg(self._work())}, {self._reg(self._work())}")

    def _one_op(self) -> None:
        category = self.rng.choice(self._categories)
        handler = {
            "alu": self._op_alu,
            "logical": self._op_logical,
            "mul": self._op_mul,
            "barrel": self._op_barrel,
            "shift": self._op_shift,
            "imm32": self._op_imm32,
            "load": self._op_load,
            "store": self._op_store,
            "opb_load": lambda: self._op_opb(store=False),
            "opb_store": lambda: self._op_opb(store=True),
        }[category]
        handler()

    # ------------------------------------------------------------ structure
    def _straight_ops(self, count: int) -> None:
        """``count`` ops, some guarded by data-dependent forward skips."""
        emitted = 0
        while emitted < count:
            if self.rng.random() < self.profile.branch_probability \
                    and count - emitted >= 2:
                stem = self.rng.choice(_COND_STEMS)
                label = self._label("skip")
                guarded = self.rng.randint(1, min(3, count - emitted - 1))
                if self.rng.random() < self.profile.delay_slot_probability:
                    # Delay-slot form: the slot op executes on both paths.
                    self.emit(f"{stem}id {self._reg(self._work())}, {label}")
                    self._delay_op()
                else:
                    self.emit(f"{stem}i {self._reg(self._work())}, {label}")
                for _ in range(guarded):
                    self._one_op()
                self.block.lines.append(f"{label}:")
                emitted += guarded + 1
            else:
                self._one_op()
                emitted += 1

    def _loop_tail(self, counter: int, label: str) -> None:
        self.emit(f"addi {self._reg(counter)}, {self._reg(counter)}, -1")
        if self.rng.random() < self.profile.delay_slot_probability:
            self.emit(f"bneid {self._reg(counter)}, {label}")
            self._delay_op()
        else:
            self.emit(f"bnei {self._reg(counter)}, {label}")

    def _call_block(self) -> None:
        name = f"Fb{self.index}_sub"
        self.emit(f"brlid {self._reg(_LINK_REG)}, {name}")
        self.emit("nop")
        sub = [f"{name}:"]
        saved, self.block.lines = self.block.lines, sub
        for _ in range(self.rng.randint(2, 4)):
            self._one_op()
        self.block.lines = saved
        sub.append(f"    rtsd {self._reg(_LINK_REG)}, 8")
        sub.append("    nop")
        self.block.subroutine = sub

    def build(self) -> _Block:
        profile = self.profile
        ops = self.rng.randint(*profile.ops_per_block)
        if self.rng.random() < profile.loop_probability:
            outer = self.rng.randint(*profile.outer_iterations)
            loop = self._label("loop")
            self.emit(f"addi {self._reg(_OUTER_COUNTER)}, r0, {outer}")
            self.block.lines.append(f"{loop}:")
            if self.rng.random() < profile.nested_loop_probability:
                head = max(1, ops // 3)
                self._straight_ops(head)
                inner_count = self.rng.randint(*profile.inner_iterations)
                inner = self._label("inner")
                self.emit(f"addi {self._reg(_INNER_COUNTER)}, r0, "
                          f"{inner_count}")
                self.block.lines.append(f"{inner}:")
                self._straight_ops(max(1, ops - head))
                self._loop_tail(_INNER_COUNTER, inner)
            else:
                self._straight_ops(ops)
            self._loop_tail(_OUTER_COUNTER, loop)
        else:
            self._straight_ops(ops)
        if self.rng.random() < profile.call_probability:
            self._call_block()
        return self.block


# ------------------------------------------------------------------- generation
def _rng_for(seed: int, profile: GeneratorProfile) -> random.Random:
    # str seeding hashes via SHA-512 (seed version 2): deterministic
    # across processes and platforms, unlike hash()-based seeding.
    return random.Random(f"warp-fuzz/{profile.name}/{seed}")


def _generate_parts(seed: int, profile: GeneratorProfile
                    ) -> Tuple[List[str], List[_Block], List[str], List[str]]:
    """The fully deterministic build: prologue, all body blocks, epilogue,
    data section.  Block filtering happens *after* this, so a shrunk
    program's kept blocks are bit-identical to the original's."""
    rng = _rng_for(seed, profile)
    prologue = [
        "    .entry main",
        "    .text",
        "main:",
        f"    addi r{_CHECKSUM_REG}, r0, 0",
        f"    addi r{_ZERO_BASE_REG}, r0, 0",
    ]
    for reg in _WORK_REGS:
        if rng.random() < 0.4:
            prologue.append(f"    li r{reg}, {rng.getrandbits(32) - (1 << 31)}")
        else:
            prologue.append(f"    li r{reg}, {rng.randint(-32768, 32767)}")

    count = rng.randint(*profile.blocks)
    blocks = [_BlockBuilder(rng, profile, index).build()
              for index in range(count)]

    epilogue = []
    fold = ("add", "xor", "add", "rsub")
    for position, reg in enumerate(_WORK_REGS):
        mnemonic = fold[position % len(fold)]
        epilogue.append(f"    {mnemonic} r{_CHECKSUM_REG}, "
                        f"r{_CHECKSUM_REG}, r{reg}")
    epilogue.append("    bri 0")

    data = ["    .data", "fuzzdata:"]
    for _ in range(DATA_WINDOW_BYTES // 4):
        data.append(f"    .word {rng.getrandbits(32)}")
    return prologue, blocks, epilogue, data


def num_blocks(seed: int, profile) -> int:
    """How many body blocks ``(seed, profile)`` generates (shrink domain)."""
    profile = resolve_profile(profile)
    return len(_generate_parts(seed, profile)[1])


def generate_source(seed: int, profile,
                    include_blocks: Optional[Sequence[int]] = None) -> str:
    """The program text for ``(seed, profile)``.

    ``include_blocks`` optionally keeps only the named body-block indices
    (shrinking); prologue, epilogue and the data image are always kept.
    """
    profile = resolve_profile(profile)
    prologue, blocks, epilogue, data = _generate_parts(seed, profile)
    if include_blocks is not None:
        keep = set(include_blocks)
        unknown = keep - set(range(len(blocks)))
        if unknown:
            raise ValueError(f"no such body blocks: {sorted(unknown)} "
                             f"(program has {len(blocks)})")
        selected = [block for index, block in enumerate(blocks)
                    if index in keep]
    else:
        selected = blocks
    lines = list(prologue)
    for block in selected:
        lines.extend(block.lines)
    lines.extend(epilogue)
    for block in selected:
        lines.extend(block.subroutine)
    lines.extend(data)
    return "\n".join(lines) + "\n"


def generate_program(seed: int, profile,
                     include_blocks: Optional[Sequence[int]] = None
                     ) -> Program:
    """Assemble the generated source into a loadable :class:`Program`."""
    profile = resolve_profile(profile)
    source = generate_source(seed, profile, include_blocks=include_blocks)
    return assemble(source, name=f"fuzz-{profile.name}-{seed}")


# --------------------------------------------------------------------- shrinking
def shrink(seed: int, profile,
           predicate: Callable[[Program], bool]
           ) -> Tuple[List[int], Program]:
    """Greedily drop body blocks while ``predicate(program)`` stays true.

    ``predicate`` must hold for the full program (typically "the engines
    diverge on it"); the return value is the minimal kept block index list
    and the corresponding shrunk program.  Deterministic: the kept blocks
    are bit-identical to their counterparts in the full program.
    """
    profile = resolve_profile(profile)
    kept = list(range(num_blocks(seed, profile)))
    if not predicate(generate_program(seed, profile)):
        raise ValueError("predicate does not hold for the full program; "
                         "nothing to shrink")
    changed = True
    while changed:
        changed = False
        for block in list(kept):
            trial = [index for index in kept if index != block]
            if predicate(generate_program(seed, profile,
                                          include_blocks=trial)):
                kept = trial
                changed = True
    return kept, generate_program(seed, profile, include_blocks=kept)
