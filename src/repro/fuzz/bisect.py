"""Checkpoint-driven bisection of engine divergences.

Given a program on which an engine's final state disagrees with the
reference interpreter, :func:`bisect_divergence` binary-searches the
*first divergent instruction* without ever re-simulating the common
prefix from scratch: each side keeps a cache of engine-independent
``WARPCKPT`` checkpoints, a probe at instruction count *k* spawns a fresh
system from the nearest cached count ≤ *k* (:func:`spawn_from_checkpoint`)
and covers the remainder with one :func:`run_slice` budget split, and the
newly reached boundary joins the cache for the next probe.  Probe counts
snap to instruction boundaries exactly like the engines themselves do —
``cpu.step()`` retires a branch and its delay slot atomically, so the
search recognises a divergence landing *inside* a delay pair and reports
the pair's branch pc.

The result is a :class:`ReproBundle`: seed, profile, full source text and
disassembly listing, the first-divergence location (instructions retired
before it, the pc about to execute, the decoded instruction) and a
per-engine state diff at that boundary.  The bundle replays from
``(seed, profile)`` alone — regenerate with
:func:`repro.fuzz.generator.generate_program` and re-run.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..isa import decode, format_instruction, listing
from ..isa.program import Program
from ..microblaze import PAPER_CONFIG
from ..microblaze.checkpoint import run_slice, spawn_from_checkpoint
from ..microblaze.config import MicroBlazeConfig
from .harness import (
    DEFAULT_HOT_THRESHOLD,
    DEFAULT_MAX_INSTRUCTIONS,
    REFERENCE_ENGINE,
    _build_system,
    fuzz_peripherals,
)

#: How many differing data-BRAM words a state diff lists (the digests
#: always cover the full image).
MAX_DATA_DIFF_WORDS = 16


# ----------------------------------------------------------------------- states
@dataclass
class _BoundaryState:
    """One side's observable state at an instruction boundary."""

    instructions: int
    pc: int
    halted: bool
    registers: Tuple[int, ...]
    stats: Tuple
    data: bytes
    opb: Tuple
    #: ``None`` while running/halted; the fault message once the side has
    #: terminated with a raised fault.
    fault: Optional[str]

    def comparable(self) -> Tuple:
        return (self.instructions, self.pc, self.halted, self.registers,
                self.stats, hashlib.sha256(self.data).hexdigest(),
                self.opb, self.fault)


class _Replayer:
    """One engine's deterministic replay line with a checkpoint cache."""

    def __init__(self, program: Program, engine: str, *,
                 precise_fault_stats: bool, config: MicroBlazeConfig,
                 with_opb: bool, hot_threshold: Optional[int]):
        self.engine = engine
        self.precise_fault_stats = precise_fault_stats
        self.config = config
        self.with_opb = with_opb
        self.hot_threshold = hot_threshold
        system = _build_system(engine, precise_fault_stats, config,
                               with_opb, hot_threshold)
        system.start(program)
        #: instruction count -> WARPCKPT blob at that boundary.
        self.checkpoints: Dict[int, bytes] = {0: system.checkpoint()}

    def _spawn(self, blob: bytes):
        peripherals = fuzz_peripherals() if self.with_opb else ()
        system = spawn_from_checkpoint(
            blob, peripherals=peripherals, engine=self.engine,
            precise_fault_stats=self.precise_fault_stats)
        impl = system.cpu._engine_impl
        if self.hot_threshold is not None \
                and hasattr(impl, "hot_threshold"):
            impl.hot_threshold = self.hot_threshold
        return system

    def state_at(self, count: int) -> _BoundaryState:
        """The state at instruction boundary ``count`` (snapped forward to
        the end of an atomic delay pair, or to the run's own end when it
        halts/faults earlier)."""
        base = max(c for c in self.checkpoints if c <= count)
        system = self._spawn(self.checkpoints[base])
        fault = None
        if count > base:
            try:
                run_slice(system, count - base)
            except Exception as error:  # noqa: BLE001 - fault is data here
                fault = f"{type(error).__name__}: {error}"
        actual = system.cpu.stats.instructions
        if fault is None and actual not in self.checkpoints:
            self.checkpoints[actual] = system.checkpoint()
        opb = [system.opb.reads, system.opb.writes]
        for peripheral in system.opb.peripherals:
            snapshot = getattr(peripheral, "snapshot_state", None)
            if callable(snapshot):
                opb.append((peripheral.name, repr(snapshot())))
        stats = system.cpu.stats.to_plain()
        return _BoundaryState(
            instructions=actual,
            pc=system.cpu.pc,
            halted=system.cpu.halted,
            registers=tuple(system.cpu.registers),
            stats=tuple(sorted(stats.items(),
                               key=lambda item: repr(item[0]))),
            data=bytes(system.data_bram.storage),
            opb=tuple(opb),
            fault=fault,
        )


# ----------------------------------------------------------------------- bundle
@dataclass
class ReproBundle:
    """A minimized, re-runnable record of one engine divergence."""

    seed: int
    profile: str
    engine: str
    reference: str
    precise_fault_stats: bool
    program_name: str
    source: str
    listing: str
    #: Instructions both engines retire identically before diverging.
    instructions_before_divergence: int
    #: pc of the next instruction at that boundary — the first divergent
    #: instruction (a delay pair's branch pc when the divergence lands in
    #: the pair's slot).
    first_divergent_pc: int
    first_divergent_instruction: str
    state_diff: Dict[str, object]
    bisect_steps: int
    reference_end: int
    engine_end: int
    replay: Dict[str, object] = field(default_factory=dict)

    def to_plain(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "engine": self.engine,
            "reference": self.reference,
            "precise_fault_stats": self.precise_fault_stats,
            "program_name": self.program_name,
            "source": self.source,
            "listing": self.listing,
            "instructions_before_divergence":
                self.instructions_before_divergence,
            "first_divergent_pc": self.first_divergent_pc,
            "first_divergent_instruction": self.first_divergent_instruction,
            "state_diff": self.state_diff,
            "bisect_steps": self.bisect_steps,
            "reference_end": self.reference_end,
            "engine_end": self.engine_end,
            "replay": dict(self.replay),
        }


def _state_diff(reference: _BoundaryState,
                engine: _BoundaryState) -> Dict[str, object]:
    diff: Dict[str, object] = {}
    if reference.instructions != engine.instructions:
        diff["instructions"] = [reference.instructions, engine.instructions]
    if reference.pc != engine.pc:
        diff["pc"] = [reference.pc, engine.pc]
    if reference.halted != engine.halted:
        diff["halted"] = [reference.halted, engine.halted]
    if reference.fault != engine.fault:
        diff["fault"] = [reference.fault, engine.fault]
    registers = {
        index: [ref_value, eng_value]
        for index, (ref_value, eng_value)
        in enumerate(zip(reference.registers, engine.registers))
        if ref_value != eng_value
    }
    if registers:
        diff["registers"] = {f"r{index}": values
                             for index, values in registers.items()}
    if reference.stats != engine.stats:
        left, right = dict(reference.stats), dict(engine.stats)
        diff["stats"] = {key: [left[key], right.get(key)]
                         for key in left if left[key] != right.get(key)}
    if reference.data != engine.data:
        words = []
        for offset in range(0, min(len(reference.data), len(engine.data)), 4):
            ref_word = struct.unpack_from("<I", reference.data, offset)[0]
            eng_word = struct.unpack_from("<I", engine.data, offset)[0]
            if ref_word != eng_word:
                words.append({"address": offset, "reference": ref_word,
                              "engine": eng_word})
                if len(words) >= MAX_DATA_DIFF_WORDS:
                    break
        diff["data_words"] = words
    if reference.opb != engine.opb:
        diff["opb"] = [repr(reference.opb), repr(engine.opb)]
    return diff


def _decode_at(program: Program, pc: int) -> str:
    index = pc // 4
    if pc % 4 == 0 and 0 <= index < len(program.text):
        try:
            return format_instruction(decode(program.text[index],
                                             address=pc))
        except Exception:  # noqa: BLE001 - undecodable word, report raw
            pass
    return f"{pc:#010x}:  <outside program text>"


# ----------------------------------------------------------------------- search
def bisect_divergence(program: Program, engine: str, *,
                      reference: str = REFERENCE_ENGINE,
                      seed: int = -1, profile: str = "?",
                      precise_fault_stats: bool = False,
                      config: MicroBlazeConfig = PAPER_CONFIG,
                      with_opb: bool = False,
                      hot_threshold: Optional[int] = DEFAULT_HOT_THRESHOLD,
                      max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                      ) -> Optional[ReproBundle]:
    """Locate the first divergent instruction of ``engine`` vs the
    reference on ``program``; ``None`` when the final states agree.

    Each probe costs one checkpoint spawn plus at most half the remaining
    window of instructions (``run_slice`` budget splitting), so the whole
    search is O(end · log end) instructions with a warm prefix cache —
    never a from-scratch replay per probe.
    """
    ref_side = _Replayer(program, reference,
                         precise_fault_stats=precise_fault_stats,
                         config=config, with_opb=with_opb,
                         hot_threshold=hot_threshold)
    eng_side = _Replayer(program, engine,
                         precise_fault_stats=precise_fault_stats,
                         config=config, with_opb=with_opb,
                         hot_threshold=hot_threshold)
    steps = 0

    def probe(count: int) -> Tuple[int, bool, _BoundaryState,
                                   _BoundaryState]:
        nonlocal steps
        steps += 1
        if obs.ACTIVE is not None:
            obs.inc("warp_fuzz_bisect_steps_total", engine=engine)
        ref_state = ref_side.state_at(count)
        eng_state = eng_side.state_at(count)
        equal = ref_state.comparable() == eng_state.comparable()
        return ref_state.instructions, equal, ref_state, eng_state

    end_count, end_equal, ref_final, eng_final = probe(max_instructions)
    if end_equal:
        return None

    lo = 0
    if ref_final.instructions == eng_final.instructions:
        hi = ref_final.instructions
    else:
        # One side ran further; the common comparable prefix ends at or
        # before the shorter side's end.
        hi = min(ref_final.instructions, eng_final.instructions)
        actual, equal, ref_final, eng_final = probe(hi)
        if equal:
            # Identical up to the shorter end: the divergence is the very
            # next step (halt/fault vs keep running).
            lo = actual
            hi = actual + 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        actual, equal, ref_state, eng_state = probe(mid)
        if equal:
            # Snapping keeps actual < hi (a state equal at hi would
            # contradict hi's established inequality).
            lo = actual
        elif actual < hi:
            hi = max(actual, lo + 1)
            ref_final, eng_final = ref_state, eng_state
        else:
            # mid sits inside an atomic branch/delay-slot pair spanning
            # (lo, hi): there is no boundary between them to probe.
            break

    boundary_ref = ref_side.state_at(lo)
    bundle = ReproBundle(
        seed=seed,
        profile=profile,
        engine=engine,
        reference=reference,
        precise_fault_stats=precise_fault_stats,
        program_name=program.name,
        source=program.source or "",
        listing=listing(program),
        instructions_before_divergence=lo,
        first_divergent_pc=boundary_ref.pc,
        first_divergent_instruction=_decode_at(program, boundary_ref.pc),
        state_diff=_state_diff(ref_final, eng_final),
        bisect_steps=steps,
        reference_end=ref_side.state_at(max_instructions).instructions,
        engine_end=eng_side.state_at(max_instructions).instructions,
        replay={
            "how": "repro.fuzz.generator.generate_program(seed, profile)",
            "seed": seed,
            "profile": profile,
            "engine": engine,
            "reference": reference,
            "precise_fault_stats": precise_fault_stats,
            "hot_threshold": hot_threshold,
        },
    )
    return bundle
