"""On-chip peripheral bus (OPB) and peripheral plumbing.

The MicroBlaze system of Figure 1 hangs its peripherals off the on-chip
peripheral bus, and Figure 2 shows that the warp configurable logic
architecture communicates with the MicroBlaze over the same bus.  The model
here is a simple address-decoded single-master bus: peripherals register an
address window; reads and writes that fall outside the data BRAM are routed
to the owning peripheral.  OPB transactions are slower than local-memory
accesses, which the processor timing model charges through the
``opb_access_extra`` latency of :class:`~repro.microblaze.config.PipelineTimings`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

#: Base of the OPB address window in the data address space.  Everything the
#: processor loads or stores at or above this address is an OPB transaction.
OPB_BASE_ADDRESS = 0x8000_0000


class Peripheral(Protocol):
    """Interface every OPB peripheral implements.

    Two *optional* attributes extend the protocol for timed device models:

    ``wants_ticks`` (bool, default absent/False)
        Set truthy **before attaching** to receive engine-driven time:
        the execution engines then advance the peripheral with
        :meth:`tick` as simulated cycles elapse — per instruction on the
        interpreter, batched to one ``tick(n)`` per superblock on the
        block engines.  Peripherals without it cost the simulator nothing
        (the engines skip the bus entirely).

    ``tick_deadline()`` (``() -> Optional[int]``, optional method)
        Cycles until the peripheral next needs to observe a tick
        boundary (a timer expiry, a DMA completion).  The block engines
        honour it two ways: a deadline falling inside the upcoming
        superblock drops dispatch to interpreter granularity until the
        boundary has passed, and batched ticks are delivered in chunks
        that never cross the current deadline
        (:meth:`OnChipPeripheralBus.tick_bounded`).  Return ``None`` (or
        omit the method) to allow unbounded batching.
    """

    #: Byte address of the peripheral's first register (absolute).
    base_address: int
    #: Size of the peripheral's register window in bytes.
    window_size: int
    name: str

    def read(self, offset: int) -> int:
        """Read the 32-bit register at byte ``offset`` within the window."""
        ...

    def write(self, offset: int, value: int) -> None:
        """Write the 32-bit register at byte ``offset`` within the window."""
        ...

    def tick(self, cycles: int) -> None:
        """Advance the peripheral's notion of time by ``cycles`` core cycles."""
        ...


@dataclass
class SimplePeripheral:
    """A trivial memory-mapped register file, useful for tests and examples.

    It stands in for the generic ``Periph 1`` / ``Periph 2`` blocks of
    Figure 1 (UART-style status/data registers) without modelling any
    particular device.
    """

    base_address: int
    num_registers: int = 4
    name: str = "periph"
    window_size: int = 0
    registers: List[int] = field(default_factory=list)
    reads: int = 0
    writes: int = 0

    def __post_init__(self) -> None:
        self.window_size = 4 * self.num_registers
        if not self.registers:
            self.registers = [0] * self.num_registers

    def read(self, offset: int) -> int:
        self.reads += 1
        return self.registers[(offset // 4) % self.num_registers]

    def write(self, offset: int, value: int) -> None:
        self.writes += 1
        self.registers[(offset // 4) % self.num_registers] = value & 0xFFFFFFFF

    def tick(self, cycles: int) -> None:  # pragma: no cover - nothing to do
        return None

    # ------------------------------------------------------------ checkpointing
    def snapshot_state(self) -> Dict:
        return {"registers": list(self.registers),
                "reads": self.reads, "writes": self.writes}

    def restore_state(self, state: Dict) -> None:
        self.registers[:] = state["registers"]
        self.reads = state["reads"]
        self.writes = state["writes"]


class BusError(Exception):
    """Raised when an OPB access does not decode to any peripheral."""


class OnChipPeripheralBus:
    """Address-decoded on-chip peripheral bus with attached peripherals."""

    def __init__(self, name: str = "opb"):
        self.name = name
        self.peripherals: List[Peripheral] = []
        #: Subset of peripherals that opted into engine-driven time
        #: (``wants_ticks``); empty on the hot path for ordinary systems,
        #: which is what lets the engines skip ticking entirely.
        self.ticking: List[Peripheral] = []
        self.reads = 0
        self.writes = 0

    def attach(self, peripheral: Peripheral) -> None:
        """Attach ``peripheral``; its window must not overlap existing ones."""
        new_lo = peripheral.base_address
        new_hi = new_lo + peripheral.window_size
        for existing in self.peripherals:
            lo = existing.base_address
            hi = lo + existing.window_size
            if new_lo < hi and lo < new_hi:
                raise BusError(
                    f"peripheral {peripheral.name!r} window "
                    f"[{new_lo:#010x}, {new_hi:#010x}) overlaps "
                    f"{existing.name!r} window [{lo:#010x}, {hi:#010x})"
                )
        self.peripherals.append(peripheral)
        if getattr(peripheral, "wants_ticks", False):
            self.ticking.append(peripheral)

    def owns(self, address: int) -> bool:
        """Whether ``address`` decodes to one of the attached peripherals."""
        return self._find(address) is not None

    def _find(self, address: int) -> Optional[Peripheral]:
        for peripheral in self.peripherals:
            if peripheral.base_address <= address < peripheral.base_address + peripheral.window_size:
                return peripheral
        return None

    def read(self, address: int) -> int:
        peripheral = self._find(address)
        if peripheral is None:
            raise BusError(f"OPB read from unmapped address {address:#010x}")
        self.reads += 1
        return peripheral.read(address - peripheral.base_address) & 0xFFFFFFFF

    def write(self, address: int, value: int) -> None:
        peripheral = self._find(address)
        if peripheral is None:
            raise BusError(f"OPB write to unmapped address {address:#010x}")
        self.writes += 1
        peripheral.write(address - peripheral.base_address, value & 0xFFFFFFFF)

    def tick(self, cycles: int) -> None:
        """Manually advance *every* attached peripheral (public API)."""
        for peripheral in self.peripherals:
            peripheral.tick(cycles)

    def deliver_ticks(self, cycles: int) -> None:
        """Engine-driven time: advance only the opted-in peripherals.

        The execution engines come through here (and through
        :meth:`tick_bounded`), so peripherals that never asked for ticks
        receive none and cost nothing.
        """
        for peripheral in self.ticking:
            peripheral.tick(cycles)

    def next_deadline(self) -> Optional[int]:
        """Cycles until the nearest tick deadline of any ticking peripheral.

        ``None`` means no ticking peripheral constrains batching.  The
        block engines query this once per superblock; a deadline inside
        the upcoming block drops them to per-instruction dispatch.
        """
        nearest: Optional[int] = None
        for peripheral in self.ticking:
            deadline_fn = getattr(peripheral, "tick_deadline", None)
            if deadline_fn is None:
                continue
            deadline = deadline_fn()
            if deadline is not None and (nearest is None
                                         or deadline < nearest):
                nearest = deadline
        return nearest

    def tick_bounded(self, cycles: int) -> None:
        """Deliver ``cycles`` of time without crossing any tick deadline.

        The batched superblock ticks go through here: when a block's
        dynamic cycle contributions (OPB penalties, branch costs) push it
        past a declared deadline, the batch is split into chunks of at
        most the then-current deadline, so timed peripherals observe
        every boundary in order.  With no deadlines this is one plain
        :meth:`deliver_ticks`.
        """
        remaining = cycles
        while remaining > 0:
            deadline = self.next_deadline()
            if deadline is None or deadline >= remaining:
                self.deliver_ticks(remaining)
                return
            self.deliver_ticks(max(1, deadline))
            remaining -= max(1, deadline)

    @property
    def transactions(self) -> int:
        return self.reads + self.writes
