"""Complete MicroBlaze system model (Figure 1 of the paper).

A :class:`MicroBlazeSystem` wires together the processor core, the
instruction and data block RAMs on their local memory busses, and the
on-chip peripheral bus with whatever peripherals the experiment needs
(ordinary peripherals, or the warp configurable logic architecture once the
dynamic partitioning module has generated hardware).  It loads a
:class:`~repro.isa.program.Program` into the BRAMs, runs it, and returns an
:class:`ExecutionResult` with both functional outputs and timing figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..isa.instructions import InstrClass
from ..isa.program import Program
from .config import MicroBlazeConfig, PAPER_CONFIG
from .cpu import ExecutionStats, MicroBlazeCPU
from .memory import BlockRAM, LocalMemoryBus
from .opb import OnChipPeripheralBus, Peripheral
from .trace import TraceListener


@dataclass
class ExecutionResult:
    """Outcome of running one program on one MicroBlaze configuration."""

    program_name: str
    config: MicroBlazeConfig
    stats: ExecutionStats
    return_value: int
    data_image: bytes
    kernel_cycles: Optional[int] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    @property
    def time_seconds(self) -> float:
        """Wall-clock execution time at the configured clock frequency."""
        return self.stats.cycles / self.config.clock_hz

    @property
    def time_ms(self) -> float:
        return self.time_seconds * 1e3

    @property
    def cpi(self) -> float:
        """Average cycles per instruction."""
        if self.stats.instructions == 0:
            return 0.0
        return self.stats.cycles / self.stats.instructions

    def class_fraction(self, klass: InstrClass) -> float:
        """Fraction of executed instructions belonging to ``klass``."""
        if self.stats.instructions == 0:
            return 0.0
        return self.stats.class_counts.get(klass, 0) / self.stats.instructions

    def summary(self) -> str:
        return (
            f"{self.program_name}: {self.stats.instructions} instructions, "
            f"{self.stats.cycles} cycles, {self.time_ms:.3f} ms "
            f"@ {self.config.clock_mhz:g} MHz (CPI {self.cpi:.2f})"
        )


class MicroBlazeSystem:
    """A single-processor MicroBlaze system with local memories and an OPB.

    Parameters
    ----------
    config:
        Processor configuration; defaults to the paper's configuration
        (barrel shifter + multiplier, 85 MHz).
    peripherals:
        Peripherals to attach to the on-chip peripheral bus.  The warp
        processor attaches the WCLA here.
    engine:
        Execution engine for the CPU core, resolved against the engine
        registry (:mod:`repro.microblaze.engines`): ``"threaded"`` (the
        default threaded-code engine), ``"jit"`` (the source-generating
        superblock engine) or ``"interp"`` (the reference interpreter) —
        plus anything registered with
        :func:`~repro.microblaze.engines.register_engine`.  The built-in
        engines are bit-exact with one another; unknown names raise
        :class:`~repro.microblaze.engines.UnknownEngineError` listing the
        registered engines.
    precise_fault_stats:
        Opt-in exact fault-path statistics for the threaded engine (see
        :class:`~repro.microblaze.cpu.MicroBlazeCPU`).
    """

    def __init__(
        self,
        config: MicroBlazeConfig = PAPER_CONFIG,
        peripherals: Sequence[Peripheral] = (),
        engine: Optional[str] = None,
        precise_fault_stats: bool = False,
    ):
        self.config = config
        self.instr_bram = BlockRAM(config.instr_bram_kb * 1024, name="instr_bram")
        self.data_bram = BlockRAM(config.data_bram_kb * 1024, name="data_bram")
        self.i_lmb = LocalMemoryBus(self.instr_bram, name="i_lmb")
        self.d_lmb = LocalMemoryBus(self.data_bram, name="d_lmb")
        self.opb = OnChipPeripheralBus()
        for peripheral in peripherals:
            self.opb.attach(peripheral)
        self.cpu = MicroBlazeCPU(config, self.instr_bram, self.data_bram, self.opb,
                                 engine=engine,
                                 precise_fault_stats=precise_fault_stats)
        self._loaded_program: Optional[Program] = None
        #: Program metadata recovered from a checkpoint restore (the image
        #: itself lives in the BRAMs); see :meth:`restore_checkpoint`.
        self._checkpoint_meta: Optional[Dict] = None

    # ----------------------------------------------------------------- loading
    def attach_peripheral(self, peripheral: Peripheral) -> None:
        self.opb.attach(peripheral)

    def load(self, program: Program) -> None:
        """Load ``program`` into the instruction and data block RAMs."""
        if program.text_size > self.instr_bram.size:
            raise ValueError(
                f"program text of {program.text_size} bytes does not fit in the "
                f"{self.instr_bram.size}-byte instruction BRAM"
            )
        if program.data_size > self.data_bram.size:
            raise ValueError(
                f"program data of {program.data_size} bytes does not fit in the "
                f"{self.data_bram.size}-byte data BRAM"
            )
        # Clear memories so that back-to-back runs are independent.
        self.instr_bram.storage[:] = b"\x00" * self.instr_bram.size
        self.data_bram.storage[:] = b"\x00" * self.data_bram.size
        self.instr_bram.store_words(0, program.text)
        self.data_bram.load_image(bytes(program.data))
        self.cpu.invalidate_decode_cache()
        self._loaded_program = program
        self._checkpoint_meta = None

    # ----------------------------------------------------------------- running
    def run(
        self,
        program: Optional[Program] = None,
        listeners: Sequence[TraceListener] = (),
        max_instructions: int = 50_000_000,
    ) -> ExecutionResult:
        """Load (if given) and execute a program to completion.

        The program halts by branching to itself (``bri 0`` — the ``_halt``
        idiom emitted by the compiler's runtime epilogue).
        """
        if program is not None:
            self.load(program)
        if self._loaded_program is None:
            raise RuntimeError("no program loaded")
        loaded = self._loaded_program

        self.cpu.reset(entry_point=loaded.entry_point,
                       stack_pointer=self.data_bram.size - 4)
        for listener in listeners:
            self.cpu.add_listener(listener)
        try:
            stats = self.cpu.run(max_instructions=max_instructions)
        finally:
            for listener in listeners:
                self.cpu.remove_listener(listener)

        return ExecutionResult(
            program_name=loaded.name,
            config=self.config,
            stats=stats,
            return_value=self.cpu.read_register(3),
            data_image=bytes(self.data_bram.storage[:max(loaded.data_size, 4096)]),
        )

    # ----------------------------------------------------------- checkpointing
    def start(self, program: Program) -> None:
        """Load ``program`` and reset the CPU without running it.

        Use together with :func:`repro.microblaze.checkpoint.run_slice` and
        :meth:`resume` for preemptible (sliced) execution; :meth:`run` is
        the load-reset-run convenience for uninterrupted runs.
        """
        self.load(program)
        self.cpu.reset(entry_point=program.entry_point,
                       stack_pointer=self.data_bram.size - 4)

    def checkpoint(self) -> bytes:
        """Snapshot the whole system to a compact, versioned bytes blob."""
        from .checkpoint import capture_checkpoint
        return capture_checkpoint(self)

    def restore_checkpoint(self, blob: bytes) -> None:
        """Restore a :meth:`checkpoint` blob bit-exactly into this system."""
        from .checkpoint import restore_checkpoint
        restore_checkpoint(self, blob)

    def resume(self, max_instructions: int = 50_000_000) -> ExecutionResult:
        """Continue executing from the current CPU state to completion.

        Unlike :meth:`run` this performs no reset, so it picks up exactly
        where a restored checkpoint (or a preempted slice) left off.  The
        returned result is indistinguishable from an uninterrupted
        :meth:`run` of the same program: statistics are cumulative across
        slices and the data-image window matches the original program's.
        """
        if self._loaded_program is not None:
            name = self._loaded_program.name
            data_size = self._loaded_program.data_size
        elif self._checkpoint_meta is not None:
            name = self._checkpoint_meta["name"]
            data_size = self._checkpoint_meta["data_size"]
        else:
            raise RuntimeError("nothing to resume: no program loaded and no "
                               "checkpoint restored")
        stats = self.cpu.run(max_instructions=max_instructions)
        return ExecutionResult(
            program_name=name,
            config=self.config,
            stats=stats,
            return_value=self.cpu.read_register(3),
            data_image=bytes(self.data_bram.storage[:max(data_size, 4096)]),
        )


def run_program(
    program: Program,
    config: MicroBlazeConfig = PAPER_CONFIG,
    listeners: Sequence[TraceListener] = (),
    peripherals: Sequence[Peripheral] = (),
    max_instructions: int = 50_000_000,
    engine: Optional[str] = None,
    precise_fault_stats: bool = False,
) -> ExecutionResult:
    """Convenience helper: build a system, run ``program``, return the result."""
    system = MicroBlazeSystem(config=config, peripherals=peripherals, engine=engine,
                              precise_fault_stats=precise_fault_stats)
    return system.run(program, listeners=listeners, max_instructions=max_instructions)
