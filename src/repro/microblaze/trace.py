"""Instruction tracing infrastructure.

The paper obtains an instruction trace from the Xilinx Microprocessor Debug
Engine and feeds it to a simulation of the on-chip profiler; we reproduce
the same flow by letting observers subscribe to the simulated MicroBlaze's
execution stream.  A trace event carries the program counter, the decoded
instruction, the cycles the instruction cost, and — for branches — whether
the branch was taken and where it went, which is exactly the information
the non-intrusive profiler sees on the instruction-side local memory bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from ..isa.instructions import Instruction, InstrClass


@dataclass(frozen=True)
class TraceEvent:
    """One executed instruction as observed on the instruction bus."""

    pc: int
    instruction: Instruction
    cycles: int
    branch_taken: Optional[bool] = None
    branch_target: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.branch_taken is not None

    @property
    def is_backward_branch(self) -> bool:
        return bool(self.branch_taken) and self.branch_target is not None \
            and self.branch_target < self.pc


class TraceListener(Protocol):
    """Anything that wants to observe the full execution stream.

    Full-trace listeners receive one :class:`TraceEvent` per executed
    instruction.  That allocation-per-instruction is exactly what the
    threaded-code engine removes from the hot path, so attaching a
    full-trace listener makes the CPU fall back to the reference
    interpreter for the duration of the run.  Observers that only need
    branches — the on-chip profiler snoops nothing else — should implement
    :class:`BranchObserver` instead and stay on the fast path.
    """

    def on_instruction(self, event: TraceEvent) -> None:
        ...


class BranchObserver(Protocol):
    """Zero-allocation observer protocol for branch events.

    The CPU recognises an observer exposing a callable ``on_branch`` and
    routes it onto a scalar callback fed directly from the branch handlers
    of the execution engine — no :class:`TraceEvent` is materialised.
    ``on_branch(pc, target, taken)`` fires for every executed branch
    (conditional, unconditional, call and return); ``target`` is ``None``
    for a not-taken conditional branch, mirroring
    :attr:`TraceEvent.branch_target`.  The optional ``on_run_end(n)``
    callback reports the number of instructions executed by the finished
    (or faulted) run, which is how the profiler keeps its
    ``instructions_observed`` figure without per-instruction traffic.
    """

    def on_branch(self, pc: int, target: Optional[int], taken: bool) -> None:
        ...

    def on_run_end(self, instructions: int) -> None:
        ...


class InstructionTraceRecorder:
    """Records the full execution stream (optionally capped).

    Storing every event of a long run is memory hungry; ``max_events``
    truncates the recording while keeping the counters exact, which is all
    the experiment harness needs.
    """

    def __init__(self, max_events: Optional[int] = None):
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.total_events = 0

    def on_instruction(self, event: TraceEvent) -> None:
        self.total_events += 1
        if self.max_events is None or len(self.events) < self.max_events:
            self.events.append(event)

    @property
    def truncated(self) -> bool:
        return self.total_events > len(self.events)


class BranchTraceRecorder:
    """Records only branch events — the input the on-chip profiler consumes."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def on_instruction(self, event: TraceEvent) -> None:
        if event.is_branch:
            self.events.append(event)

    def backward_taken_branches(self) -> List[TraceEvent]:
        return [e for e in self.events if e.is_backward_branch]


class ClassProfile:
    """Counts executed instructions and cycles per instruction class."""

    def __init__(self):
        self.instruction_counts: Dict[InstrClass, int] = {}
        self.cycle_counts: Dict[InstrClass, int] = {}

    def on_instruction(self, event: TraceEvent) -> None:
        klass = event.instruction.klass
        self.instruction_counts[klass] = self.instruction_counts.get(klass, 0) + 1
        self.cycle_counts[klass] = self.cycle_counts.get(klass, 0) + event.cycles

    @property
    def total_instructions(self) -> int:
        return sum(self.instruction_counts.values())

    @property
    def total_cycles(self) -> int:
        return sum(self.cycle_counts.values())


class PcCycleHistogram:
    """Attributes executed cycles to program-counter values.

    The warp-processing study needs to know what fraction of the execution
    time falls inside the selected critical region; summing this histogram
    over the kernel's address range answers that directly.
    """

    def __init__(self):
        self.cycles_by_pc: Dict[int, int] = {}
        self.visits_by_pc: Dict[int, int] = {}

    def on_instruction(self, event: TraceEvent) -> None:
        self.cycles_by_pc[event.pc] = self.cycles_by_pc.get(event.pc, 0) + event.cycles
        self.visits_by_pc[event.pc] = self.visits_by_pc.get(event.pc, 0) + 1

    def cycles_in_range(self, lo: int, hi: int) -> int:
        """Total cycles attributed to addresses in ``[lo, hi]`` inclusive."""
        return sum(c for pc, c in self.cycles_by_pc.items() if lo <= pc <= hi)

    def total_cycles(self) -> int:
        return sum(self.cycles_by_pc.values())
