"""MicroBlaze processor configuration.

Section 2 of the paper stresses that the MicroBlaze is a *configurable*
soft core: the designer chooses whether to instantiate the hardware barrel
shifter, the hardware multiplier, the hardware divider, and instruction and
data caches, trading configurable-logic area for performance.  The paper's
configurability study measures ``brev`` running 2.1x slower when the barrel
shifter and multiplier are omitted and ``matmul`` 1.3x slower without the
multiplier; the main experiments configure the core *with* the barrel
shifter and multiplier because the benchmarks need both.

:class:`MicroBlazeConfig` captures those choices plus the timing parameters
of the three-stage pipeline that the paper quotes (single-cycle ALU
operations, three-cycle multiplies, one-to-three cycle branches) and the
85 MHz maximum clock frequency of the core on a Spartan3 FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..isa.instructions import HwUnit, InstrClass


@dataclass(frozen=True)
class PipelineTimings:
    """Per-instruction-class cycle costs of the three-stage pipeline.

    The values follow the MicroBlaze documentation of the era and the
    figures quoted in Section 2 of the paper: ALU/logic/shift operations
    complete in a single cycle, multiplies take three cycles, the iterative
    divider takes 34, loads on the local memory bus take two cycles, and
    branches take one cycle when not taken and two when taken (the flushed
    fetch accounts for the second cycle; delay-slot forms hide it by
    executing a useful instruction instead).
    """

    alu: int = 1
    logical: int = 1
    shift: int = 1
    barrel_shift: int = 1
    multiply: int = 3
    divide: int = 34
    compare: int = 1
    sext: int = 1
    load: int = 2
    store: int = 2
    imm_prefix: int = 1
    branch_not_taken: int = 1
    branch_taken: int = 2
    call: int = 2
    ret: int = 2
    opb_access_extra: int = 3

    def for_class(self, klass: InstrClass) -> int:
        """Base latency for a (non-branch) instruction class."""
        mapping: Dict[InstrClass, int] = {
            InstrClass.ALU: self.alu,
            InstrClass.LOGICAL: self.logical,
            InstrClass.SHIFT: self.shift,
            InstrClass.BARREL_SHIFT: self.barrel_shift,
            InstrClass.MULTIPLY: self.multiply,
            InstrClass.DIVIDE: self.divide,
            InstrClass.COMPARE: self.compare,
            InstrClass.SEXT: self.sext,
            InstrClass.LOAD: self.load,
            InstrClass.STORE: self.store,
            InstrClass.IMM_PREFIX: self.imm_prefix,
            InstrClass.CALL: self.call,
            InstrClass.RETURN: self.ret,
            InstrClass.BRANCH_UNCOND: self.branch_taken,
        }
        if klass not in mapping:
            raise KeyError(f"no base latency for class {klass}")
        return mapping[klass]


@dataclass(frozen=True)
class MicroBlazeConfig:
    """User-selectable configuration of the MicroBlaze soft core.

    Attributes
    ----------
    use_barrel_shifter / use_multiplier / use_divider:
        Whether the optional functional units are instantiated.  The
        compiler consults these flags and falls back to software routines
        (successive adds for left shifts, single-bit shift loops, a
        shift-and-add multiply routine) when a unit is absent, exactly as
        described in Section 2.
    use_icache / use_dcache:
        Whether the configurable caches are instantiated.  With both
        instruction and data memory held in local BRAM (Figure 1) the
        caches do not change timing, but the flags participate in the area
        and power models.
    clock_mhz:
        Core clock frequency; 85 MHz is the maximum the paper reports for a
        MicroBlaze on a Spartan3.
    instr_bram_kb / data_bram_kb:
        Sizes of the instruction and data block RAMs.
    timings:
        Pipeline latency table (:class:`PipelineTimings`).
    """

    use_barrel_shifter: bool = True
    use_multiplier: bool = True
    use_divider: bool = False
    use_icache: bool = False
    use_dcache: bool = False
    clock_mhz: float = 85.0
    instr_bram_kb: int = 64
    data_bram_kb: int = 64
    timings: PipelineTimings = field(default_factory=PipelineTimings)

    # ----------------------------------------------------------------- helpers
    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    @property
    def cycle_time_ns(self) -> float:
        return 1e3 / self.clock_mhz

    def has_unit(self, unit: HwUnit) -> bool:
        """Whether the optional hardware unit ``unit`` is instantiated."""
        return {
            HwUnit.MULTIPLIER: self.use_multiplier,
            HwUnit.DIVIDER: self.use_divider,
            HwUnit.BARREL_SHIFTER: self.use_barrel_shifter,
        }[unit]

    def available_units(self) -> tuple:
        return tuple(unit for unit in HwUnit if self.has_unit(unit))

    def without(self, *units: HwUnit) -> "MicroBlazeConfig":
        """Return a copy of the configuration with ``units`` removed.

        Used by the Section 2 configurability study, e.g.
        ``config.without(HwUnit.BARREL_SHIFTER, HwUnit.MULTIPLIER)``.
        """
        changes = {}
        for unit in units:
            if unit is HwUnit.MULTIPLIER:
                changes["use_multiplier"] = False
            elif unit is HwUnit.DIVIDER:
                changes["use_divider"] = False
            elif unit is HwUnit.BARREL_SHIFTER:
                changes["use_barrel_shifter"] = False
        return replace(self, **changes)

    def describe(self) -> str:
        """Short human readable summary used by reports and examples."""
        units = []
        if self.use_barrel_shifter:
            units.append("barrel shifter")
        if self.use_multiplier:
            units.append("multiplier")
        if self.use_divider:
            units.append("divider")
        units_text = ", ".join(units) if units else "no optional units"
        return f"MicroBlaze @ {self.clock_mhz:g} MHz ({units_text})"


#: The configuration used by the paper's main experiments (Section 4):
#: barrel shifter and multiplier instantiated, 85 MHz on a Spartan3.
PAPER_CONFIG = MicroBlazeConfig(use_barrel_shifter=True, use_multiplier=True,
                                use_divider=False, clock_mhz=85.0)

#: Minimal configuration (no optional units) used by the Section 2 study.
MINIMAL_CONFIG = MicroBlazeConfig(use_barrel_shifter=False, use_multiplier=False,
                                  use_divider=False, clock_mhz=85.0)
