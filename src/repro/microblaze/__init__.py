"""MicroBlaze soft-core system simulator.

Implements the "simple MicroBlaze processor system" of Figure 1: the
configurable three-stage-pipeline core (:mod:`~repro.microblaze.cpu`), the
instruction/data block RAMs and local memory busses
(:mod:`~repro.microblaze.memory`), the on-chip peripheral bus
(:mod:`~repro.microblaze.opb`), and the system wrapper that loads and runs
assembled programs (:mod:`~repro.microblaze.system`).  Execution can be
observed through trace listeners (:mod:`~repro.microblaze.trace`), which is
how the warp processor's profiler is driven.
"""

from .checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    capture_checkpoint,
    describe_checkpoint,
    fan_out,
    restore_checkpoint,
    run_slice,
    spawn_from_checkpoint,
)
from .config import MINIMAL_CONFIG, PAPER_CONFIG, MicroBlazeConfig, PipelineTimings
from .cpu import (
    CPUError,
    ExecutionLimitExceeded,
    ExecutionStats,
    IllegalInstruction,
    MicroBlazeCPU,
)
from .engines import (
    DEFAULT_ENGINE,
    ExecutionEngine,
    UnknownEngineError,
    engine_names,
    register_engine,
    validate_engine_name,
)
from .memory import BlockRAM, LocalMemoryBus, MemoryError_
from .opb import OPB_BASE_ADDRESS, BusError, OnChipPeripheralBus, SimplePeripheral
from .system import ExecutionResult, MicroBlazeSystem, run_program
from .trace import (
    BranchObserver,
    BranchTraceRecorder,
    ClassProfile,
    InstructionTraceRecorder,
    PcCycleHistogram,
    TraceEvent,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "capture_checkpoint",
    "describe_checkpoint",
    "fan_out",
    "restore_checkpoint",
    "run_slice",
    "spawn_from_checkpoint",
    "DEFAULT_ENGINE",
    "ExecutionEngine",
    "UnknownEngineError",
    "engine_names",
    "register_engine",
    "validate_engine_name",
    "BranchObserver",
    "MINIMAL_CONFIG",
    "PAPER_CONFIG",
    "MicroBlazeConfig",
    "PipelineTimings",
    "CPUError",
    "ExecutionLimitExceeded",
    "ExecutionStats",
    "IllegalInstruction",
    "MicroBlazeCPU",
    "BlockRAM",
    "LocalMemoryBus",
    "MemoryError_",
    "OPB_BASE_ADDRESS",
    "BusError",
    "OnChipPeripheralBus",
    "SimplePeripheral",
    "ExecutionResult",
    "MicroBlazeSystem",
    "run_program",
    "BranchTraceRecorder",
    "ClassProfile",
    "InstructionTraceRecorder",
    "PcCycleHistogram",
    "TraceEvent",
]
