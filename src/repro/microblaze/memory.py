"""Block RAM and local-memory-bus models for the MicroBlaze system.

Figure 1 of the paper shows the simple MicroBlaze system this package
reproduces: the processor talks to an instruction block RAM over the
instruction local memory bus (``i_lmb``) and to a data block RAM over the
data local memory bus (``d_lmb``).  Both BRAMs are dual ported — the second
ports are what the warp processor's dynamic partitioning module and the
WCLA's data address generator use to read the binary and to access the
application's data (Figures 2 and 3).

The models here are functional (byte-addressable storage with word, half
word, and byte access) plus simple occupancy accounting on the second port
so that contention between the processor and the WCLA can be studied.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional


class MemoryError_(Exception):
    """Raised on out-of-range or misaligned memory accesses."""


class BlockRAM:
    """A dual-ported block RAM with byte-addressable little-endian storage."""

    def __init__(self, size_bytes: int, name: str = "bram"):
        if size_bytes <= 0:
            raise ValueError("BRAM size must be positive")
        self.name = name
        self.size = size_bytes
        self.storage = bytearray(size_bytes)
        #: Number of accesses performed through port A (processor side).
        self.port_a_accesses = 0
        #: Number of accesses performed through port B (DPM / WCLA side).
        self.port_b_accesses = 0

    # -------------------------------------------------------------- bounds
    def _check(self, address: int, width: int) -> None:
        if address < 0 or address + width > self.size:
            raise MemoryError_(
                f"{self.name}: access of {width} bytes at {address:#x} outside "
                f"0..{self.size:#x}"
            )
        if width > 1 and address % width:
            raise MemoryError_(
                f"{self.name}: misaligned {width}-byte access at {address:#x}"
            )

    # -------------------------------------------------------------- port A
    def load(self, address: int, width: int, signed: bool = False) -> int:
        """Read ``width`` bytes at ``address`` through port A."""
        self._check(address, width)
        self.port_a_accesses += 1
        value = int.from_bytes(self.storage[address:address + width], "little")
        if signed and value >= 1 << (8 * width - 1):
            value -= 1 << (8 * width)
        return value

    def store(self, address: int, value: int, width: int) -> None:
        """Write ``width`` bytes at ``address`` through port A."""
        self._check(address, width)
        self.port_a_accesses += 1
        self.storage[address:address + width] = (value & ((1 << (8 * width)) - 1)).to_bytes(
            width, "little"
        )

    # -------------------------------------------------------------- port B
    def load_port_b(self, address: int, width: int = 4, signed: bool = False) -> int:
        """Read through the second port (DPM / WCLA side)."""
        self._check(address, width)
        self.port_b_accesses += 1
        value = int.from_bytes(self.storage[address:address + width], "little")
        if signed and value >= 1 << (8 * width - 1):
            value -= 1 << (8 * width)
        return value

    def store_port_b(self, address: int, value: int, width: int = 4) -> None:
        """Write through the second port (DPM / WCLA side)."""
        self._check(address, width)
        self.port_b_accesses += 1
        self.storage[address:address + width] = (value & ((1 << (8 * width)) - 1)).to_bytes(
            width, "little"
        )

    # ------------------------------------------------------------ bulk load
    def load_image(self, image: bytes, base: int = 0) -> None:
        """Initialise the BRAM contents from ``image`` starting at ``base``."""
        if base + len(image) > self.size:
            raise MemoryError_(
                f"{self.name}: image of {len(image)} bytes at base {base:#x} "
                f"does not fit in {self.size} bytes"
            )
        self.storage[base:base + len(image)] = image

    def words(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        """Return BRAM contents as little-endian 32-bit words, one pass.

        ``start`` is a word-aligned byte offset and ``count`` the number of
        words (default: everything from ``start`` to the end).  The whole
        range is unpacked in a single ``struct`` call instead of slicing
        byte quadruples one by one; the disassembler and the dynamic
        partitioning module's binary reads share this path.
        """
        if start % 4:
            raise MemoryError_(f"{self.name}: misaligned word read at {start:#x}")
        if count is None:
            count = (self.size - start) // 4
        if start < 0 or start + 4 * count > self.size:
            raise MemoryError_(
                f"{self.name}: word range {count}@{start:#x} outside 0..{self.size:#x}"
            )
        return list(struct.unpack_from(f"<{count}I", self.storage, start))

    def store_words(self, address: int, words: List[int]) -> None:
        """Write little-endian 32-bit ``words`` at byte ``address`` in one pass."""
        if address % 4:
            raise MemoryError_(f"{self.name}: misaligned word write at {address:#x}")
        if address < 0 or address + 4 * len(words) > self.size:
            raise MemoryError_(
                f"{self.name}: word range {len(words)}@{address:#x} outside "
                f"0..{self.size:#x}"
            )
        struct.pack_into(f"<{len(words)}I", self.storage, address, *words)


@dataclass
class LocalMemoryBus:
    """A local memory bus (LMB) connecting the core to one BRAM.

    The LMB is a synchronous single-master bus; BRAM reads complete in two
    clock cycles and writes in two (the second cycle is the BRAM's
    registered output / write strobe).  The bus keeps simple traffic
    statistics that feed the power model (bus toggling contributes to the
    dynamic power of the Spartan3 implementation).
    """

    bram: BlockRAM
    name: str = "lmb"
    read_latency: int = 2
    write_latency: int = 2
    reads: int = 0
    writes: int = 0

    def read(self, address: int, width: int = 4, signed: bool = False) -> int:
        self.reads += 1
        return self.bram.load(address, width, signed=signed)

    def write(self, address: int, value: int, width: int = 4) -> None:
        self.writes += 1
        self.bram.store(address, value, width)

    @property
    def transactions(self) -> int:
        return self.reads + self.writes
