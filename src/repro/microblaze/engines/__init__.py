"""Pluggable execution-engine registry for the MicroBlaze simulator.

The seed simulator hardcoded its engine choice as a string whitelist in
``cpu.py`` (the old ``_VALID_ENGINES`` tuple) and every layer above it —
the system wrapper, the warp service, the CLI, the wire protocol — carried
the same two literal names.  This package replaces the whitelist with a
first-class registry, exactly as :mod:`repro.cad` replaced the hardcoded
partitioning flow with registered stages: an engine is a named factory
producing an :class:`ExecutionEngine` bound to one
:class:`~repro.microblaze.cpu.MicroBlazeCPU`, and everything above the CPU
resolves engine names through :func:`validate_engine_name` /
:func:`engine_names` instead of a copy of the list.

Four engines register themselves on import:

* ``interp`` — the reference interpreter (defines the semantics; the only
  engine that can feed full per-instruction trace events);
* ``threaded`` (the default) — the threaded-code engine: per-instruction
  handler closures strung into superblocks with pre-aggregated statistics
  (:mod:`repro.microblaze.engine` holds its block compiler);
* ``jit`` — the source-generating engine: per superblock it emits
  specialized Python source (handler bodies inlined, statistics folded
  into constants, the terminating branch at the end), ``exec``\\ s it once
  into a cached closure, and dispatches block-at-a-time.
* ``region`` — the region JIT: jit superblocks whose entries prove hot
  (edge-profile seeded, tunable threshold) are fused — successors chained
  — into one generated code object with internal ``while``-loop dispatch
  and deferred block-count statistics, eliminating per-block dispatch on
  hot paths.

**The engine contract** covers four responsibilities:

1. *Dispatch loop* — :meth:`ExecutionEngine.run` executes until halt or
   budget; the CPU driver only calls it when the engine's capability flags
   fit the run (otherwise it falls back to the interpreter, e.g. for
   full-trace listeners).
2. *Decode-cache invalidation* — :meth:`ExecutionEngine.invalidate` drops
   derived translations covering a patched byte address (or everything).
   The CPU's word-level decode cache is invalidated by the driver; the
   engine only manages its own translations.
3. *Checkpoint derived-state rebuild* — :meth:`ExecutionEngine.on_restore`
   runs after a checkpoint restore; translations are derived state, never
   part of a snapshot, and must be rebuilt lazily.
4. *Listener/branch-hook capabilities* — the class flags below tell the
   driver what the engine can observe without falling back.

**Registering an engine**::

    from repro.microblaze.engines import ExecutionEngine, register_engine

    class TracingJit(JitEngine):
        ...

    register_engine("jit-tracing", TracingJit)

and ``engine="jit-tracing"`` becomes valid everywhere an engine name
travels: ``MicroBlazeSystem(engine=...)``, ``WarpJob(engine=...)``,
``repro-warp suite --engines``, the WARPNET job codec and
``run_evaluation(engine=...)``.  Unknown names fail up front with
:class:`UnknownEngineError` naming the registered engines.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

#: Engine used when a CPU (or system, job, sweep) is built without an
#: explicit choice.
DEFAULT_ENGINE = "threaded"


class UnknownEngineError(ValueError):
    """Raised when an engine name does not resolve against the registry."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(engine_names())}"
        )

    def __reduce__(self):
        # The one-arg constructor takes the engine *name*, so the default
        # Exception reduction (which re-passes the formatted message)
        # would double-wrap it when a pool worker pickles the error back
        # to its caller.
        return (UnknownEngineError, (self.name,))


class ExecutionEngine:
    """Base class / contract for one CPU's execution engine.

    Subclasses implement the dispatch loop and own whatever translation
    caches they derive from the instruction BRAM.  One instance is bound
    to one CPU for the CPU's whole lifetime (engines may bind the CPU's
    register file, counter array and peripheral bus once — all three have
    stable identities across :meth:`~repro.microblaze.cpu.MicroBlazeCPU.reset`).
    """

    #: Registry name (set on registration; informational).
    name: str = "?"
    #: Whether the engine itself can feed full per-instruction
    #: :class:`~repro.microblaze.trace.TraceEvent` streams.  Engines
    #: without this capability make the driver fall back to the
    #: interpreter when a full-trace listener is attached.
    full_trace: bool = False
    #: Whether the engine delivers zero-allocation branch hooks
    #: (``on_branch(pc, target, taken)``) at full speed.
    branch_hooks: bool = True
    #: Whether :meth:`run` honours a cycle budget / a halt address.  The
    #: driver falls back to the interpreter otherwise.
    supports_max_cycles: bool = False
    supports_halt_address: bool = False

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        #: Derived translations keyed by entry address (block engines).
        #: The interpreter keeps it empty.
        self.blocks: Dict[int, tuple] = {}

    # ------------------------------------------------------------- dispatch
    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> None:
        """Execute until the program halts or the budget is exceeded."""
        raise NotImplementedError

    # ---------------------------------------------------------- invalidation
    def invalidate(self, address: Optional[int] = None) -> None:
        """Drop derived translations.

        ``address=None`` drops everything; a byte address drops only the
        translations whose compiled range covers it (the granularity at
        which the dynamic partitioning module patches single words).
        Engines that cache nothing inherit this no-op-on-empty default.
        """
        if address is None:
            self.blocks.clear()
            return
        blocks = self.blocks
        stale = []
        for entry, block in blocks.items():
            low, high = self._block_range(block)
            if low <= address <= high:
                stale.append(entry)
        for entry in stale:
            del blocks[entry]

    @staticmethod
    def _block_range(block: tuple) -> Tuple[int, int]:
        """(entry, end) byte range of one cached translation (inclusive)."""
        raise NotImplementedError

    # ---------------------------------------------------------- checkpointing
    def on_restore(self) -> None:
        """Checkpoint derived-state rebuild hook.

        Called after a checkpoint restore has rewritten the instruction
        BRAM and architectural state: translations are derived state (a
        snapshot never carries them) and must be rebuilt lazily.
        """
        self.invalidate()


# --------------------------------------------------------------------------- registry
EngineFactory = Callable[[object], ExecutionEngine]

_REGISTRY: Dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory) -> None:
    """Register ``factory`` (``cpu -> ExecutionEngine``) under ``name``.

    Re-registering a name replaces the factory (so tests and downstream
    code can swap variants), mirroring ``repro.cad.register_stage``.
    """
    if not name or not isinstance(name, str):
        raise ValueError("engine name must be a non-empty string")
    _REGISTRY[name] = factory


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, sorted (the single source of truth — the
    seed's hardcoded ``_VALID_ENGINES`` whitelist lives on only here)."""
    return tuple(sorted(_REGISTRY))


def validate_engine_name(name: Optional[str]) -> str:
    """Resolve ``name`` against the registry.

    ``None`` resolves to :data:`DEFAULT_ENGINE`; unknown names raise
    :class:`UnknownEngineError` listing every registered engine.  Layers
    that carry engine names (jobs, CLI, wire codec) call this up front so
    a typo fails at submission, not deep inside a worker.
    """
    if name is None:
        return DEFAULT_ENGINE
    # The isinstance guard keeps non-string junk (e.g. a list from a JSON
    # job file) on the clean-error path instead of raising TypeError from
    # the dict membership test.
    if not isinstance(name, str) or name not in _REGISTRY:
        raise UnknownEngineError(name)
    return name


def create_engine(name: Optional[str], cpu) -> ExecutionEngine:
    """Build the engine ``name`` bound to ``cpu`` (registry lookup)."""
    resolved = validate_engine_name(name)
    engine = _REGISTRY[resolved](cpu)
    engine.name = resolved
    return engine


# Self-registration of the built-in engines (import order matters only in
# that the registry functions above must exist first).
from . import interp as _interp  # noqa: E402  (registration side effect)
from . import threaded as _threaded  # noqa: E402
from . import jit as _jit  # noqa: E402
from . import region as _region  # noqa: E402

__all__ = [
    "DEFAULT_ENGINE",
    "ExecutionEngine",
    "UnknownEngineError",
    "create_engine",
    "engine_names",
    "register_engine",
    "validate_engine_name",
]
