"""Region JIT: edge-profile-guided trace compilation with superblock chaining.

The jit engine eliminated per-instruction calls but still pays, for every
superblock executed, one dict lookup, one Python call into the block
closure, a budget add/compare in the dispatch loop, and half a dozen
counter-array writes for the block's pre-aggregated statistics.  On a hot
loop those per-block costs dominate — the loop body itself is a handful
of specialized statements.

This engine removes them the way whole-function dynamic binary
translators do: once a block entry has been dispatched past a tunable
threshold (:attr:`RegionEngine.hot_threshold`, seeded from any attached
:class:`~repro.profiler.profiler.OnChipProfiler`'s ``edge_counts`` so
prior profiling shortens warm-up), the engine walks the *static* control
flow out from the hot root — fall-throughs, direct branches, both arms of
conditional branches — and fuses up to :attr:`RegionEngine.max_region_blocks`
superblocks into a single generated code object: an internal
``while``-loop over a pc-to-label dispatch chain in which every static
terminator *chains* directly to its successor's label.  Hot paths then
run without leaving one Python frame.

Statistics are deferred: each fused block keeps one local execution
counter (plus taken/not-taken counters for conditional terminators) and
the pre-aggregated per-block deltas are multiplied out into the CPU
counter array in a ``finally`` at every region exit — halt, budget
expiry, a branch leaving the region, or a fault.  Branch hooks (the
on-chip profiler) still fire inline with exact per-event arguments.

Invariants inherited from the jit engine:

* bit-exact architectural state and statistics vs the interpreter on
  fault-free runs (the generated bodies come from the same
  :class:`~repro.microblaze.engines.jit.SourceBlockCompiler` pieces, and
  the deferred counters multiply out the exact same deltas);
* ``invalidate(address)`` tears down any region whose fused span covers
  the patched address (members then re-profile and re-form);
* cross-engine checkpoints: ``on_restore`` drops all generated state and
  regions re-form lazily against the restored memories;
* tick-deadline splitting: while a peripheral is ticking the engine runs
  the jit's block-at-a-time path (regions are neither formed nor
  entered), so deadline handling is identical;
* ``precise_fault_stats`` disables region formation entirely — the
  engine then behaves exactly like the jit engine, whose precise blocks
  maintain interpreter-exact per-instruction state;
* capability flags match the jit engine, so a full-trace listener still
  falls back to the interpreter in the CPU driver.

In default (imprecise) mode the same known divergence as the threaded
and jit engines applies, with the same bound: a *runtime* fault landing
mid-block can leave statistics ahead by up to one block, because block
deltas are counted at block entry and flushed on the fault path.
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional, Tuple

from ... import obs
from ...isa.encoding import EncodingError, decode
from ...isa.instructions import InstrClass
from ...isa.registers import WORD_MASK, to_signed
from ..engine import (
    CLASS_INDEX,
    CNT_BRANCHES_NOT_TAKEN,
    CNT_BRANCHES_TAKEN,
    CNT_CLASS_COUNT,
    CNT_CLASS_CYCLES,
    CNT_CYCLES,
    CNT_INSTRUCTIONS,
    CNT_LOADS,
    CNT_OPB_READS,
    CNT_OPB_WRITES,
    CNT_STORES,
    MAX_BLOCK_INSTRUCTIONS,
    _ABSOLUTE_BRANCHES,
    signed_division,
)
from ..memory import MemoryError_
from . import ExecutionEngine, register_engine
from .jit import (
    SourceBlockCompiler,
    _CODE_CACHE,
    _LOAD_WIDTHS,
    _STORE_WIDTHS,
    _codegen_bucket,
    _record_translation,
)
from ..opb import OPB_BASE_ADDRESS

_M = WORD_MASK
_SIGN = 0x8000_0000

#: Default dispatch count past which a block entry is promoted to a
#: region root.  Low enough that a loop promotes within its first few
#: thousand instructions, high enough that straight-line start-up code
#: never pays region formation.
DEFAULT_HOT_THRESHOLD = 64

#: Default cap on superblocks fused per region.  Bounds both the emitted
#: source size and the worst-case pc-to-label scan inside the region.
DEFAULT_MAX_REGION_BLOCKS = 32

#: Entry-count value marking "never promote" (already fused, or scanned
#: and found unregionable).  Far enough from zero that continued
#: counting can never crawl back to a positive threshold.
_SENTINEL = -(1 << 60)

_N_COUNTERS = CNT_CLASS_CYCLES + len(CLASS_INDEX)

_COND_EXPR = {
    "EQ": "_x == 0",
    "NE": "_x != 0",
    "LT": f"_x >= {_SIGN}",
    "LE": f"_x >= {_SIGN} or _x == 0",
    "GT": f"0 < _x < {_SIGN}",
    "GE": f"_x < {_SIGN}",
}


class _BlockIR:
    """One scanned superblock, ready to be fused into a region.

    ``deltas`` carries every statically known statistic of the block —
    straight-line instructions, imm prefixes, delay-slot self-stats and,
    for unconditionally-taken static terminators, the branch footer —
    multiplied out per execution at region exit.  ``kind`` selects the
    terminator emission:

    * ``"fall"`` — block-size split; ``term`` is the next pc.
    * ``"jump"`` — static unconditional branch/call; ``term`` is
      ``(effect_lines, branch_pc, target)`` (stats in ``deltas``).
    * ``"halt"`` — the static self-branch halt idiom; ``term`` is
      ``(branch_pc, target)``.
    * ``"cond"`` — static conditional branch; ``term`` is
      ``(branch_pc, ra_expr, cond_expr, taken_target, fallthrough,
      slot_lines, taken_deltas, nottaken_deltas)`` with the per-arm
      deltas deferred through taken/not-taken counters.
    * ``"inline"`` — dynamic-target or OPB-dynamic-slot terminator;
      ``term`` is ``(lines, return_expr, is_uncond)`` reusing the jit
      terminator verbatim (stats recorded inline).
    """

    __slots__ = ("entry", "end", "n", "body", "deltas", "kind", "term",
                 "succs")

    def __init__(self, entry: int, end: int, n: int, body: List[str],
                 deltas: List[int], kind: str, term, succs: List[int]):
        self.entry = entry
        self.end = end
        self.n = n
        self.body = body
        self.deltas = deltas
        self.kind = kind
        self.term = term
        self.succs = succs


_REG_RE = re.compile(r"regs\[(\d+)\]")
_REG_ONLY_RE = re.compile(r"^regs\[(\d+)\]$")


def _stmt_reads(lines: List[str], write: Optional[int]) -> frozenset:
    """Register indices read by the emitted lines of one instruction.

    Every generated form assigns ``regs[write]`` on a line whose prefix
    is exactly that subscript; occurrences elsewhere (including the
    right-hand side of the write itself) are reads.
    """
    reads = set()
    prefix = None if write is None else f"regs[{write}] = "
    for line in lines:
        text = line
        if prefix is not None and line.startswith(prefix):
            text = line[len(prefix):]
        for match in _REG_RE.finditer(text):
            reads.add(int(match.group(1)))
    return frozenset(reads)


_REG_WRITE_RE = re.compile(r"^regs\[(\d+)\] = (.*)$")


def _live_lines(records: List[tuple]) -> List[str]:
    """Dead-write elimination plus register localization.

    *Dead writes* — a pure compute result overwritten later in the
    block with no intervening read of the register and no intervening
    fault point — are dropped entirely (deferred statistics still count
    the instruction).

    *Localization* — within each stretch of pure records between fault
    points, registers touched three or more times are held in ``_r<N>``
    Python locals (a ``STORE_FAST`` instead of a list-subscript store
    per write, likewise for reads) and flushed back to ``regs`` at the
    end of the stretch.  Loads and stores are the only straight-line
    fault points, and hooks/terminators/exits only appear after block
    bodies, so the architectural register file is current everywhere it
    can be observed."""
    candidates: Dict[int, int] = {}
    dead = set()
    for index, (lines, write, reads, fault, pure) in enumerate(records):
        for reg in reads:
            candidates.pop(reg, None)
        if fault:
            candidates.clear()
        if write is not None:
            previous = candidates.pop(write, None)
            if previous is not None:
                dead.add(previous)
            if pure:
                candidates[write] = index

    live = [record for index, record in enumerate(records)
            if index not in dead]

    # Split into stretches of pure records delimited by fault records,
    # and pick the localization set per stretch: registers with >= 3
    # accesses amortize the local's flush-back write.
    out: List[str] = []
    dirty: set = set()
    local_set: set = set()

    def _sub(match) -> str:
        reg = int(match.group(1))
        return f"_r{reg}" if reg in dirty else match.group(0)

    def _flush() -> None:
        for reg in sorted(dirty):
            out.append(f"regs[{reg}] = _r{reg}")
        dirty.clear()

    stretch_start = 0
    index = 0
    total = len(live)
    while index <= total:
        at_fault = index == total or live[index][3]
        if at_fault:
            stretch = live[stretch_start:index]
            accesses: Dict[int, int] = {}
            for lines, write, reads, fault, pure in stretch:
                if write is not None:
                    accesses[write] = accesses.get(write, 0) + 1
                for reg in reads:
                    accesses[reg] = accesses.get(reg, 0) + 1
            local_set = {reg for reg, n in accesses.items() if n >= 3}
            for lines, write, reads, fault, pure in stretch:
                for line in lines:
                    match = _REG_WRITE_RE.match(line)
                    if match is not None and int(match.group(1)) \
                            in local_set:
                        reg = int(match.group(1))
                        rhs = _REG_RE.sub(_sub, match.group(2)) \
                            if dirty else match.group(2)
                        out.append(f"_r{reg} = {rhs}")
                        dirty.add(reg)
                    elif dirty:
                        out.append(_REG_RE.sub(_sub, line))
                    else:
                        out.append(line)
            _flush()
            if index < total:
                out += live[index][0]
            stretch_start = index + 1
        index += 1
    return out


class _RegionScanner(SourceBlockCompiler):
    """Scans superblocks into :class:`_BlockIR` for region fusion,
    applying superblock-scope optimization the per-block baseline jit
    deliberately skips.

    The scan tracks, per block, which registers hold *known constants*
    or *copies* of other registers, and generation then

    * folds constant expressions at scan time and substitutes known
      operands as literals,
    * simplifies the compiler's move/zero idioms (``add rd, rx, r0``
      becomes a plain copy, ``addi rd, r0, imm`` a literal),
    * inlines ``to_signed`` at its hot uses — signed compares run on
      bias-flipped unsigned values, arithmetic shifts and sign
      extensions as branch-free xor/sub identities — removing a Python
      call per use,
    * eliminates dead register writes: a pure compute result overwritten
      later in the same block with no intervening read *and no
      intervening fault point* (loads and stores are the only faulting
      straight-line instructions) can never be observed.  The deferred
      statistics still count the instruction — only its body vanishes —
      and at every fault point the architectural register file is
      bit-exact because elimination never crosses one.

    Returns ``None`` for blocks that cannot join a region: compile-time
    faults (undecodable words, fetch past the BRAM end, missing
    functional units, illegal delay slots) stay on the jit/raiser path
    where their exact fault semantics are already proven.
    """

    def __init__(self, cpu) -> None:
        super().__init__(cpu, {}, stats_label="region")
        #: Register → known constant value at the current scan point.
        self._known: Dict[int, int] = {}
        #: Register → register it currently mirrors (move coalescing).
        self._copies: Dict[int, int] = {}

    # ----------------------------------------------------- value tracking
    def _val(self, idx: int) -> Tuple[Optional[int], str]:
        """``(constant, source_expression)`` for a register read."""
        if idx == 0:
            return 0, "0"
        const = self._known.get(idx)
        if const is not None:
            return const, str(const)
        src = self._copies.get(idx)
        if src is not None:
            return None, f"regs[{src}]"
        return None, f"regs[{idx}]"

    def _wrote(self, rd: int) -> None:
        """Invalidate tracking after a dynamic write to ``rd``."""
        self._known.pop(rd, None)
        self._copies.pop(rd, None)
        for reg in [reg for reg, src in self._copies.items() if src == rd]:
            del self._copies[reg]

    def _reset_tracking(self) -> None:
        self._known.clear()
        self._copies.clear()

    # ------------------------------------------------------------ scanning
    def _scan_fetch(self, pc: int):
        """Side-effect-free fetch for speculative region scanning.

        The BFS scan walks static successors that may never execute;
        going through :meth:`MicroBlazeCPU.fetch` would charge their
        fetches to instruction-BRAM port A and pre-populate the decode
        cache, making the access counters diverge from the reference
        interpreter (which only fetches what it runs).  Decode-cache
        hits are reused; misses decode straight from storage without
        recording the access or the decode."""
        cpu = self.cpu
        cached = cpu._decoded.get(pc)
        if cached is not None:
            return cached
        storage = cpu.instr_bram.storage
        if pc < 0 or pc + 4 > len(storage) or pc % 4:
            raise MemoryError_(f"scan fetch outside BRAM at {pc:#x}")
        word = int.from_bytes(storage[pc:pc + 4], "little")
        return decode(word, address=pc)

    def scan_block(self, entry: int) -> Optional[_BlockIR]:
        cpu = self.cpu
        timings = cpu.config.timings
        self._reset_tracking()
        #: ``(lines, write_reg, reads, faultpoint, pure)`` per emitted
        #: straight-line instruction, for the dead-write pass.
        records: List[tuple] = []
        deltas = [0] * _N_COUNTERS
        n = 0
        pc = entry
        pending_imm: Optional[int] = None

        while True:
            try:
                instr = self._scan_fetch(pc)
            except (EncodingError, MemoryError_):
                return None
            unit = instr.requires
            if unit is not None and not cpu.config.has_unit(unit):
                return None

            klass = instr.klass
            if klass is InstrClass.IMM_PREFIX:
                pending_imm = instr.imm & 0xFFFF
                self._delta(deltas, klass, timings.imm_prefix)
                n += 1
                pc += 4
                continue

            if instr.is_branch:
                return self._scan_terminator(entry, pc, instr, pending_imm,
                                             n, deltas, records)

            memory = klass in (InstrClass.LOAD, InstrClass.STORE)
            if klass is InstrClass.LOAD:
                cycles = timings.load
                deltas[CNT_LOADS] += 1
            elif klass is InstrClass.STORE:
                cycles = timings.store
                deltas[CNT_STORES] += 1
            else:
                cycles = timings.for_class(klass)
            from ..cpu import IllegalInstruction
            try:
                lines = self._straightline(instr, pending_imm,
                                           dynamic_stats=False)
            except IllegalInstruction:
                # Unhandled/illegal data instruction: the jit path turns
                # it into a raiser block firing at the exact execution
                # point; keep such blocks out of regions.
                return None
            if lines:
                write = instr.rd if klass is not InstrClass.STORE else None
                records.append((lines, write, _stmt_reads(lines, write),
                                memory, not memory))
            self._delta(deltas, klass, cycles)
            pending_imm = None
            n += 1
            pc += 4

            if n >= MAX_BLOCK_INSTRUCTIONS and pending_imm is None:
                return _BlockIR(entry, pc - 4, n, _live_lines(records),
                                deltas, "fall", pc, [pc])

    # -------------------------------------------------- optimized pieces
    def _address(self, instr, pending_imm: Optional[int]) -> str:
        ca, ea = self._val(instr.ra)
        if instr.spec.fmt.value == "A":
            cb, eb = self._val(instr.rb)
            if ca is not None and cb is not None:
                return str((ca + cb) & _M)
            if ca == 0:
                return eb
            if cb == 0:
                return ea
            return f"({ea} + {eb}) & {_M}"
        imm = self._imm(instr, pending_imm)
        if ca is not None:
            return str((ca + imm) & _M)
        if imm == 0:
            return ea
        return f"({ea} + {imm}) & {_M}"

    def _memory(self, instr, pending_imm: Optional[int],
                dynamic_stats: bool, accumulate: bool,
                load: bool) -> List[str]:
        if dynamic_stats or accumulate:
            lines = super()._memory(instr, pending_imm, dynamic_stats,
                                    accumulate, load)
            if load:
                self._wrote(instr.rd)
            return lines

        # Block-constant statistics (the only mode the scanner uses):
        # same shape as the jit emission, with the BRAM arm inlined to a
        # direct little-endian ``dmem`` access.  The bounds/alignment
        # guard routes bad addresses into ``bram_load``/``bram_store``
        # so the exact :class:`MemoryError_` fires at the exact point;
        # the ``_pa`` deferred counter replaces the per-access
        # ``port_a_accesses`` increment (flushed at region exit).
        cpu = self.cpu
        timings = cpu.config.timings
        rd = instr.rd
        width = (_LOAD_WIDTHS if load else _STORE_WIDTHS)[instr.mnemonic]
        extra = timings.opb_access_extra
        ci = CLASS_INDEX[InstrClass.LOAD if load else InstrClass.STORE]
        port_counter = CNT_OPB_READS if load else CNT_OPB_WRITES
        size = cpu.data_bram.size
        guard = f"_a > {size - width}" if width == 1 else \
            f"_a & {width - 1} or _a > {size - width}"
        src = self._val(rd)[1] if not load else None

        lines = [f"_a = {self._address(instr, pending_imm)}"]
        has_opb = cpu.opb is not None
        indent = ""
        if has_opb:
            lines.append(f"if _a >= {OPB_BASE_ADDRESS} and opb_owns(_a):")
            if load:
                lines.append("    _v = opb_read(_a)")
                if rd:
                    lines.append(f"    regs[{rd}] = _v & {_M}")
            else:
                lines.append(f"    opb_write(_a, {src})")
            lines += [f"    cnt[{CNT_CYCLES}] += {extra}",
                      f"    cnt[{CNT_CLASS_CYCLES + ci}] += {extra}",
                      f"    cnt[{port_counter}] += 1",
                      "else:"]
            indent = "    "
        lines.append(f"{indent}if {guard}:")
        if load:
            lines.append(f"{indent}    bram_load(_a, {width})")
            if width == 1:
                value = "dmem[_a]"
            else:
                value = f'int.from_bytes(dmem[_a:_a + {width}], "little")'
            target = f"regs[{rd}]" if rd else "_v"
            lines.append(f"{indent}{target} = {value}")
        else:
            lines.append(f"{indent}    bram_store(_a, {src}, {width})")
            if width == 1:
                lines.append(f"{indent}dmem[_a] = ({src}) & 255")
            elif width == 4:
                # Register values are already masked to 32 bits.
                lines.append(f"{indent}dmem[_a:_a + 4] = "
                             f'({src}).to_bytes(4, "little")')
            else:
                lines.append(f"{indent}dmem[_a:_a + 2] = "
                             f'(({src}) & 65535).to_bytes(2, "little")')
        lines.append(f"{indent}_pa += 1")
        if load:
            # The loaded value is dynamic (tracking uses the pre-load
            # state for the address, so invalidate only afterwards).
            self._wrote(rd)
        return lines

    def _compute(self, instr, pending_imm: Optional[int]) -> List[str]:
        """Optimizing variant of the jit ``_compute``: identical results
        for every instruction, with known-constant operands substituted
        and folded, move/zero idioms coalesced, and ``to_signed`` calls
        replaced by branch-free xor/sub identities."""
        m = instr.mnemonic
        rd, ra, rb = instr.rd, instr.ra, instr.rb
        imm = self._imm(instr, pending_imm)
        ca, ea = self._val(ra)
        cb, eb = self._val(rb)
        if rd == 0:
            # Discarded writes have no side effect (jit emits nothing).
            return []

        const: Optional[int] = None
        expr: Optional[str] = None
        lines: Optional[List[str]] = None

        if m in ("add", "addk"):
            if ca is not None and cb is not None:
                const = (ca + cb) & _M
            elif ca == 0:
                expr = eb
            elif cb == 0:
                expr = ea
            else:
                expr = f"({ea} + {eb}) & {_M}"
        elif m in ("addi", "addik"):
            if ca is not None:
                const = (ca + imm) & _M
            elif imm == 0:
                expr = ea
            else:
                expr = f"({ea} + {imm}) & {_M}"
        elif m in ("rsub", "rsubk"):
            if ca is not None and cb is not None:
                const = (cb - ca) & _M
            elif ca == 0:
                expr = eb
            else:
                expr = f"({eb} - {ea}) & {_M}"
        elif m in ("rsubi", "rsubik"):
            if ca is not None:
                const = (imm - ca) & _M
            else:
                expr = f"({imm} - {ea}) & {_M}"
        elif m == "mul":
            if ca is not None and cb is not None:
                const = (ca * cb) & _M
            elif ca == 0 or cb == 0:
                const = 0
            else:
                expr = f"({ea} * {eb}) & {_M}"
        elif m == "muli":
            if ca is not None:
                const = (ca * imm) & _M
            elif imm == 0:
                const = 0
            else:
                expr = f"({ea} * {imm}) & {_M}"
        elif m == "idiv":
            if ca is not None and cb is not None:
                const = signed_division(to_signed(cb), to_signed(ca))
            else:
                sa = str(to_signed(ca)) if ca is not None \
                    else f"to_signed({ea})"
                sb = str(to_signed(cb)) if cb is not None \
                    else f"to_signed({eb})"
                expr = f"signed_division({sb}, {sa})"
        elif m == "idivu":
            if ca is not None:
                if ca == 0:
                    const = 0
                elif cb is not None:
                    const = (cb // ca) & _M
                else:
                    expr = f"({eb} // {ca}) & {_M}"
            else:
                lines = [f"_d = {ea}",
                         f"regs[{rd}] = ({eb} // _d) & {_M} if _d else 0"]
        elif m == "cmp":
            if ca is not None and cb is not None:
                x, y = to_signed(ca), to_signed(cb)
                const = (1 if y > x else 0 if y == x else -1) & _M
            else:
                # Signed compare on bias-flipped unsigned patterns:
                # to_signed(y) > to_signed(x)  ⟺  (y ^ 2**31) > (x ^ 2**31).
                bx = str(ca ^ _SIGN) if ca is not None \
                    else f"{ea} ^ {_SIGN}"
                by = str(cb ^ _SIGN) if cb is not None \
                    else f"{eb} ^ {_SIGN}"
                lines = [f"_x = {bx}",
                         f"_y = {by}",
                         f"regs[{rd}] = (1 if _y > _x else 0 if _y == _x "
                         f"else -1) & {_M}"]
        elif m == "cmpu":
            if ca is not None and cb is not None:
                const = (1 if cb > ca else 0 if cb == ca else -1) & _M
            else:
                lines = [f"_x = {ea}",
                         f"_y = {eb}",
                         f"regs[{rd}] = (1 if _y > _x else 0 if _y == _x "
                         f"else -1) & {_M}"]
        elif m == "and":
            if ca is not None and cb is not None:
                const = ca & cb
            elif ca == 0 or cb == 0:
                const = 0
            else:
                expr = f"{ea} & {eb}"
        elif m == "andi":
            if ca is not None:
                const = ca & imm & _M
            elif imm & _M == 0:
                const = 0
            else:
                expr = f"{ea} & {imm & _M}"
        elif m == "or":
            if ca is not None and cb is not None:
                const = ca | cb
            elif ca == 0:
                expr = eb
            elif cb == 0:
                expr = ea
            else:
                expr = f"{ea} | {eb}"
        elif m == "ori":
            if ca is not None:
                const = ca | (imm & _M)
            elif imm & _M == 0:
                expr = ea
            else:
                expr = f"{ea} | {imm & _M}"
        elif m == "xor":
            if ra == rb:
                const = 0
            elif ca is not None and cb is not None:
                const = ca ^ cb
            elif ca == 0:
                expr = eb
            elif cb == 0:
                expr = ea
            else:
                expr = f"{ea} ^ {eb}"
        elif m == "xori":
            if ca is not None:
                const = ca ^ (imm & _M)
            elif imm & _M == 0:
                expr = ea
            else:
                expr = f"{ea} ^ {imm & _M}"
        elif m == "andn":
            if ca is not None and cb is not None:
                const = ca & ~cb & _M
            elif ca == 0:
                const = 0
            elif cb == 0:
                expr = ea
            else:
                expr = f"{ea} & ~{eb} & {_M}"
        elif m == "andni":
            if ca is not None:
                const = ca & ~(imm & _M) & _M
            else:
                expr = f"{ea} & {~(imm & _M) & _M}"
        elif m == "sra":
            if ca is not None:
                const = (to_signed(ca) >> 1) & _M
            else:
                # Branch-free arithmetic shift: ((A ^ S) >> n) - (S >> n)
                # equals to_signed(A) >> n for any 32-bit pattern A.
                expr = f"((({ea} ^ {_SIGN}) >> 1) - {_SIGN >> 1}) & {_M}"
        elif m in ("srl", "src"):
            if ca is not None:
                const = ca >> 1
            else:
                expr = f"{ea} >> 1"
        elif m == "sext8":
            if ca is not None:
                const = to_signed(ca & 0xFF, 8) & _M
            else:
                expr = f"((({ea} & 255) ^ 128) - 128) & {_M}"
        elif m == "sext16":
            if ca is not None:
                const = to_signed(ca & 0xFFFF, 16) & _M
            else:
                expr = f"((({ea} & 65535) ^ 32768) - 32768) & {_M}"
        elif m == "bsll":
            if ca is not None and cb is not None:
                const = (ca << (cb & 31)) & _M
            elif cb is not None:
                expr = f"({ea} << {cb & 31}) & {_M}"
            else:
                expr = f"({ea} << ({eb} & 31)) & {_M}"
        elif m == "bslli":
            shift = instr.imm & 31
            if ca is not None:
                const = (ca << shift) & _M
            else:
                expr = f"({ea} << {shift}) & {_M}"
        elif m == "bsrl":
            if ca is not None and cb is not None:
                const = ca >> (cb & 31)
            elif cb is not None:
                expr = f"{ea} >> {cb & 31}"
            else:
                expr = f"{ea} >> ({eb} & 31)"
        elif m == "bsrli":
            shift = instr.imm & 31
            if ca is not None:
                const = ca >> shift
            else:
                expr = f"{ea} >> {shift}"
        elif m == "bsra":
            if ca is not None and cb is not None:
                const = (to_signed(ca) >> (cb & 31)) & _M
            elif cb is not None:
                shift = cb & 31
                expr = f"((({ea} ^ {_SIGN}) >> {shift}) " \
                       f"- {_SIGN >> shift}) & {_M}"
            else:
                expr = f"(to_signed({ea}) >> ({eb} & 31)) & {_M}"
        elif m == "bsrai":
            shift = instr.imm & 31
            if ca is not None:
                const = (to_signed(ca) >> shift) & _M
            else:
                expr = f"((({ea} ^ {_SIGN}) >> {shift}) " \
                       f"- {_SIGN >> shift}) & {_M}"
        else:
            return super()._compute(instr, pending_imm)

        if const is not None:
            self._wrote(rd)
            self._known[rd] = const
            return [f"regs[{rd}] = {const}"]
        self._wrote(rd)
        if lines is not None:
            return lines
        match = _REG_ONLY_RE.match(expr)
        if match is not None:
            src = int(match.group(1))
            if src != rd:
                self._copies[rd] = src
        return [f"regs[{rd}] = {expr}"]

    # ------------------------------------------------------------ terminator
    def _fold_slot(self, instr, pending_imm: Optional[int],
                   deltas: List[int]) -> Tuple[List[str], int]:
        """Fold a delay slot's self-statistics into the block deltas and
        return its effect-only source plus its static cycle cost."""
        klass = instr.klass
        timings = self.cpu.config.timings
        if klass is InstrClass.LOAD:
            cycles = timings.load
            deltas[CNT_LOADS] += 1
        elif klass is InstrClass.STORE:
            cycles = timings.store
            deltas[CNT_STORES] += 1
        else:
            cycles = timings.for_class(klass)
        self._delta(deltas, klass, cycles)
        body = self._straightline(instr, pending_imm, dynamic_stats=False)
        return body, cycles

    def _scan_terminator(self, entry: int, pc: int, instr,
                         pending_imm: Optional[int], n: int,
                         deltas: List[int],
                         records: List[tuple]) -> Optional[_BlockIR]:
        cpu = self.cpu
        timings = cpu.config.timings
        lines = _live_lines(records)
        end = pc
        slot_instr = None
        if instr.has_delay_slot:
            end = pc + 4
            try:
                slot_instr = self._scan_fetch(pc + 4)
            except (EncodingError, MemoryError_):
                return None
            if slot_instr.is_branch \
                    or slot_instr.klass is InstrClass.IMM_PREFIX:
                return None
            unit = slot_instr.requires
            if unit is not None and not cpu.config.has_unit(unit):
                return None

        klass = instr.klass
        static_fmt = instr.spec.fmt.value != "A"
        # A delay slot touching memory with a peripheral bus attached has
        # a dynamic cycle cost (the OPB access penalty), so its stats
        # cannot be deferred; the jit terminator records them inline.
        slot_static = slot_instr is None or cpu.opb is None or \
            slot_instr.klass not in (InstrClass.LOAD, InstrClass.STORE)
        n_total = n + 1 + (1 if slot_instr is not None else 0)

        if klass is InstrClass.BRANCH_COND and static_fmt and slot_static:
            ci = CLASS_INDEX[klass]
            # The branch reads ra before the slot runs (the slot may
            # overwrite it) — capture the substituted source first.
            ra_expr = self._val(instr.ra)[1]
            slot_lines: List[str] = []
            sc = 0
            if slot_instr is not None:
                slot_lines, sc = self._fold_slot(slot_instr, pending_imm,
                                                 deltas)
            fallthrough = pc + 8 if slot_instr is not None else pc + 4
            taken_target = (pc + to_signed(self._imm(instr,
                                                     pending_imm))) & _M
            taken = [0] * _N_COUNTERS
            taken[CNT_CYCLES] = timings.branch_taken + sc
            taken[CNT_INSTRUCTIONS] = 1
            taken[CNT_CLASS_COUNT + ci] = 1
            taken[CNT_CLASS_CYCLES + ci] = timings.branch_taken + sc
            taken[CNT_BRANCHES_TAKEN] = 1
            nottaken = [0] * _N_COUNTERS
            nottaken[CNT_CYCLES] = timings.branch_not_taken + sc
            nottaken[CNT_INSTRUCTIONS] = 1
            nottaken[CNT_CLASS_COUNT + ci] = 1
            nottaken[CNT_CLASS_CYCLES + ci] = timings.branch_not_taken + sc
            nottaken[CNT_BRANCHES_NOT_TAKEN] = 1
            cond = _COND_EXPR[instr.spec.condition.name]
            term = (pc, ra_expr, cond, taken_target, fallthrough,
                    slot_lines, taken, nottaken)
            return _BlockIR(entry, end, n_total, lines, deltas, "cond",
                            term, [taken_target, fallthrough])

        if klass in (InstrClass.BRANCH_UNCOND, InstrClass.CALL) \
                and static_fmt and slot_static:
            ci = CLASS_INDEX[klass]
            is_uncond = klass is InstrClass.BRANCH_UNCOND
            is_call = klass is InstrClass.CALL
            base = timings.call if is_call else timings.branch_taken
            imm = self._imm(instr, pending_imm)
            target = imm & _M if instr.mnemonic in _ABSOLUTE_BRANCHES \
                else (pc + to_signed(imm)) & _M

            if is_uncond and target == pc:
                # The self-branch halt idiom: the slot is skipped (as in
                # the interpreter) but still counted in the block size.
                deltas[CNT_CYCLES] += base
                deltas[CNT_INSTRUCTIONS] += 1
                deltas[CNT_CLASS_COUNT + ci] += 1
                deltas[CNT_CLASS_CYCLES + ci] += base
                deltas[CNT_BRANCHES_TAKEN] += 1
                return _BlockIR(entry, end, n_total, lines, deltas,
                                "halt", (pc, target), [])

            effects: List[str] = []
            if is_call and instr.rd:
                effects.append(f"regs[{instr.rd}] = {pc & _M}")
                # The link register write precedes the slot, which may
                # read it; it is a known constant from here on.
                self._wrote(instr.rd)
                self._known[instr.rd] = pc & _M
            sc = 0
            if slot_instr is not None:
                slot_lines, sc = self._fold_slot(slot_instr, pending_imm,
                                                 deltas)
                effects += slot_lines
            # Branch footer plus the seed's delay-slot double charge
            # (slot cycles ride in the branch's recorded cycle count on
            # top of the slot's own record, folded above).
            deltas[CNT_CYCLES] += base + sc
            deltas[CNT_INSTRUCTIONS] += 1
            deltas[CNT_CLASS_COUNT + ci] += 1
            deltas[CNT_CLASS_CYCLES + ci] += base + sc
            deltas[CNT_BRANCHES_TAKEN] += 1
            return _BlockIR(entry, end, n_total, lines, deltas, "jump",
                            (effects, pc, target), [target])

        # Dynamic target (fmt A, returns) or dynamic-cost slot: reuse the
        # jit terminator unchanged — it records its own statistics and
        # yields the next pc in a local.
        term, _extra, t_end = self._terminator(pc, instr, pending_imm)
        t_lines, ret = term
        if ret is None:
            # A raiser terminator (faulting slot): leave the block on the
            # jit path where the fault point is exactly reproduced.
            return None
        is_uncond = klass is InstrClass.BRANCH_UNCOND
        return _BlockIR(entry, t_end, n_total, lines, deltas, "inline",
                        (t_lines, ret, is_uncond), [])


def _hook_lines(pc: int, target: str, taken: str) -> List[str]:
    return ["if hooks:",
            "    for _h in hooks:",
            f"        _h.on_branch({pc}, {target}, {taken})"]


def _cond_test(ra_expr: str, cond: str) -> str:
    """The conditional-branch test, with the ``_x`` temporary elided
    when the condition reads it only once (chained comparisons bind the
    operand once, so only ``LE`` genuinely needs the temporary)."""
    if "or" in cond:
        return ""
    return cond.replace("_x", f"({ra_expr})")


#: Cap on superblocks tail-duplicated into one dispatch arm.  Linear
#: ``jump``/``fall`` chains are inlined up to this depth so hot traces
#: run without returning to the pc-to-label scan; past it (or at a
#: cycle) the arm falls back to a dispatch transfer.
_MAX_TRACE_BLOCKS = 12


def _emit_region(root: int, members: Dict[int, _BlockIR],
                 order: List[int]) -> str:
    """Assemble the region source: a ``while``-loop over a pc-to-label
    chain with deferred per-block/per-arm statistics counters flushed in
    a ``finally`` at every exit (branch out, halt, budget, fault).

    Every member gets a labelled arm (any of them can become ``pc``
    through a conditional or dynamic transfer), but within an arm,
    statically-known successor chains are *inlined* — tail-duplicated
    with their own execution counters — so a linear hot trace crosses
    zero dispatch scans.  Budget checks are fused per *unconditional
    run* (a maximal stretch of the trace with no conditional exit): the
    arm's head block keeps its individual check (matching the outer
    dispatch's entry check, so a budget break at the head re-dispatches
    identically), and each following run gets one combined check that
    breaks out *before* executing any of the run — the outer block-level
    dispatch then finishes the tail block-by-block, preserving exact
    jit budget semantics.  Arms are emitted hottest first (cold dispatch
    counts gathered before promotion), keeping the scan short for the
    entries that take it.
    """
    arm_of = {entry: k for k, entry in enumerate(order)}
    init: List[str] = []
    chain: List[str] = []
    for k, entry in enumerate(order):
        if members[entry].kind == "cond":
            init.append(f"_c{k} = _t{k} = _f{k} = 0")
        else:
            init.append(f"_c{k} = 0")

    for arm_index, arm_entry in enumerate(order):
        chain.append(f"{'if' if arm_index == 0 else 'elif'} "
                     f"pc == {arm_entry}:")

        # Pass 1 — walk the inline trace: follow static jump/fall
        # targets and conditional fall-throughs while they stay in the
        # region and the tail-duplication cap allows.
        trace: List[Tuple[int, _BlockIR]] = []
        inlined = set()
        current = arm_entry
        while True:
            ir = members[current]
            trace.append((current, ir))
            inlined.add(current)
            if ir.kind == "fall":
                target = ir.term
            elif ir.kind == "jump":
                target = ir.term[2]
            elif ir.kind == "cond":
                target = ir.term[4]
            else:  # halt / inline end the trace
                break
            if target in members and target not in inlined \
                    and len(inlined) < _MAX_TRACE_BLOCKS:
                current = target
            else:
                break

        # Run heads: the arm head (individual check), the block right
        # after it, and every block following a conditional exit.
        run_heads = {0, 1}
        for i in range(1, len(trace)):
            if trace[i - 1][1].kind == "cond":
                run_heads.add(i)

        arm: List[str] = []
        for i, (entry, ir) in enumerate(trace):
            k = arm_of[entry]
            continues = i + 1 < len(trace)
            if i in run_heads:
                if i == 0:
                    n_run = ir.n
                    arm += [f"if _e + {n_run} > _b:", "    break"]
                else:
                    n_run = ir.n
                    for j in range(i + 1, len(trace)):
                        if j in run_heads:
                            break
                        n_run += trace[j][1].n
                    arm += [f"if _e + {n_run} > _b:",
                            f"    pc = {entry}",
                            "    break"]
                arm.append(f"_e += {n_run}")
            arm.append(f"_c{k} += 1")
            arm += ir.body
            if ir.kind in ("fall", "jump"):
                if ir.kind == "jump":
                    effects, bpc, target = ir.term
                    arm += effects
                    arm += _hook_lines(bpc, str(target), "True")
                else:
                    target = ir.term
                if not continues:
                    arm += [f"pc = {target}", "continue"]
            elif ir.kind == "halt":
                bpc, target = ir.term
                arm.append("cpu.halted = True")
                arm += _hook_lines(bpc, str(target), "True")
                arm += [f"pc = {target}", "break"]
            elif ir.kind == "cond":
                bpc, ra, cond, taken_t, fall_t, slot_lines, _td, _fd \
                    = ir.term
                # ra is read before the slot runs (the slot may
                # overwrite it) — interpreter and jit order.  With a
                # delay slot the test cannot be inlined after the slot
                # lines: capture the pre-slot value in ``_x`` first.
                test = "" if slot_lines else _cond_test(ra, cond)
                if not test:
                    arm.append(f"_x = {ra}")
                    test = cond
                arm += slot_lines
                arm.append(f"if {test}:")
                taken_arm = [f"_t{k} += 1"]
                taken_arm += _hook_lines(bpc, str(taken_t), "True")
                taken_arm += [f"pc = {taken_t}", "continue"]
                arm += ["    " + line for line in taken_arm]
                arm.append(f"_f{k} += 1")
                arm += _hook_lines(bpc, "None", "False")
                if not continues:
                    arm += [f"pc = {fall_t}", "continue"]
            else:  # inline
                t_lines, ret, is_uncond = ir.term
                arm += t_lines
                arm.append(f"pc = {ret}")
                if is_uncond:
                    # A dynamic unconditional branch may hit the halt
                    # idiom at run time.
                    arm += ["if cpu.halted:", "    break"]
                arm.append("continue")
        chain += ["    " + line for line in arm]
    chain += ["else:", "    break"]

    flush: List[str] = []
    for ci in range(_N_COUNTERS):
        terms: List[str] = []
        for k, entry in enumerate(order):
            ir = members[entry]
            if ir.deltas[ci]:
                terms.append(f"{ir.deltas[ci]} * _c{k}")
            if ir.kind == "cond":
                taken, nottaken = ir.term[6], ir.term[7]
                if taken[ci]:
                    terms.append(f"{taken[ci]} * _t{k}")
                if nottaken[ci]:
                    terms.append(f"{nottaken[ci]} * _f{k}")
        if terms:
            flush.append(f"cnt[{ci}] += " + " + ".join(terms))

    body = "\n".join("                " + line for line in chain)
    init_src = "\n".join("        " + line for line in init)
    flush_src = "\n".join("            " + line for line in flush) \
        or "            pass"
    return (
        "def _make(cpu, regs, cnt, bram_load, bram_store, opb_owns, "
        "opb_read, opb_write, hooks, to_signed, signed_division, "
        "IllegalInstruction, dmem, dbram):\n"
        f"    def _region(_e, _b):\n"
        f"        pc = {root}\n"
        "        _pa = 0\n"
        f"{init_src}\n"
        "        try:\n"
        "            while True:\n"
        f"{body}\n"
        "        finally:\n"
        "            dbram.port_a_accesses += _pa\n"
        f"{flush_src}\n"
        "        return pc, _e\n"
        "    return _region\n"
    )


class RegionEngine(ExecutionEngine):
    """Hot-region dispatch over fused multi-superblock code objects."""

    full_trace = False
    branch_hooks = True
    supports_max_cycles = False
    supports_halt_address = False

    #: Dispatch count at which a block entry becomes a region root.
    hot_threshold = DEFAULT_HOT_THRESHOLD
    #: Maximum superblocks fused into one region.
    max_region_blocks = DEFAULT_MAX_REGION_BLOCKS

    def __init__(self, cpu) -> None:
        super().__init__(cpu)
        self.compiler = SourceBlockCompiler(cpu, self.blocks,
                                            stats_label="region")
        self._scanner = _RegionScanner(cpu)
        #: Region root pc → region function ``fn(executed, budget) ->
        #: (next_pc, executed)``.
        self.regions: Dict[int, object] = {}
        #: Region root pc → ``(low, high, member_entries)`` for
        #: invalidation by patched address.
        self._region_meta: Dict[int, Tuple[int, int, Tuple[int, ...]]] = {}
        #: Block entry pc → cold-dispatch count (or :data:`_SENTINEL`).
        self._entry_counts: Dict[int, int] = {}

    @staticmethod
    def _block_range(block: tuple) -> Tuple[int, int]:
        return block[2], block[3]

    # ---------------------------------------------------------- invalidation
    def invalidate(self, address: Optional[int] = None) -> None:
        if address is None:
            self.blocks.clear()
            self.regions.clear()
            self._region_meta.clear()
            self._entry_counts.clear()
            return
        super().invalidate(address)
        dead = [root for root, (low, high, _members)
                in self._region_meta.items() if low <= address <= high]
        for root in dead:
            self.regions.pop(root, None)
            _low, _high, fused = self._region_meta.pop(root)
            # Members drop their never-promote sentinel so the patched
            # code re-profiles and re-forms regions against the new text.
            for entry in fused:
                self._entry_counts.pop(entry, None)

    # ------------------------------------------------------------- promotion
    def _seed_from_hooks(self) -> None:
        """Pre-warm entry counts from an attached profiler's edge counts
        so already-proven-hot branch targets promote on next dispatch."""
        threshold = self.hot_threshold
        counts = self._entry_counts
        for hook in self.cpu._branch_hooks:
            edges = getattr(hook, "edge_counts", None)
            if not edges:
                continue
            for (_src, dst), count in edges.items():
                if count >= threshold \
                        and 0 <= counts.get(dst, 0) < threshold - 1:
                    counts[dst] = threshold - 1

    def _promote(self, root: int):
        """Scan out from ``root`` along static successors and fuse the
        reachable superblocks into one region function (or mark the root
        unregionable)."""
        counts = self._entry_counts
        members: Dict[int, _BlockIR] = {}
        order: List[int] = []
        queue: List[int] = [root]
        while queue and len(order) < self.max_region_blocks:
            entry = queue.pop(0)
            if entry in members:
                continue
            ir = self._scanner.scan_block(entry)
            if ir is None:
                if entry == root:
                    counts[root] = _SENTINEL
                    return None
                continue
            members[entry] = ir
            order.append(entry)
            for succ in ir.succs:
                # Only blocks that the cold dispatch loop has already
                # executed (and therefore fetched and charged against the
                # instruction BRAM port) may join a region: this keeps
                # fetch-port accounting identical to the interpreter and
                # keeps never-executed error paths out of the region body.
                if succ not in members and succ not in queue \
                        and succ in self.blocks:
                    queue.append(succ)

        # Hottest arms first: cold dispatch counts accumulated before
        # promotion approximate per-entry frequency, so the entries that
        # do take the pc-to-label scan find their arm early.
        order.sort(key=lambda e: (e != root, -max(counts.get(e, 0), 0)))
        source = _emit_region(root, members, order)
        start = time.perf_counter()
        hits_before = _CODE_CACHE.hits
        code = _CODE_CACHE.get_or_create(
            source,
            lambda: compile(source, f"<region {root:#x}>", "exec"))
        cached = _CODE_CACHE.hits > hits_before
        namespace: Dict[str, object] = {}
        exec(code, namespace)
        cpu = self.cpu
        opb = cpu.opb
        from ..cpu import IllegalInstruction
        fn = namespace["_make"](
            cpu, cpu.registers, cpu._counters,
            cpu.data_bram.load, cpu.data_bram.store,
            opb.owns if opb is not None else None,
            opb.read if opb is not None else None,
            opb.write if opb is not None else None,
            cpu._branch_hooks, to_signed, signed_division,
            IllegalInstruction, cpu.data_bram.storage, cpu.data_bram,
        )
        _record_translation("region", "region", cached,
                            time.perf_counter() - start)
        bucket = _codegen_bucket("region")
        bucket["regions"] += 1
        bucket["region_blocks"] += len(order)
        if obs.ACTIVE is not None:
            obs.inc("warp_codegen_regions",
                    help_text="Hot regions formed (superblocks fused "
                              "into one code object)",
                    engine="region")
            obs.ACTIVE.registry.histogram(
                "warp_codegen_region_blocks",
                "Superblocks fused per compiled region",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
            ).observe(float(len(order)), engine="region")

        self.regions[root] = fn
        self._region_meta[root] = (
            min(ir.entry for ir in members.values()),
            max(ir.end for ir in members.values()),
            tuple(order),
        )
        for entry in order:
            counts[entry] = _SENTINEL
        return fn

    # ------------------------------------------------------------- dispatch
    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> None:
        # NOTE: mirrors JitEngine.run line for line (itself mirroring the
        # threaded engine); the additions are the region lookup and the
        # hot counting, both strictly after the budget check — a region
        # that breaks immediately on budget must land on the outer
        # near-budget path, never re-enter itself.
        cpu = self.cpu
        cpu._drain_imm_latch(max_instructions)
        counters = cpu._counters
        blocks = self.blocks
        regions = self.regions
        counts = self._entry_counts
        compile_block = self.compiler.compile_block
        opb = cpu.opb
        ticking = opb is not None and opb.ticking
        # Regions neither form nor run while a peripheral tick deadline
        # may split blocks, or when precise fault statistics are on: both
        # paths need the jit's block-at-a-time granularity.
        profiled = not ticking and not cpu.precise_fault_stats
        if profiled:
            self._seed_from_hooks()
        threshold = self.hot_threshold
        executed = cpu.stats.instructions
        near_budget = False
        pc = cpu.pc
        try:
            while not cpu.halted:
                block = blocks.get(pc)
                if block is None:
                    block = compile_block(pc)
                n = block[0]
                if executed + n > max_instructions:
                    near_budget = True
                    break
                if ticking:
                    deadline = opb.next_deadline()
                    if deadline is not None and deadline < block[4]:
                        cpu._sync_counters()
                        cpu.pc = pc
                        cpu.step()
                        cpu._drain_imm_latch(max_instructions)
                        pc = cpu.pc
                        executed = cpu.stats.instructions
                        continue
                    cycles_before = counters[CNT_CYCLES]
                    try:
                        pc = block[1]()
                    finally:
                        opb.tick_bounded(counters[CNT_CYCLES]
                                         - cycles_before)
                    executed += n
                    continue
                if profiled:
                    region = regions.get(pc)
                    if region is not None:
                        pc, executed = region(executed, max_instructions)
                        continue
                    hot = counts.get(pc, 0) + 1
                    counts[pc] = hot
                    if hot == threshold:
                        region = self._promote(pc)
                        if region is not None:
                            pc, executed = region(executed,
                                                  max_instructions)
                            continue
                pc = block[1]()
                executed += n
        except BaseException:
            if cpu.precise_fault_stats:
                pc = cpu.pc
            raise
        finally:
            cpu.pc = pc
            cpu._sync_counters()
        if near_budget:
            cpu._run_interpreted(max_instructions, None)


register_engine("region", RegionEngine)
