"""The threaded-code engine behind the registry.

The block *compiler* — handler closures, superblock layout, statistics
pre-aggregation, the precise-fault-statistics mode — stays in
:mod:`repro.microblaze.engine`; this module owns the superblock cache and
the dispatch loop that used to be ``MicroBlazeCPU._run_threaded``.

The dispatch loop additionally batches on-chip peripheral time: when a
peripheral opted into ticking (``wants_ticks``, see
:class:`~repro.microblaze.opb.OnChipPeripheralBus`), the engine delivers
one ``tick(n)`` with the block's actual cycle count after each superblock
instead of a call per instruction.  A peripheral that declares a tick
deadline (``tick_deadline()``) falling *inside* the upcoming block drops
the engine to interpreter granularity — per-instruction ticks — until the
boundary has passed, so timed device models never observe a batch
crossing their deadline.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..engine import CNT_CYCLES, BlockCompiler
from . import ExecutionEngine, register_engine


def block_static_cycles(block: tuple) -> int:
    """Statically known cycle count of a threaded superblock.

    Carried explicitly in the block descriptor (valid in precise mode
    too, where the delta pairs are empty).  Dynamic contributions (OPB
    penalties, branch/slot cycles) are excluded — the caller treats this
    as a lower bound.
    """
    return block[6]


class ThreadedEngine(ExecutionEngine):
    """Superblock dispatch over closures compiled once at decode time."""

    full_trace = False
    branch_hooks = True
    supports_max_cycles = False
    supports_halt_address = False

    def __init__(self, cpu) -> None:
        super().__init__(cpu)
        self.compiler = BlockCompiler(cpu, self.blocks)

    @staticmethod
    def _block_range(block: tuple) -> Tuple[int, int]:
        return block[4], block[5]

    # ------------------------------------------------------------- dispatch
    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> None:
        # NOTE: this loop is deliberately duplicated (not shared through a
        # base class) with JitEngine.run — a per-block virtual call would
        # tax the hot path of both engines.  The budget, tick-deadline and
        # fault handling must stay line-for-line equivalent; change both
        # together (the differential tests cover each engine separately).
        cpu = self.cpu
        # A pending imm latch (left by manual step() calls) is consumed by
        # the interpreter so that block entry always starts latch-free,
        # which is what the statically fused translations assume.
        cpu._drain_imm_latch(max_instructions)
        counters = cpu._counters
        blocks = self.blocks
        compile_block = self.compiler.compile_block
        opb = cpu.opb
        ticking = opb is not None and opb.ticking
        executed = cpu.stats.instructions
        near_budget = False
        pc = cpu.pc
        try:
            while not cpu.halted:
                block = blocks.get(pc)
                if block is None:
                    block = compile_block(pc)
                n = block[0]
                if executed + n > max_instructions:
                    near_budget = True
                    break
                if ticking:
                    deadline = opb.next_deadline()
                    if deadline is not None \
                            and deadline < block_static_cycles(block):
                        # A peripheral boundary falls inside this block:
                        # one interpreter step (per-instruction ticks),
                        # then retry block dispatch past the boundary.
                        # Counters fold into stats first so the budget
                        # checks see exact instruction counts, and any
                        # imm latch the step leaves behind is drained —
                        # fused translations assume latch-free entry.
                        cpu._sync_counters()
                        cpu.pc = pc
                        cpu.step()
                        cpu._drain_imm_latch(max_instructions)
                        pc = cpu.pc
                        executed = cpu.stats.instructions
                        continue
                    cycles_before = counters[CNT_CYCLES]
                    try:
                        for index, delta in block[1]:
                            counters[index] += delta
                        for handler in block[2]:
                            handler()
                        pc = block[3]()
                    finally:
                        # Deliver the accrued cycles even when the block
                        # faults mid-way: ticked time tracks the recorded
                        # statistics exactly (interpreter-identical in
                        # precise mode).
                        opb.tick_bounded(counters[CNT_CYCLES]
                                         - cycles_before)
                    executed += n
                    continue
                for index, delta in block[1]:
                    counters[index] += delta
                for handler in block[2]:
                    handler()
                pc = block[3]()
                executed += n
        except BaseException:
            if cpu.precise_fault_stats:
                # Precise-mode handlers maintain cpu.pc per instruction;
                # keep the faulting instruction's pc instead of rewinding
                # to the block entry.
                pc = cpu.pc
            raise
        finally:
            cpu.pc = pc
            cpu._sync_counters()
        if near_budget:
            # Within one block of the budget: finish (or fault) on the
            # interpreter, whose per-instruction checks raise at exactly
            # the same point the reference engine does.
            cpu._run_interpreted(max_instructions, None)


register_engine("threaded", ThreadedEngine)
