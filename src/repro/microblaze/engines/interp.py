"""The reference interpreter as a registered execution engine.

The interpreter loop itself lives on the CPU
(:meth:`~repro.microblaze.cpu.MicroBlazeCPU._run_interpreted`): it is the
semantic reference every other engine must reproduce bit-exactly, the
budget-edge finisher of the block engines, and the fallback path of the
driver — so it stays on the CPU rather than moving behind the registry.
This class is the thin registry adapter that declares its capabilities:
the interpreter is the only engine that can feed full per-instruction
:class:`~repro.microblaze.trace.TraceEvent` streams, and the only one
honouring cycle budgets and halt addresses at instruction granularity.
"""

from __future__ import annotations

from typing import Optional

from . import ExecutionEngine, register_engine


class InterpreterEngine(ExecutionEngine):
    """Fetch/dispatch/execute reference loop (the seed engine)."""

    full_trace = True
    branch_hooks = True
    supports_max_cycles = True
    supports_halt_address = True

    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> None:
        self.cpu._run_interpreted(max_instructions, max_cycles)

    def invalidate(self, address: Optional[int] = None) -> None:
        """The interpreter derives nothing from the BRAM beyond the CPU's
        own word-level decode cache, which the driver invalidates."""
        return None


register_engine("interp", InterpreterEngine)
