"""Source-generating JIT engine: one specialized Python function per superblock.

The threaded engine already compiles each instruction once, but it still
pays one Python *call* per instruction (the handler closure) and a tuple
walk per block (the pre-aggregated statistics deltas).  This engine takes
the next step the ROADMAP names — the lifting step of static binary
translators (decode once, generate code, run many): for every superblock
it emits specialized Python **source** in which

* the straight-line handler bodies are inlined as plain statements with
  operand indices, immediates (``imm`` prefixes statically fused) and
  latencies baked in as literals,
* the block's static statistics are folded into a handful of
  pre-aggregated constant counter additions at the top,
* only genuinely dynamic contributions (OPB access penalties, branch
  taken/not-taken cycles, delay-slot costs) remain as runtime code,
* the terminating branch sits at the end and returns the next program
  counter (branch hooks included),

``exec``\\ s it once into a cached closure — CPU state (register file,
counter array, memories, peripheral bus, branch-hook list) is bound via
an outer factory function, so the hot path runs on fast closure lookups —
and then dispatches block-at-a-time: one Python call per superblock.

Semantics are inherited from the threaded engine's compiler line by line:
the generated code reproduces the interpreter bit-exactly on fault-free
runs (statistics, cycles, branch-event streams, memory-port counters,
the seed's delay-slot double charge), compiles compile-time faults into
raiser blocks that fire at the same execution point with the same
exception and message, and supports ``precise_fault_stats`` by emitting
per-instruction statistics/pc/imm-latch maintenance instead of the
wholesale block constants — a mid-block runtime fault then leaves exactly
the interpreter's fault-point state.  The same known divergence as the
threaded engine applies in default mode: a *runtime* fault landing
mid-block can leave statistics ahead by up to one block.

OPB peripheral time is batched exactly like the threaded engine: one
``tick(n)`` per block for opted-in peripherals, dropping to interpreter
granularity when a declared tick deadline falls inside the block.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ... import obs
from ...caching import BoundedLRU
from ...isa.encoding import EncodingError
from ...isa.instructions import Instruction, InstrClass
from ...isa.registers import WORD_MASK, to_signed
from ..engine import (
    CLASS_INDEX,
    CNT_BRANCHES_NOT_TAKEN,
    CNT_BRANCHES_TAKEN,
    CNT_CLASS_COUNT,
    CNT_CLASS_CYCLES,
    CNT_CYCLES,
    CNT_INSTRUCTIONS,
    CNT_LOADS,
    CNT_OPB_READS,
    CNT_OPB_WRITES,
    CNT_STORES,
    MAX_BLOCK_INSTRUCTIONS,
    _ABSOLUTE_BRANCHES,
    _LOAD_WIDTHS,
    _STORE_WIDTHS,
    signed_division,
)
from ..memory import MemoryError_
from ..opb import OPB_BASE_ADDRESS
from . import ExecutionEngine, register_engine

#: A compiled jit superblock: ``(n_instructions, fn, entry_address,
#: end_address, static_cycles)``.  ``fn()`` executes the whole block —
#: statistics constants, inlined bodies, terminator — and returns the next
#: program counter.  ``static_cycles`` is the statically known cycle count
#: (the deadline pre-check of the tick-batching dispatch loop).
JitBlock = Tuple[int, object, int, int, int]

_SIGN = 0x8000_0000
_M = WORD_MASK

#: Process-wide source → code-object cache.  CPython bytecode compilation
#: dominates block translation cost (~0.4 ms per block); the generated
#: source is a complete content address for the code object (every
#: operand, immediate, latency and address is baked in as a literal, and
#: CPU state arrives through the factory call, never through globals), so
#: re-running the same program — a fresh system per service job, repeated
#: sweeps, the evaluation harness — reuses the bytecode and only re-binds
#: the closures.  Shares the repo-wide LRU (explicit ``clear()`` for
#: cold-cache tests, hit/miss accounting).
_CODE_CACHE = BoundedLRU(maxsize=8192)

#: Always-on, process-wide translation accounting per engine label:
#: how many code objects were compiled vs served from :data:`_CODE_CACHE`,
#: the wall seconds spent translating (source assembly + bytecode compile
#: + closure bind), and — for the region engine — how many regions were
#: formed and how many superblocks they fused.  The simulator benchmark
#: reads this through :func:`codegen_stats` to break the cold-suite time
#: into run cost vs ``compile()`` cost, and the telemetry collector below
#: mirrors it into the live ``metrics`` snapshot.
_CODEGEN: Dict[str, Dict[str, float]] = {}

_CODEGEN_KEYS = ("compiles", "cache_hits", "compile_seconds",
                 "regions", "region_blocks")


def _codegen_bucket(label: str) -> Dict[str, float]:
    bucket = _CODEGEN.get(label)
    if bucket is None:
        bucket = _CODEGEN[label] = dict.fromkeys(_CODEGEN_KEYS, 0)
        bucket["compile_seconds"] = 0.0
    return bucket


def codegen_stats() -> Dict[str, Dict[str, float]]:
    """Cumulative per-engine translation accounting (a deep copy)."""
    return {label: dict(bucket) for label, bucket in _CODEGEN.items()}


def reset_codegen_stats() -> None:
    """Zero the accounting (benchmarks isolate per-engine measurements)."""
    _CODEGEN.clear()


def _record_translation(label: str, kind: str, cached: bool,
                        seconds: float) -> None:
    """Fold one translation into the accounting and the live metrics."""
    bucket = _codegen_bucket(label)
    bucket["cache_hits" if cached else "compiles"] += 1
    bucket["compile_seconds"] += seconds
    if obs.ACTIVE is not None:
        if cached:
            obs.inc("warp_codegen_cache_hits",
                    help_text="Generated-code cache hits (code object "
                              "reused, closures re-bound)",
                    engine=label, kind=kind)
        else:
            obs.inc("warp_codegen_compiles",
                    help_text="Generated-code compilations (source "
                              "emitted and byte-compiled)",
                    engine=label, kind=kind)
        obs.observe("warp_codegen_compile_ms", seconds * 1e3,
                    help_text="Wall milliseconds per translation "
                              "(emit + compile + bind)",
                    engine=label, kind=kind)


def _collect_codegen_metrics(registry) -> None:
    """Snapshot-time collector: publish the always-on accounting (which
    also covers translations performed before telemetry was installed)
    and the shared code-cache occupancy as gauge families."""
    events = registry.gauge(
        "warp_codegen_events",
        "Cumulative code-generation accounting by engine and kind")
    for label, bucket in _CODEGEN.items():
        for key, value in bucket.items():
            events.set(float(value), engine=label, kind=key)
    registry.gauge(
        "warp_codegen_cache_entries",
        "Entries in the process-wide generated-source code cache",
    ).set(float(len(_CODE_CACHE)))


obs.add_collector(_collect_codegen_metrics)


def _r(index: int) -> str:
    """Source expression for a register read (r0 reads as the literal 0)."""
    return "0" if index == 0 else f"regs[{index}]"


class SourceBlockCompiler:
    """Generates, compiles and caches jit superblocks for one CPU."""

    def __init__(self, cpu, blocks: Dict[int, JitBlock],
                 stats_label: str = "jit") -> None:
        self.cpu = cpu
        self.blocks = blocks
        self.precise = bool(getattr(cpu, "precise_fault_stats", False))
        #: Engine label under which translations are accounted (the
        #: region engine reuses this compiler for its cold blocks).
        self.stats_label = stats_label

    # ------------------------------------------------------------------ entry
    def compile_block(self, entry: int) -> JitBlock:
        cpu = self.cpu
        precise = self.precise
        timings = cpu.config.timings
        lines: List[str] = []
        deltas = [0] * (CNT_CLASS_CYCLES + len(CLASS_INDEX))
        # Statically known straight-line cycles, tracked in both modes
        # (precise blocks fold nothing into constants, but the dispatch
        # loop's tick-deadline pre-check still needs the bound).
        static_cycles = 0
        n = 0
        pc = entry
        pending_imm: Optional[int] = None

        while True:
            try:
                instr = cpu.fetch(pc)
            except (EncodingError, MemoryError_):
                # Undecodable word or fetch past the BRAM end: generate a
                # raiser so the fault fires at run time, at the same point
                # and with the same exception as the interpreter's fetch.
                term = self._raiser(pc, f"cpu.fetch({pc})",
                                    "refetch did not raise")
                return self._finish(entry, pc, n, deltas, lines, *term,
                                    static_cycles=static_cycles)

            unit = instr.requires
            if unit is not None and not cpu.config.has_unit(unit):
                message = (f"{instr.mnemonic} at {instr.address:#x} requires "
                           f"the {unit.value} which is not configured")
                term = self._raiser(pc,
                                    f"raise IllegalInstruction({message!r})",
                                    None)
                return self._finish(entry, pc, n, deltas, lines, *term,
                                    static_cycles=static_cycles)

            klass = instr.klass
            if klass is InstrClass.IMM_PREFIX:
                pending_imm = instr.imm & 0xFFFF
                static_cycles += timings.imm_prefix
                if precise:
                    lines += [
                        f"cpu.pc = {pc}",
                        f"cpu._imm_latch = {pending_imm}",
                    ]
                    lines += self._count(InstrClass.IMM_PREFIX,
                                         timings.imm_prefix)
                else:
                    self._delta(deltas, klass, timings.imm_prefix)
                n += 1
                pc += 4
                continue

            if instr.is_branch:
                term, extra, end = self._terminator(pc, instr, pending_imm)
                n += 1 + extra
                return self._finish(entry, end, n, deltas, lines, *term,
                                    static_cycles=static_cycles)

            if klass is InstrClass.LOAD:
                cycles = timings.load
            elif klass is InstrClass.STORE:
                cycles = timings.store
            else:
                cycles = timings.for_class(klass)
            static_cycles += cycles
            body = self._straightline(instr, pending_imm,
                                      dynamic_stats=precise)
            if precise:
                lines.append(f"cpu.pc = {pc}")
                lines += body
                if pending_imm is not None:
                    lines.append("cpu._imm_latch = None")
            else:
                lines += body
                self._delta(deltas, klass, cycles)
                if klass is InstrClass.LOAD:
                    deltas[CNT_LOADS] += 1
                elif klass is InstrClass.STORE:
                    deltas[CNT_STORES] += 1
            pending_imm = None
            n += 1
            pc += 4

            if n >= MAX_BLOCK_INSTRUCTIONS and pending_imm is None:
                return self._finish(entry, pc - 4, n, deltas, lines,
                                    [], str(pc),
                                    static_cycles=static_cycles)

    # ------------------------------------------------------------------ pieces
    @staticmethod
    def _delta(deltas: List[int], klass: InstrClass, cycles: int) -> None:
        """Fold one instruction's static statistics into the block deltas."""
        deltas[CNT_CYCLES] += cycles
        deltas[CNT_INSTRUCTIONS] += 1
        ci = CLASS_INDEX[klass]
        deltas[CNT_CLASS_COUNT + ci] += 1
        deltas[CNT_CLASS_CYCLES + ci] += cycles

    @staticmethod
    def _count(klass: InstrClass, cycles, extra: str = "") -> List[str]:
        """Source lines recording one instruction's own statistics.

        ``cycles`` is an int literal or the name of a local holding the
        dynamic cycle count; ``extra`` optionally names one more scalar
        counter (loads/stores) to bump.
        """
        ci = CLASS_INDEX[klass]
        lines = [f"cnt[{CNT_CYCLES}] += {cycles}",
                 f"cnt[{CNT_INSTRUCTIONS}] += 1"]
        if extra:
            lines.append(extra)
        lines += [f"cnt[{CNT_CLASS_COUNT + ci}] += 1",
                  f"cnt[{CNT_CLASS_CYCLES + ci}] += {cycles}"]
        return lines

    def _raiser(self, pc: int, statement: str,
                unreachable: Optional[str]):
        """A terminator that reproduces an interpreter fault."""
        lines = [f"cpu.pc = {pc}"] if self.precise else []
        lines.append(statement)
        if unreachable is not None:
            lines.append(f"raise AssertionError('unreachable: "
                         f"{unreachable}')")
        return lines, None

    @staticmethod
    def _imm(instr: Instruction, pending_imm: Optional[int]) -> int:
        """The statically fused immediate (decode-time ``imm`` handling)."""
        if pending_imm is None:
            return instr.imm
        return to_signed(((pending_imm << 16) | (instr.imm & 0xFFFF)) & _M)

    # --------------------------------------------------------- straight line
    def _straightline(self, instr: Instruction, pending_imm: Optional[int],
                      dynamic_stats: bool, accumulate: bool = False) -> List[str]:
        """Source for one non-branch instruction.

        With ``dynamic_stats`` the emitted code records its own statistics
        (delay slots, and every instruction in precise mode); otherwise
        statistics live in the enclosing block's constants and only
        dynamic OPB penalties are recorded inline.  ``accumulate``
        additionally adds the instruction's cycle cost to the enclosing
        terminator's ``_cycles`` (the delay-slot double charge).
        """
        klass = instr.klass
        if klass is InstrClass.LOAD:
            return self._memory(instr, pending_imm, dynamic_stats,
                                accumulate, load=True)
        if klass is InstrClass.STORE:
            return self._memory(instr, pending_imm, dynamic_stats,
                                accumulate, load=False)
        cycles = self.cpu.config.timings.for_class(klass)
        lines = self._compute(instr, pending_imm)
        if dynamic_stats:
            lines += self._count(klass, cycles)
        if accumulate:
            lines.append(f"_cycles += {cycles}")
        return lines

    def _compute(self, instr: Instruction,
                 pending_imm: Optional[int]) -> List[str]:
        """ALU / logical / shift / multiply / divide / compare / sext."""
        m = instr.mnemonic
        rd, ra, rb = instr.rd, instr.ra, instr.rb
        imm = self._imm(instr, pending_imm)
        A, B = _r(ra), _r(rb)

        if rd == 0:
            # Writes to r0 are discarded and no compute op has another
            # side effect; the block constants still account for it.
            return []

        expr: Optional[str] = None
        if m in ("add", "addk"):
            expr = f"({A} + {B}) & {_M}"
        elif m in ("addi", "addik"):
            expr = f"({A} + {imm}) & {_M}"
        elif m in ("rsub", "rsubk"):
            expr = f"({B} - {A}) & {_M}"
        elif m in ("rsubi", "rsubik"):
            expr = f"({imm} - {A}) & {_M}"
        elif m == "mul":
            expr = f"({A} * {B}) & {_M}"
        elif m == "muli":
            expr = f"({A} * {imm}) & {_M}"
        elif m == "idiv":
            expr = f"signed_division(to_signed({B}), to_signed({A}))"
        elif m == "idivu":
            return [f"_d = {A}",
                    f"regs[{rd}] = ({B} // _d) & {_M} if _d else 0"]
        elif m == "cmp":
            return [f"_x = to_signed({A})",
                    f"_y = to_signed({B})",
                    f"regs[{rd}] = (1 if _y > _x else 0 if _y == _x "
                    f"else -1) & {_M}"]
        elif m == "cmpu":
            return [f"_x = {A}",
                    f"_y = {B}",
                    f"regs[{rd}] = (1 if _y > _x else 0 if _y == _x "
                    f"else -1) & {_M}"]
        elif m == "and":
            expr = f"{A} & {B}"
        elif m == "andi":
            expr = f"{A} & {imm & _M}"
        elif m == "or":
            expr = f"{A} | {B}"
        elif m == "ori":
            expr = f"{A} | {imm & _M}"
        elif m == "xor":
            expr = f"{A} ^ {B}"
        elif m == "xori":
            expr = f"{A} ^ {imm & _M}"
        elif m == "andn":
            expr = f"{A} & ~{B} & {_M}"
        elif m == "andni":
            expr = f"{A} & {~(imm & _M) & _M}"
        elif m == "sra":
            expr = f"(to_signed({A}) >> 1) & {_M}"
        elif m in ("srl", "src"):
            expr = f"{A} >> 1"
        elif m == "sext8":
            expr = f"to_signed({A} & 0xFF, 8) & {_M}"
        elif m == "sext16":
            expr = f"to_signed({A} & 0xFFFF, 16) & {_M}"
        elif m == "bsll":
            expr = f"({A} << ({B} & 31)) & {_M}"
        elif m == "bslli":
            # Barrel-shift immediates use the raw 5-bit field, never a
            # fused imm prefix (the interpreter reads instr.imm directly).
            expr = f"({A} << {instr.imm & 31}) & {_M}"
        elif m == "bsrl":
            expr = f"{A} >> ({B} & 31)"
        elif m == "bsrli":
            expr = f"{A} >> {instr.imm & 31}"
        elif m == "bsra":
            expr = f"(to_signed({A}) >> ({B} & 31)) & {_M}"
        elif m == "bsrai":
            expr = f"(to_signed({A}) >> {instr.imm & 31}) & {_M}"
        else:
            from ..cpu import IllegalInstruction
            raise IllegalInstruction(f"unhandled data instruction {m}")
        return [f"regs[{rd}] = {expr}"]

    def _address(self, instr: Instruction,
                 pending_imm: Optional[int]) -> str:
        """Effective-address expression of a load/store (overridable —
        the region scanner substitutes known-constant operands)."""
        if instr.spec.fmt.value == "A":
            return f"({_r(instr.ra)} + {_r(instr.rb)}) & {_M}"
        return f"({_r(instr.ra)} + {self._imm(instr, pending_imm)}) & {_M}"

    def _memory(self, instr: Instruction, pending_imm: Optional[int],
                dynamic_stats: bool, accumulate: bool,
                load: bool) -> List[str]:
        timings = self.cpu.config.timings
        has_opb = self.cpu.opb is not None
        rd, ra, rb = instr.rd, instr.ra, instr.rb
        width = (_LOAD_WIDTHS if load else _STORE_WIDTHS)[instr.mnemonic]
        base = timings.load if load else timings.store
        extra = timings.opb_access_extra
        klass = InstrClass.LOAD if load else InstrClass.STORE
        ci = CLASS_INDEX[klass]
        port_counter = CNT_OPB_READS if load else CNT_OPB_WRITES
        scalar = CNT_LOADS if load else CNT_STORES

        lines = [f"_a = {self._address(instr, pending_imm)}"]

        def op_lines(indent: str) -> List[str]:
            if load:
                body = [f"{indent}_v = bram_load(_a, {width})"]
            else:
                body = [f"{indent}bram_store(_a, {_r(rd)}, {width})"]
            return body

        if not has_opb:
            # No peripheral bus attached: the OPB arm can never be taken,
            # so the access specializes to the data BRAM alone.
            lines += op_lines("")
            if load and rd:
                lines.append(f"regs[{rd}] = _v & {_M}")
            if dynamic_stats:
                lines += self._count(klass, base,
                                     extra=f"cnt[{scalar}] += 1")
            if accumulate:
                lines.append(f"_cycles += {base}")
            return lines

        if dynamic_stats:
            lines.append(f"_c = {base}")
            lines.append(f"if _a >= {OPB_BASE_ADDRESS} and opb_owns(_a):")
            if load:
                lines.append(f"    _v = opb_read(_a)")
            else:
                lines.append(f"    opb_write(_a, {_r(rd)})")
            lines += [f"    _c += {extra}",
                      f"    cnt[{port_counter}] += 1",
                      "else:"]
            lines += op_lines("    ")
            if load and rd:
                lines.append(f"regs[{rd}] = _v & {_M}")
            lines += self._count(klass, "_c", extra=f"cnt[{scalar}] += 1")
            if accumulate:
                lines.append("_cycles += _c")
            return lines

        # Block-constant statistics: only the dynamic OPB penalty is
        # recorded inline (exactly the threaded body-mode handlers).
        lines.append(f"if _a >= {OPB_BASE_ADDRESS} and opb_owns(_a):")
        if load:
            lines.append(f"    _v = opb_read(_a)")
        else:
            lines.append(f"    opb_write(_a, {_r(rd)})")
        lines += [f"    cnt[{CNT_CYCLES}] += {extra}",
                  f"    cnt[{CNT_CLASS_CYCLES + ci}] += {extra}",
                  f"    cnt[{port_counter}] += 1",
                  "else:"]
        lines += op_lines("    ")
        if load and rd:
            lines.append(f"regs[{rd}] = _v & {_M}")
        return lines

    # ------------------------------------------------------------ terminators
    def _terminator(self, pc: int, instr: Instruction,
                    pending_imm: Optional[int]):
        """Source for the branch ending a block (plus its delay slot).

        Returns ``((lines, return_expr), extra_instructions, end_address)``.
        """
        cpu = self.cpu
        end = pc
        slot: Optional[List[str]] = None
        extra = 0
        if instr.has_delay_slot:
            end = pc + 4
            try:
                slot_instr = cpu.fetch(pc + 4)
            except (EncodingError, MemoryError_):
                return self._raiser(pc, f"cpu.fetch({pc + 4})",
                                    "slot refetch did not raise"), 0, end
            if slot_instr.is_branch \
                    or slot_instr.klass is InstrClass.IMM_PREFIX:
                return self._raiser(
                    pc, f"cpu._execute_delay_slot({pc})",
                    "delay slot check did not raise"), 0, end
            unit = slot_instr.requires
            if unit is not None and not cpu.config.has_unit(unit):
                # The interpreter charges neither the branch nor the slot
                # (the fault fires inside the slot's unit check, before
                # the branch's stats.record); defer to its own execution.
                return self._raiser(
                    pc, f"cpu._execute_delay_slot({pc})",
                    "slot unit check did not raise"), 0, end
            # The imm latch is cleared only after the whole branch — slot
            # included — so a pending prefix fuses into the slot too.
            slot = self._straightline(slot_instr, pending_imm,
                                      dynamic_stats=True, accumulate=True)
            if self.precise:
                slot = [f"cpu.pc = {pc + 4}"] + slot
            extra = 1

        if instr.klass is InstrClass.BRANCH_COND:
            lines, ret = self._cond_branch(pc, instr, pending_imm, slot)
        else:
            lines, ret = self._uncond_branch(pc, instr, pending_imm, slot)
        if self.precise:
            # The interpreter executes the branch with pc pointing at it
            # (and at the slot while the slot runs — the slot lines above
            # carry their own pc maintenance).
            lines = [f"cpu.pc = {pc}"] + lines
        return (lines, ret), extra, end

    def _cond_branch(self, pc: int, instr: Instruction,
                     pending_imm: Optional[int],
                     slot: Optional[List[str]]):
        timings = self.cpu.config.timings
        klass = InstrClass.BRANCH_COND
        ci = CLASS_INDEX[klass]
        fallthrough = pc + 8 if slot is not None else pc + 4

        name = instr.spec.condition.name
        # Conditions test the signed value of ra; on the raw 32-bit
        # pattern "negative" is simply >= 2**31.
        cond = {
            "EQ": "_x == 0",
            "NE": "_x != 0",
            "LT": f"_x >= {_SIGN}",
            "LE": f"_x >= {_SIGN} or _x == 0",
            "GT": f"0 < _x < {_SIGN}",
            "GE": f"_x < {_SIGN}",
        }[name]

        if instr.spec.fmt.value == "A":
            target = f"({pc} + to_signed({_r(instr.rb)})) & {_M}"
        else:
            offset = self._imm(instr, pending_imm)
            target = str((pc + to_signed(offset)) & _M)

        lines = [
            f"_x = {_r(instr.ra)}",
            f"if {cond}:",
            f"    _taken = True",
            f"    _target = {target}",
            f"    _cycles = {timings.branch_taken}",
            f"    _next = _target",
            f"else:",
            f"    _taken = False",
            f"    _target = None",
            f"    _cycles = {timings.branch_not_taken}",
            f"    _next = {fallthrough}",
        ]
        # The slot executes before any of the branch's own statistics are
        # recorded (interpreter order — a faulting slot must leave the
        # branch unrecorded).
        if slot is not None:
            lines += slot
        lines += [
            f"if _taken:",
            f"    cnt[{CNT_BRANCHES_TAKEN}] += 1",
            f"else:",
            f"    cnt[{CNT_BRANCHES_NOT_TAKEN}] += 1",
            f"cnt[{CNT_CYCLES}] += _cycles",
            f"cnt[{CNT_INSTRUCTIONS}] += 1",
            f"cnt[{CNT_CLASS_COUNT + ci}] += 1",
            f"cnt[{CNT_CLASS_CYCLES + ci}] += _cycles",
            f"if hooks:",
            f"    for _h in hooks:",
            f"        _h.on_branch({pc}, _target, _taken)",
        ]
        return lines, "_next"

    def _uncond_branch(self, pc: int, instr: Instruction,
                       pending_imm: Optional[int],
                       slot: Optional[List[str]]):
        """BRANCH_UNCOND, CALL and RETURN terminators (always taken)."""
        timings = self.cpu.config.timings
        klass = instr.klass
        ci = CLASS_INDEX[klass]
        is_uncond = klass is InstrClass.BRANCH_UNCOND
        is_call = klass is InstrClass.CALL
        rd = instr.rd
        imm = self._imm(instr, pending_imm)

        static_target: Optional[int] = None
        if klass is InstrClass.RETURN:
            base = timings.ret
            target_expr = f"({_r(instr.ra)} + {imm}) & {_M}"
        else:
            base = timings.call if is_call else timings.branch_taken
            absolute = instr.mnemonic in _ABSOLUTE_BRANCHES
            if instr.spec.fmt.value == "A":
                if absolute:
                    target_expr = f"{_r(instr.rb)} & {_M}"
                else:
                    target_expr = f"({pc} + to_signed({_r(instr.rb)})) & {_M}"
            else:
                static_target = imm & _M if absolute \
                    else (pc + to_signed(imm)) & _M
                target_expr = str(static_target)

        def footer(cycles: str, target: str) -> List[str]:
            return [
                f"cnt[{CNT_CYCLES}] += {cycles}",
                f"cnt[{CNT_INSTRUCTIONS}] += 1",
                f"cnt[{CNT_CLASS_COUNT + ci}] += 1",
                f"cnt[{CNT_CLASS_CYCLES + ci}] += {cycles}",
                f"cnt[{CNT_BRANCHES_TAKEN}] += 1",
                f"if hooks:",
                f"    for _h in hooks:",
                f"        _h.on_branch({pc}, {target}, True)",
            ]

        call_write = [f"regs[{rd}] = {pc & _M}"] if is_call and rd else []

        if static_target is not None and is_uncond and static_target == pc:
            # A PC-relative unconditional branch to itself is the halt
            # idiom; the slot is skipped (as in the interpreter).
            lines = ["cpu.halted = True"] + footer(str(base),
                                                   str(static_target))
            return lines, str(static_target)

        if static_target is not None and (not is_uncond
                                          or static_target != pc):
            lines = list(call_write)
            if slot is not None:
                lines.append(f"_cycles = {base}")
                lines += slot
                lines += footer("_cycles", str(static_target))
            else:
                lines += footer(str(base), str(static_target))
            return lines, str(static_target)

        # Dynamic target: the halt check (unconditional branches only)
        # happens at run time, and a halting branch skips its slot.
        lines = [f"_target = {target_expr}"] + call_write
        lines.append(f"_cycles = {base}")
        if is_uncond:
            lines.append(f"if _target == {pc}:")
            lines.append("    cpu.halted = True")
            if slot is not None:
                lines.append("else:")
                lines += ["    " + line for line in slot]
        elif slot is not None:
            lines += slot
        lines += footer("_cycles", "_target")
        return lines, "_target"

    # ------------------------------------------------------------------ emit
    def _finish(self, entry: int, end: int, n: int, deltas: List[int],
                body: List[str], term_lines: List[str],
                return_expr: Optional[str],
                static_cycles: int = 0) -> JitBlock:
        lines: List[str] = []
        if not self.precise:
            lines += [f"cnt[{index}] += {delta}"
                      for index, delta in enumerate(deltas) if delta]
        lines += body
        lines += term_lines
        if return_expr is not None:
            if self.precise:
                # The interpreter clears the latch once the whole branch
                # (slot included) has executed; raiser blocks (no return
                # expression) must leave it set, like a faulting branch.
                lines.append("cpu._imm_latch = None")
            lines.append(f"return {return_expr}")

        indented = "\n".join("        " + line for line in lines)
        source = (
            "def _make(cpu, regs, cnt, bram_load, bram_store, opb_owns, "
            "opb_read, opb_write, hooks, to_signed, signed_division, "
            "IllegalInstruction):\n"
            "    def _block():\n"
            f"{indented}\n"
            "    return _block\n"
        )
        namespace: Dict[str, object] = {}
        start = time.perf_counter()
        hits_before = _CODE_CACHE.hits
        code = _CODE_CACHE.get_or_create(
            source,
            lambda: compile(source, f"<jit block {entry:#x}>", "exec"))
        cached = _CODE_CACHE.hits > hits_before
        exec(code, namespace)
        cpu = self.cpu
        opb = cpu.opb
        from ..cpu import IllegalInstruction
        fn = namespace["_make"](
            cpu, cpu.registers, cpu._counters,
            cpu.data_bram.load, cpu.data_bram.store,
            opb.owns if opb is not None else None,
            opb.read if opb is not None else None,
            opb.write if opb is not None else None,
            cpu._branch_hooks, to_signed, signed_division,
            IllegalInstruction,
        )
        _record_translation(self.stats_label, "block", cached,
                            time.perf_counter() - start)
        block: JitBlock = (n, fn, entry, end, static_cycles)
        self.blocks[entry] = block
        return block


class JitEngine(ExecutionEngine):
    """Block-at-a-time dispatch over generated-source superblocks."""

    full_trace = False
    branch_hooks = True
    supports_max_cycles = False
    supports_halt_address = False

    def __init__(self, cpu) -> None:
        super().__init__(cpu)
        self.compiler = SourceBlockCompiler(cpu, self.blocks)

    @staticmethod
    def _block_range(block: tuple) -> Tuple[int, int]:
        return block[2], block[3]

    # ------------------------------------------------------------- dispatch
    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> None:
        # NOTE: deliberately mirrors ThreadedEngine.run line for line (a
        # shared base with a per-block virtual call would tax both hot
        # paths); keep the budget/tick-deadline/fault handling in sync.
        cpu = self.cpu
        cpu._drain_imm_latch(max_instructions)
        counters = cpu._counters
        blocks = self.blocks
        compile_block = self.compiler.compile_block
        opb = cpu.opb
        ticking = opb is not None and opb.ticking
        executed = cpu.stats.instructions
        near_budget = False
        pc = cpu.pc
        try:
            while not cpu.halted:
                block = blocks.get(pc)
                if block is None:
                    block = compile_block(pc)
                n = block[0]
                if executed + n > max_instructions:
                    near_budget = True
                    break
                if ticking:
                    deadline = opb.next_deadline()
                    if deadline is not None and deadline < block[4]:
                        # A peripheral boundary falls inside this block:
                        # interpreter granularity until it has passed.
                        # Counters fold into stats first (exact budget
                        # checks) and any imm latch the step leaves is
                        # drained — fused translations assume latch-free
                        # entry.
                        cpu._sync_counters()
                        cpu.pc = pc
                        cpu.step()
                        cpu._drain_imm_latch(max_instructions)
                        pc = cpu.pc
                        executed = cpu.stats.instructions
                        continue
                    cycles_before = counters[CNT_CYCLES]
                    try:
                        pc = block[1]()
                    finally:
                        # Deliver the accrued cycles even when the block
                        # faults mid-way: ticked time tracks the recorded
                        # statistics exactly (interpreter-identical in
                        # precise mode).
                        opb.tick_bounded(counters[CNT_CYCLES]
                                         - cycles_before)
                    executed += n
                    continue
                pc = block[1]()
                executed += n
        except BaseException:
            if cpu.precise_fault_stats:
                # Precise-mode blocks maintain cpu.pc per instruction.
                pc = cpu.pc
            raise
        finally:
            cpu.pc = pc
            cpu._sync_counters()
        if near_budget:
            cpu._run_interpreted(max_instructions, None)


register_engine("jit", JitEngine)
