"""Functional and cycle-approximate MicroBlaze CPU model.

The CPU model executes the MicroBlaze-like instruction set defined in
:mod:`repro.isa` with the three-stage-pipeline latencies the paper quotes
(single-cycle ALU operations, three-cycle multiplies, one-to-three cycle
branches, two-cycle local-memory loads) so that both the *behaviour* and
the *cycle count* of an application are available to the rest of the warp
processing flow.

Differences from the real core, all intentional and documented:

* ``cmp``/``cmpu`` produce a clean -1/0/+1 comparison result rather than a
  subtraction with a patched MSB; the compiler, the decompiler, and the
  hardware synthesis all share this definition, so the system is
  self-consistent.
* carry, machine-status and exception state are not modelled (none of the
  benchmark kernels use them),
* ``src`` (shift right through carry) behaves like ``srl``.

The timing model charges each instruction a latency drawn from
:class:`~repro.microblaze.config.PipelineTimings`; it does not model
structural hazards beyond those latencies, which matches the level of
detail the paper's own cycle estimates operate at.

The architectural model is shared by every registered execution engine
(:mod:`repro.microblaze.engines`): ``interp`` is the reference
interpreter implemented here — fetch, dispatch on the instruction class,
execute, record — and the only path that can feed full per-instruction
:class:`~repro.microblaze.trace.TraceEvent` streams to listeners;
``threaded`` (the default) and ``jit`` compile superblocks once at decode
time and dispatch block-at-a-time.  Listeners that only need branch
events (the on-chip profiler) subscribe through the zero-allocation
branch-hook protocol and keep working at full speed on every engine;
attaching a full-trace listener transparently falls back to the
interpreter, as does any run outside the selected engine's declared
capabilities (cycle budgets, halt addresses).  This module is a thin
driver over the engine registry: engine selection, invalidation and the
checkpoint derived-state rebuild all go through the
:class:`~repro.microblaze.engines.ExecutionEngine` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.encoding import decode
from ..isa.instructions import HwUnit, Instruction, InstrClass
from ..isa.registers import NUM_REGISTERS, WORD_MASK, to_signed
from .config import MicroBlazeConfig
# DEFAULT_ENGINE moved to the registry; re-exported here because this was
# its original import location (repro.microblaze.cpu.DEFAULT_ENGINE).
from .engines import DEFAULT_ENGINE, create_engine  # noqa: F401
from .memory import BlockRAM
from .opb import OPB_BASE_ADDRESS, OnChipPeripheralBus
from .trace import TraceEvent, TraceListener


class CPUError(Exception):
    """Base class for simulator faults."""


class IllegalInstruction(CPUError):
    """Raised when an instruction needs a hardware unit that is absent,
    or a delay slot contains another branch."""


class ExecutionLimitExceeded(CPUError):
    """Raised when a run exceeds its instruction or cycle budget."""


@dataclass
class ExecutionStats:
    """Aggregate statistics of one simulated run."""

    cycles: int = 0
    instructions: int = 0
    class_counts: Dict[InstrClass, int] = field(default_factory=dict)
    class_cycles: Dict[InstrClass, int] = field(default_factory=dict)
    branches_taken: int = 0
    branches_not_taken: int = 0
    loads: int = 0
    stores: int = 0
    opb_reads: int = 0
    opb_writes: int = 0
    halted: bool = False

    def record(self, klass: InstrClass, cycles: int) -> None:
        self.instructions += 1
        self.cycles += cycles
        self.class_counts[klass] = self.class_counts.get(klass, 0) + 1
        self.class_cycles[klass] = self.class_cycles.get(klass, 0) + cycles

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate ``other`` into this record (used by multi-kernel runs)."""
        self.cycles += other.cycles
        self.instructions += other.instructions
        for klass, count in other.class_counts.items():
            self.class_counts[klass] = self.class_counts.get(klass, 0) + count
        for klass, count in other.class_cycles.items():
            self.class_cycles[klass] = self.class_cycles.get(klass, 0) + count
        self.branches_taken += other.branches_taken
        self.branches_not_taken += other.branches_not_taken
        self.loads += other.loads
        self.stores += other.stores
        self.opb_reads += other.opb_reads
        self.opb_writes += other.opb_writes

    # ------------------------------------------------------------ serialization
    def to_plain(self) -> Dict:
        """A plain-builtins view of the record (checkpoint serialization).

        Instruction classes are stored by *name* so the checkpoint format
        does not depend on enum identity or ordering.
        """
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "class_counts": {klass.name: count
                             for klass, count in self.class_counts.items()},
            "class_cycles": {klass.name: count
                             for klass, count in self.class_cycles.items()},
            "branches_taken": self.branches_taken,
            "branches_not_taken": self.branches_not_taken,
            "loads": self.loads,
            "stores": self.stores,
            "opb_reads": self.opb_reads,
            "opb_writes": self.opb_writes,
            "halted": self.halted,
        }

    @classmethod
    def from_plain(cls, plain: Dict) -> "ExecutionStats":
        """Inverse of :meth:`to_plain`."""
        return cls(
            cycles=plain["cycles"],
            instructions=plain["instructions"],
            class_counts={InstrClass[name]: count
                          for name, count in plain["class_counts"].items()},
            class_cycles={InstrClass[name]: count
                          for name, count in plain["class_cycles"].items()},
            branches_taken=plain["branches_taken"],
            branches_not_taken=plain["branches_not_taken"],
            loads=plain["loads"],
            stores=plain["stores"],
            opb_reads=plain["opb_reads"],
            opb_writes=plain["opb_writes"],
            halted=plain["halted"],
        )


class MicroBlazeCPU:
    """Executable model of one MicroBlaze core.

    Parameters
    ----------
    config:
        Processor configuration (optional units, clock, latency table).
    instr_bram / data_bram:
        The local-memory block RAMs of Figure 1.
    opb:
        Optional on-chip peripheral bus; loads and stores whose effective
        address is at or above :data:`~repro.microblaze.opb.OPB_BASE_ADDRESS`
        are routed there.
    """

    def __init__(
        self,
        config: MicroBlazeConfig,
        instr_bram: BlockRAM,
        data_bram: BlockRAM,
        opb: Optional[OnChipPeripheralBus] = None,
        engine: Optional[str] = None,
        precise_fault_stats: bool = False,
    ):
        from .engine import NUM_COUNTERS

        self.config = config
        self.instr_bram = instr_bram
        self.data_bram = data_bram
        self.opb = opb
        #: Opt-in exact fault-path statistics for the threaded engine: the
        #: block compiler emits per-handler statistics translations so a
        #: runtime fault landing mid-superblock leaves stats/pc/imm-latch
        #: in the interpreter's fault-point state.  No effect on the
        #: interpreter engine or on fault-free runs (which are always
        #: bit-exact).
        self.precise_fault_stats = bool(precise_fault_stats)
        #: Register file.  The list identity is stable for the CPU's whole
        #: lifetime (reset mutates in place) because the threaded engine's
        #: compiled handlers bind it once.
        self.registers: List[int] = [0] * NUM_REGISTERS
        self.pc = 0
        self.halted = False
        self.halt_address: Optional[int] = None
        self.stats = ExecutionStats()
        self._imm_latch: Optional[int] = None
        self._listeners: List[TraceListener] = []
        self._branch_hooks: List = []
        self._decoded: Dict[int, Instruction] = {}
        #: Scalar statistics counters (block-engine hot path); identity
        #: stable like ``registers``, folded into :attr:`stats` on sync.
        self._counters: List[int] = [0] * NUM_COUNTERS
        #: The execution engine, resolved against the registry
        #: (:mod:`repro.microblaze.engines`); unknown names raise
        #: :class:`~repro.microblaze.engines.UnknownEngineError` listing
        #: the registered engines.  Created last: engines may bind any of
        #: the state above at construction time.
        self._engine_impl = create_engine(engine, self)
        self.engine = self._engine_impl.name

    @property
    def _blocks(self) -> Dict[int, tuple]:
        """The engine's superblock cache (entry address -> translation).

        Kept as a property for the block-layout tests and diagnostics;
        the interpreter's cache is always empty.
        """
        return self._engine_impl.blocks

    # ------------------------------------------------------------------ setup
    def add_listener(self, listener: TraceListener) -> None:
        """Subscribe ``listener`` to the execution stream.

        Listeners exposing an ``on_branch`` callable join the
        zero-allocation branch-hook path: they receive
        ``on_branch(pc, target, taken)`` for every executed branch (and an
        optional ``on_run_end(instructions)`` at the end of each run) and
        never cost a :class:`TraceEvent` allocation.  All other listeners
        receive full per-instruction events, which forces ``run()`` onto
        the interpreter.
        """
        if callable(getattr(listener, "on_branch", None)):
            self._branch_hooks.append(listener)
        else:
            self._listeners.append(listener)

    def remove_listener(self, listener: TraceListener) -> None:
        if listener in self._branch_hooks:
            self._branch_hooks.remove(listener)
        else:
            self._listeners.remove(listener)

    def reset(self, entry_point: int = 0, stack_pointer: Optional[int] = None) -> None:
        """Reset architectural state and point the PC at ``entry_point``."""
        self.registers[:] = [0] * NUM_REGISTERS
        if stack_pointer is None:
            stack_pointer = self.data_bram.size - 4
        self.registers[1] = stack_pointer & WORD_MASK
        self.pc = entry_point
        self.halted = False
        self.stats = ExecutionStats()
        self._imm_latch = None
        self._counters[:] = [0] * len(self._counters)

    # -------------------------------------------------------------- registers
    def read_register(self, index: int) -> int:
        return 0 if index == 0 else self.registers[index]

    def write_register(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = value & WORD_MASK

    # ------------------------------------------------------------------ fetch
    def fetch(self, address: int) -> Instruction:
        """Fetch and decode the instruction at byte ``address``.

        Decoded instructions (and the superblocks compiled from them) are
        cached across runs; the caches are invalidated explicitly by
        :meth:`invalidate_decode_cache` when the dynamic partitioning
        module patches the binary, and by :meth:`MicroBlazeSystem.load
        <repro.microblaze.system.MicroBlazeSystem.load>` when a new image
        is written to the instruction BRAM.
        """
        cached = self._decoded.get(address)
        if cached is not None:
            return cached
        word = self.instr_bram.load(address, 4)
        instr = decode(word, address=address)
        self._decoded[address] = instr
        return instr

    def invalidate_decode_cache(self, address: Optional[int] = None) -> None:
        """Drop cached decodes and superblocks.

        With ``address=None`` everything is dropped.  With a byte address —
        the granularity at which the dynamic partitioning module patches
        single words — only the decode entry for that address and the
        superblocks whose compiled range covers it are dropped, so an
        executing application keeps the translations for untouched code.
        """
        if address is None:
            self._decoded.clear()
        else:
            self._decoded.pop(address, None)
        self._engine_impl.invalidate(address)

    # ------------------------------------------------------------- checkpointing
    def snapshot_state(self) -> Dict:
        """Architectural state as plain builtins (checkpoint/restore hook).

        The scalar counter array is folded into :attr:`stats` first, so the
        snapshot is engine-independent: a state captured on the threaded
        engine restores bit-exactly onto the interpreter and vice versa.
        Decode and superblock caches are *not* part of the architectural
        state (they are rebuilt lazily after a restore).
        """
        self._sync_counters()
        return {
            "registers": list(self.registers),
            "pc": self.pc,
            "halted": self.halted,
            "halt_address": self.halt_address,
            "imm_latch": self._imm_latch,
            "stats": self.stats.to_plain(),
        }

    def restore_state(self, state: Dict) -> None:
        """Restore a :meth:`snapshot_state` capture (checkpoint hook)."""
        self.registers[:] = [value & WORD_MASK for value in state["registers"]]
        self.pc = state["pc"]
        self.halted = state["halted"]
        self.halt_address = state["halt_address"]
        self._imm_latch = state["imm_latch"]
        self.stats = ExecutionStats.from_plain(state["stats"])
        self._counters[:] = [0] * len(self._counters)
        # Derived state: the decode cache and the engine's translations are
        # never part of a snapshot and must be rebuilt lazily.
        self._decoded.clear()
        self._engine_impl.on_restore()

    # -------------------------------------------------------------- execution
    def run(self, max_instructions: int = 50_000_000,
            max_cycles: Optional[int] = None) -> ExecutionStats:
        """Run until the program halts or a budget is exceeded.

        The selected engine's dispatch loop runs whenever its declared
        capabilities fit this run; otherwise — full-trace listeners on an
        engine without ``full_trace``, cycle budgets or halt addresses on
        a block engine — the reference interpreter takes over, which is
        always semantically equivalent.
        """
        start_instructions = self.stats.instructions
        impl = self._engine_impl
        use_impl = (
            (impl.full_trace or not self._listeners)
            and (impl.branch_hooks or not self._branch_hooks)
            and (impl.supports_max_cycles or max_cycles is None)
            and (impl.supports_halt_address or self.halt_address is None)
        )
        try:
            if use_impl:
                impl.run(max_instructions, max_cycles)
            else:
                self._run_interpreted(max_instructions, max_cycles)
        finally:
            executed = self.stats.instructions - start_instructions
            for hook in self._branch_hooks:
                on_run_end = getattr(hook, "on_run_end", None)
                if callable(on_run_end):
                    on_run_end(executed)
        self.stats.halted = True
        return self.stats

    def _run_interpreted(self, max_instructions: int,
                         max_cycles: Optional[int]) -> None:
        """The reference fetch/dispatch/execute loop."""
        while not self.halted:
            if self.stats.instructions >= max_instructions:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions at pc={self.pc:#x}"
                )
            if max_cycles is not None and self.stats.cycles >= max_cycles:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_cycles} cycles at pc={self.pc:#x}"
                )
            self.step()

    def _drain_imm_latch(self, max_instructions: int) -> None:
        """Consume a pending ``imm`` latch on the interpreter.

        Block engines call this before dispatching: a latch left by manual
        :meth:`step` calls must be consumed per-instruction so that block
        entry always starts latch-free, which is what the statically fused
        translations assume.
        """
        while self._imm_latch is not None and not self.halted:
            if self.stats.instructions >= max_instructions:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions at pc={self.pc:#x}"
                )
            self.step()

    def _sync_counters(self) -> None:
        """Fold the scalar counter array into :attr:`stats` and zero it."""
        from .engine import (CLASS_LIST, CNT_BRANCHES_NOT_TAKEN,
                             CNT_BRANCHES_TAKEN, CNT_CLASS_COUNT,
                             CNT_CLASS_CYCLES, CNT_CYCLES, CNT_INSTRUCTIONS,
                             CNT_LOADS, CNT_OPB_READS, CNT_OPB_WRITES,
                             CNT_STORES)

        counters = self._counters
        stats = self.stats
        stats.cycles += counters[CNT_CYCLES]
        stats.instructions += counters[CNT_INSTRUCTIONS]
        stats.branches_taken += counters[CNT_BRANCHES_TAKEN]
        stats.branches_not_taken += counters[CNT_BRANCHES_NOT_TAKEN]
        stats.loads += counters[CNT_LOADS]
        stats.stores += counters[CNT_STORES]
        stats.opb_reads += counters[CNT_OPB_READS]
        stats.opb_writes += counters[CNT_OPB_WRITES]
        for index, klass in enumerate(CLASS_LIST):
            count = counters[CNT_CLASS_COUNT + index]
            if count:
                stats.class_counts[klass] = \
                    stats.class_counts.get(klass, 0) + count
            cycles = counters[CNT_CLASS_CYCLES + index]
            if cycles:
                stats.class_cycles[klass] = \
                    stats.class_cycles.get(klass, 0) + cycles
        counters[:] = [0] * len(counters)

    def step(self) -> int:
        """Execute one instruction (plus its delay slot, if any).

        Returns the number of cycles charged.
        """
        if self.halted:
            return 0
        if self.halt_address is not None and self.pc == self.halt_address:
            self.halted = True
            return 0
        pc = self.pc
        instr = self.fetch(pc)
        cycles = self._execute(pc, instr)
        return cycles

    # ------------------------------------------------------------ the executor
    def _effective_imm(self, instr: Instruction) -> int:
        """Combine the instruction immediate with a pending ``imm`` prefix."""
        if self._imm_latch is None:
            return instr.imm
        value = ((self._imm_latch << 16) | (instr.imm & 0xFFFF)) & WORD_MASK
        return to_signed(value)

    def _check_unit(self, instr: Instruction) -> None:
        unit = instr.requires
        if unit is not None and not self.config.has_unit(unit):
            raise IllegalInstruction(
                f"{instr.mnemonic} at {instr.address:#x} requires the "
                f"{unit.value} which is not configured"
            )

    def _execute(self, pc: int, instr: Instruction) -> int:
        timings = self.config.timings
        klass = instr.klass
        self._check_unit(instr)

        branch_taken: Optional[bool] = None
        branch_target: Optional[int] = None
        next_pc = pc + 4
        imm_consumed = True

        regs = self.registers
        ra_val = 0 if instr.ra == 0 else regs[instr.ra]
        rb_val = 0 if instr.rb == 0 else regs[instr.rb]
        rd_val = 0 if instr.rd == 0 else regs[instr.rd]

        if klass in (InstrClass.ALU, InstrClass.LOGICAL, InstrClass.SHIFT,
                     InstrClass.BARREL_SHIFT, InstrClass.MULTIPLY,
                     InstrClass.DIVIDE, InstrClass.COMPARE, InstrClass.SEXT):
            cycles = timings.for_class(klass)
            result = self._compute(instr, ra_val, rb_val)
            self.write_register(instr.rd, result)

        elif klass is InstrClass.IMM_PREFIX:
            cycles = timings.imm_prefix
            self._imm_latch = instr.imm & 0xFFFF
            imm_consumed = False

        elif klass is InstrClass.LOAD:
            imm = self._effective_imm(instr)
            address = (ra_val + (rb_val if instr.spec.fmt.value == "A" else imm)) & WORD_MASK
            width = {"lw": 4, "lwi": 4, "lhu": 2, "lhui": 2, "lbu": 1, "lbui": 1}[instr.mnemonic]
            cycles = timings.load
            if self.opb is not None and address >= OPB_BASE_ADDRESS and self.opb.owns(address):
                value = self.opb.read(address)
                cycles += timings.opb_access_extra
                self.stats.opb_reads += 1
            else:
                value = self.data_bram.load(address, width)
            self.write_register(instr.rd, value)
            self.stats.loads += 1

        elif klass is InstrClass.STORE:
            imm = self._effective_imm(instr)
            address = (ra_val + (rb_val if instr.spec.fmt.value == "A" else imm)) & WORD_MASK
            width = {"sw": 4, "swi": 4, "sh": 2, "shi": 2, "sb": 1, "sbi": 1}[instr.mnemonic]
            cycles = timings.store
            if self.opb is not None and address >= OPB_BASE_ADDRESS and self.opb.owns(address):
                self.opb.write(address, rd_val)
                cycles += timings.opb_access_extra
                self.stats.opb_writes += 1
            else:
                self.data_bram.store(address, rd_val, width)
            self.stats.stores += 1

        elif klass is InstrClass.BRANCH_COND:
            imm = self._effective_imm(instr)
            taken = self._condition_holds(instr, ra_val)
            branch_taken = taken
            if taken:
                offset = rb_val if instr.spec.fmt.value == "A" else imm
                branch_target = (pc + to_signed(offset)) & WORD_MASK
                cycles = timings.branch_taken
            else:
                cycles = timings.branch_not_taken
            if instr.has_delay_slot:
                cycles += self._execute_delay_slot(pc)
                next_pc = branch_target if taken else pc + 8
            else:
                next_pc = branch_target if taken else pc + 4
            self.stats.branches_taken += int(taken)
            self.stats.branches_not_taken += int(not taken)

        elif klass in (InstrClass.BRANCH_UNCOND, InstrClass.CALL, InstrClass.RETURN):
            imm = self._effective_imm(instr)
            if klass is InstrClass.RETURN:
                branch_target = (ra_val + imm) & WORD_MASK
                cycles = timings.ret
            else:
                absolute = instr.mnemonic in ("bra", "brad", "brald", "brai", "bralid")
                if instr.spec.fmt.value == "A":
                    offset_or_abs = rb_val
                else:
                    offset_or_abs = imm
                if absolute:
                    branch_target = offset_or_abs & WORD_MASK
                else:
                    branch_target = (pc + to_signed(offset_or_abs)) & WORD_MASK
                cycles = timings.call if klass is InstrClass.CALL else timings.branch_taken
                if klass is InstrClass.CALL:
                    self.write_register(instr.rd, pc)
            branch_taken = True
            # A PC-relative unconditional branch to itself is the halt idiom.
            if branch_target == pc and klass is InstrClass.BRANCH_UNCOND:
                self.halted = True
            if instr.has_delay_slot and not self.halted:
                cycles += self._execute_delay_slot(pc)
            next_pc = branch_target
            self.stats.branches_taken += 1

        else:  # pragma: no cover - defensive, all classes handled above
            raise IllegalInstruction(f"unhandled instruction class {klass}")

        if imm_consumed:
            self._imm_latch = None
        self.stats.record(klass, cycles)
        opb = self.opb
        if opb is not None and opb.ticking:
            # Interpreter granularity: opted-in peripherals see time
            # advance per executed instruction (block engines batch this
            # into one tick per superblock; see repro.microblaze.engines).
            opb.deliver_ticks(cycles)
        self.pc = next_pc
        if self.halt_address is not None and self.pc == self.halt_address:
            self.halted = True

        if self._listeners:
            event = TraceEvent(pc=pc, instruction=instr, cycles=cycles,
                               branch_taken=branch_taken, branch_target=branch_target)
            for listener in self._listeners:
                listener.on_instruction(event)
        if branch_taken is not None and self._branch_hooks:
            for hook in self._branch_hooks:
                hook.on_branch(pc, branch_target, branch_taken)
        return cycles

    def _execute_delay_slot(self, branch_pc: int) -> int:
        """Execute the instruction in the delay slot of a branch at ``branch_pc``."""
        slot_pc = branch_pc + 4
        slot_instr = self.fetch(slot_pc)
        if slot_instr.is_branch or slot_instr.klass is InstrClass.IMM_PREFIX:
            raise IllegalInstruction(
                f"illegal instruction {slot_instr.mnemonic} in delay slot at {slot_pc:#x}"
            )
        saved_pc = self.pc
        self.pc = slot_pc
        # Delay slot instructions cannot themselves branch, so _execute simply
        # advances self.pc which we restore below.
        cycles = self._execute(slot_pc, slot_instr)
        self.pc = saved_pc
        return cycles

    # ------------------------------------------------------------ ALU helpers
    def _compute(self, instr: Instruction, ra_val: int, rb_val: int) -> int:
        """Compute the result of a register-writing data instruction."""
        mnemonic = instr.mnemonic
        imm = self._effective_imm(instr)

        if mnemonic in ("add", "addk"):
            return (ra_val + rb_val) & WORD_MASK
        if mnemonic in ("addi", "addik"):
            return (ra_val + imm) & WORD_MASK
        if mnemonic in ("rsub", "rsubk"):
            return (rb_val - ra_val) & WORD_MASK
        if mnemonic in ("rsubi", "rsubik"):
            return (imm - ra_val) & WORD_MASK
        if mnemonic == "mul":
            return (ra_val * rb_val) & WORD_MASK
        if mnemonic == "muli":
            return (ra_val * imm) & WORD_MASK
        if mnemonic == "idiv":
            from .engine import signed_division
            return signed_division(to_signed(rb_val), to_signed(ra_val))
        if mnemonic == "idivu":
            if ra_val == 0:
                return 0
            return (rb_val // ra_val) & WORD_MASK
        if mnemonic == "cmp":
            a, b = to_signed(ra_val), to_signed(rb_val)
            return (1 if b > a else 0 if b == a else -1) & WORD_MASK
        if mnemonic == "cmpu":
            return (1 if rb_val > ra_val else 0 if rb_val == ra_val else -1) & WORD_MASK
        if mnemonic == "and":
            return ra_val & rb_val
        if mnemonic == "andi":
            return ra_val & (imm & WORD_MASK)
        if mnemonic == "or":
            return ra_val | rb_val
        if mnemonic == "ori":
            return ra_val | (imm & WORD_MASK)
        if mnemonic == "xor":
            return ra_val ^ rb_val
        if mnemonic == "xori":
            return ra_val ^ (imm & WORD_MASK)
        if mnemonic == "andn":
            return ra_val & ~rb_val & WORD_MASK
        if mnemonic == "andni":
            return ra_val & ~(imm & WORD_MASK) & WORD_MASK
        if mnemonic == "sra":
            return (to_signed(ra_val) >> 1) & WORD_MASK
        if mnemonic in ("srl", "src"):
            return ra_val >> 1
        if mnemonic == "sext8":
            return to_signed(ra_val & 0xFF, 8) & WORD_MASK
        if mnemonic == "sext16":
            return to_signed(ra_val & 0xFFFF, 16) & WORD_MASK
        if mnemonic == "bsll":
            return (ra_val << (rb_val & 31)) & WORD_MASK
        if mnemonic == "bslli":
            return (ra_val << (instr.imm & 31)) & WORD_MASK
        if mnemonic == "bsrl":
            return ra_val >> (rb_val & 31)
        if mnemonic == "bsrli":
            return ra_val >> (instr.imm & 31)
        if mnemonic == "bsra":
            return (to_signed(ra_val) >> (rb_val & 31)) & WORD_MASK
        if mnemonic == "bsrai":
            return (to_signed(ra_val) >> (instr.imm & 31)) & WORD_MASK
        raise IllegalInstruction(f"unhandled data instruction {mnemonic}")

    @staticmethod
    def _condition_holds(instr: Instruction, ra_val: int) -> bool:
        """Evaluate the branch condition against the signed value of ``ra``."""
        value = to_signed(ra_val)
        condition = instr.spec.condition
        if condition is None:  # pragma: no cover - defensive
            raise IllegalInstruction(f"{instr.mnemonic} has no condition")
        name = condition.name
        if name == "EQ":
            return value == 0
        if name == "NE":
            return value != 0
        if name == "LT":
            return value < 0
        if name == "LE":
            return value <= 0
        if name == "GT":
            return value > 0
        return value >= 0
