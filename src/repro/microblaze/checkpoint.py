"""CPU checkpoint/restore: snapshot a running MicroBlaze system to bytes.

The warp service preempts long-running jobs, migrates them between worker
processes, and fans a single warmed-up system out into many divergent
scenario runs without re-simulating the common prefix.  All three need the
same primitive: a *bit-exact*, engine-independent snapshot of a
:class:`~repro.microblaze.system.MicroBlazeSystem` —

* the CPU's architectural state (register file, pc, halt state, ``imm``
  latch, cumulative :class:`~repro.microblaze.cpu.ExecutionStats`),
* both block RAMs (contents and port access counters),
* local-memory-bus traffic counters,
* the on-chip peripheral bus and every attached peripheral's device state
  (peripherals expose ``snapshot_state()`` / ``restore_state()``; see
  :class:`~repro.microblaze.opb.SimplePeripheral` and
  :class:`~repro.fabric.hw_exec.WclaPeripheral`).

Decode caches and superblock translations are deliberately *not* captured:
they are derived state and are rebuilt lazily after a restore (the
restoring CPU may even use a different execution engine — a checkpoint
taken on the threaded engine resumes bit-exactly on the interpreter and
vice versa, which the differential tests assert).

Blob format (:data:`CHECKPOINT_VERSION`): an 8-byte magic, a 2-byte
big-endian format version, then a zlib-compressed pickle of a
plain-builtins payload dictionary.  Enum-valued statistics are stored by
name and the processor configuration as a field dictionary, so the blob
does not depend on pickle's treatment of repo classes and can be validated
against the restoring system's configuration.  The decoder enforces the
plain-builtins contract: it refuses to resolve *any* global during
unpickling, so a crafted blob cannot execute code — it fails with
:class:`CheckpointError`.
"""

from __future__ import annotations

import io
import pickle
import zlib
from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Sequence

from .config import MicroBlazeConfig, PipelineTimings
from .cpu import ExecutionLimitExceeded
from .memory import BlockRAM
from .system import ExecutionResult, MicroBlazeSystem

#: Magic prefix of every checkpoint blob.
CHECKPOINT_MAGIC = b"WARPCKPT"
#: Current checkpoint format version (bump on any payload layout change).
CHECKPOINT_VERSION = 1


class CheckpointError(Exception):
    """Raised when a blob cannot be decoded or does not fit the target."""


# --------------------------------------------------------------------------- config codec
def _config_to_plain(config: MicroBlazeConfig) -> Dict:
    return asdict(config)


def _config_from_plain(plain: Dict) -> MicroBlazeConfig:
    fields = dict(plain)
    fields["timings"] = PipelineTimings(**fields["timings"])
    return MicroBlazeConfig(**fields)


# --------------------------------------------------------------------------- capture
def _bram_to_plain(bram: BlockRAM) -> Dict:
    return {
        "size": bram.size,
        "data": bytes(bram.storage),
        "port_a_accesses": bram.port_a_accesses,
        "port_b_accesses": bram.port_b_accesses,
    }


def _restore_bram(bram: BlockRAM, plain: Dict, label: str) -> None:
    if bram.size != plain["size"]:
        raise CheckpointError(
            f"{label}: checkpoint holds {plain['size']} bytes but the target "
            f"BRAM has {bram.size}"
        )
    bram.storage[:] = plain["data"]
    bram.port_a_accesses = plain["port_a_accesses"]
    bram.port_b_accesses = plain["port_b_accesses"]


def capture_checkpoint(system: MicroBlazeSystem) -> bytes:
    """Snapshot ``system`` into a compact, versioned bytes blob.

    The system must be at an instruction boundary — i.e. between
    :meth:`~repro.microblaze.system.MicroBlazeSystem.run` /
    :func:`run_slice` calls — which is the only time callers can observe
    it anyway.
    """
    program = system._loaded_program
    if program is not None:
        program_meta = {
            "name": program.name,
            "entry_point": program.entry_point,
            "data_size": program.data_size,
        }
    elif system._checkpoint_meta is not None:
        program_meta = dict(system._checkpoint_meta)
    else:
        raise CheckpointError("cannot checkpoint a system that never loaded "
                              "a program")

    peripherals = []
    for peripheral in system.opb.peripherals:
        snapshot = getattr(peripheral, "snapshot_state", None)
        peripherals.append({
            "name": peripheral.name,
            "base_address": peripheral.base_address,
            "state": snapshot() if callable(snapshot) else None,
        })

    payload = {
        "version": CHECKPOINT_VERSION,
        "config": _config_to_plain(system.config),
        "engine": system.cpu.engine,
        "program": program_meta,
        "cpu": system.cpu.snapshot_state(),
        "instr_bram": _bram_to_plain(system.instr_bram),
        "data_bram": _bram_to_plain(system.data_bram),
        "lmb": {
            "i": (system.i_lmb.reads, system.i_lmb.writes),
            "d": (system.d_lmb.reads, system.d_lmb.writes),
        },
        "opb": {
            "reads": system.opb.reads,
            "writes": system.opb.writes,
            "peripherals": peripherals,
        },
    }
    body = zlib.compress(pickle.dumps(payload, protocol=4), level=6)
    return (CHECKPOINT_MAGIC
            + CHECKPOINT_VERSION.to_bytes(2, "big")
            + body)


class _PlainBuiltinsUnpickler(pickle.Unpickler):
    """Unpickler that refuses every global lookup.

    The checkpoint payload is plain builtins by construction (ints,
    strings, bytes, lists, dicts, tuples, bools, None), which pickle
    deserializes without ever resolving a class or function.  Refusing
    ``find_class`` outright means a crafted blob cannot smuggle a
    ``__reduce__`` payload into the decoder — untrusted blobs fail with
    :class:`CheckpointError` instead of executing code.
    """

    def find_class(self, module, name):  # noqa: D401 - pickle API
        raise pickle.UnpicklingError(
            f"checkpoint payloads contain only plain builtins; refusing to "
            f"resolve {module}.{name}"
        )


def _decode_blob(blob: bytes) -> Dict:
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError("not a warp checkpoint (bad magic)")
    version = int.from_bytes(blob[len(CHECKPOINT_MAGIC):len(CHECKPOINT_MAGIC) + 2],
                             "big")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {version} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    try:
        body = zlib.decompress(blob[len(CHECKPOINT_MAGIC) + 2:])
        payload = _PlainBuiltinsUnpickler(io.BytesIO(body)).load()
    except Exception as error:
        raise CheckpointError(f"corrupt checkpoint payload: {error}") from error
    if not isinstance(payload, dict):
        raise CheckpointError("corrupt checkpoint payload: not a mapping")
    return payload


# --------------------------------------------------------------------------- restore
def restore_checkpoint(system: MicroBlazeSystem, blob: bytes) -> None:
    """Restore ``blob`` bit-exactly into ``system``.

    The target must structurally match the checkpointed system: same
    processor configuration, same BRAM sizes, and the same set of attached
    peripherals (matched by ``(name, base_address)``).  Peripheral device
    state is restored through the peripheral's ``restore_state`` hook.
    """
    payload = _decode_blob(blob)

    config = _config_from_plain(payload["config"])
    if config != system.config:
        raise CheckpointError(
            "checkpoint was taken on a different processor configuration "
            f"({config.describe()} vs {system.config.describe()})"
        )

    recorded = {(entry["name"], entry["base_address"]): entry
                for entry in payload["opb"]["peripherals"]}
    attached = {(p.name, p.base_address): p for p in system.opb.peripherals}
    if set(recorded) != set(attached):
        raise CheckpointError(
            f"peripheral topology mismatch: checkpoint has "
            f"{sorted(recorded)}, target has {sorted(attached)}"
        )
    for key, entry in recorded.items():
        # Validate every restore hook up front: nothing is mutated until
        # the whole restore is known to be possible, so a failed restore
        # leaves the target system untouched.
        if entry["state"] is not None \
                and not callable(getattr(attached[key], "restore_state", None)):
            raise CheckpointError(
                f"peripheral {key[0]!r} has recorded state but the attached "
                f"instance does not implement restore_state()"
            )

    _restore_bram(system.instr_bram, payload["instr_bram"], "instr_bram")
    _restore_bram(system.data_bram, payload["data_bram"], "data_bram")
    system.i_lmb.reads, system.i_lmb.writes = payload["lmb"]["i"]
    system.d_lmb.reads, system.d_lmb.writes = payload["lmb"]["d"]
    system.opb.reads = payload["opb"]["reads"]
    system.opb.writes = payload["opb"]["writes"]
    for key, entry in recorded.items():
        if entry["state"] is not None:
            attached[key].restore_state(entry["state"])

    # CPU last: restore_state also drops the decode/superblock caches that
    # the freshly written instruction BRAM invalidates.
    system.cpu.restore_state(payload["cpu"])
    system._loaded_program = None
    system._checkpoint_meta = dict(payload["program"])


def describe_checkpoint(blob: bytes) -> Dict:
    """Decode a blob's metadata without touching any system (diagnostics)."""
    payload = _decode_blob(blob)
    return {
        "version": payload["version"],
        "program": dict(payload["program"]),
        "engine": payload["engine"],
        "pc": payload["cpu"]["pc"],
        "halted": payload["cpu"]["halted"],
        "instructions": payload["cpu"]["stats"]["instructions"],
        "cycles": payload["cpu"]["stats"]["cycles"],
        "blob_bytes": len(blob),
    }


def spawn_from_checkpoint(blob: bytes, peripherals: Sequence = (),
                          engine: Optional[str] = None,
                          precise_fault_stats: bool = False) -> MicroBlazeSystem:
    """Build a fresh system from a blob alone (worker-migration entry point).

    The processor configuration is reconstructed from the blob; the caller
    supplies freshly built peripherals matching the checkpointed topology
    (peripherals hold live object references — kernels, BRAM ports — that
    a blob cannot carry).  ``engine`` may differ from the engine the
    checkpoint was taken on: the snapshot is engine-independent.
    """
    payload = _decode_blob(blob)
    system = MicroBlazeSystem(config=_config_from_plain(payload["config"]),
                              peripherals=peripherals,
                              engine=engine if engine is not None
                              else payload["engine"],
                              precise_fault_stats=precise_fault_stats)
    restore_checkpoint(system, blob)
    return system


# --------------------------------------------------------------------------- preemption
def run_slice(system: MicroBlazeSystem, slice_instructions: int) -> bool:
    """Execute at most ``slice_instructions`` further instructions.

    Returns ``True`` when the program ran to completion within the slice
    and ``False`` when it was preempted at an instruction boundary — at
    which point the system is checkpointable and the job can be resumed
    (here or in another process) with :meth:`MicroBlazeSystem.resume` or
    another ``run_slice``.  Statistics are cumulative across slices, so a
    sliced run finishes with *identical* stats to an uninterrupted one.
    """
    if slice_instructions <= 0:
        raise ValueError("slice_instructions must be positive")
    budget = system.cpu.stats.instructions + slice_instructions
    try:
        system.cpu.run(max_instructions=budget)
    except ExecutionLimitExceeded:
        return False
    return True


# --------------------------------------------------------------------------- fan-out
def fan_out(blob: bytes,
            scenarios: Sequence[Callable[[MicroBlazeSystem], None]],
            engine: Optional[str] = None,
            max_instructions: int = 50_000_000,
            peripherals_factory: Optional[Callable[[], Sequence]] = None,
            ) -> List[ExecutionResult]:
    """Fan one warmed-up checkpoint out into ``len(scenarios)`` runs.

    Each scenario gets its own fresh system restored from ``blob``, is
    applied as a mutation (typically poking data-BRAM words through
    ``system.data_bram`` to set up a divergent input), and is then resumed
    to completion.  The shared prefix — everything up to the checkpoint —
    is simulated exactly once, by whoever produced the blob.

    If the checkpointed system had peripherals attached, supply
    ``peripherals_factory``: it is called once *per scenario* and must
    return freshly built peripherals matching the checkpointed topology
    (scenario runs must not share live peripheral objects).
    """
    results: List[ExecutionResult] = []
    for scenario in scenarios:
        peripherals = peripherals_factory() if peripherals_factory else ()
        system = spawn_from_checkpoint(blob, peripherals=peripherals,
                                       engine=engine)
        if scenario is not None:
            scenario(system)
        results.append(system.resume(max_instructions=max_instructions))
    return results
