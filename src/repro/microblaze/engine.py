"""Threaded-code execution engine for the MicroBlaze simulator.

The seed interpreter re-resolves every instruction on every execution: a
~40-branch ``if/elif`` chain over the mnemonic, dictionary lookups for the
memory width, an ``_effective_imm`` check even for instructions that can
never carry an ``imm`` prefix, and two dictionary updates in
``ExecutionStats.record`` per instruction.  This module performs all of
that work *once, at decode time* — the classic threaded-code / template
translation applied by dynamic binary translators:

* every instruction compiles into a specialized closure with its operand
  indices, immediate, latency and OPB-routing decision bound as locals;
* straight-line runs ending in a branch compile into a *superblock*: a
  tuple of handler closures plus one terminator closure that resolves the
  branch and returns the next program counter;
* per-instruction statistics are pre-aggregated per block into a list of
  ``(counter_index, delta)`` pairs applied once per block execution, with
  only genuinely dynamic contributions (OPB access penalties, branch
  taken/not-taken cycles, delay-slot costs) accounted at run time;
* ``imm`` prefixes are fused statically: the prefix and its consumer are
  compiled together with the full 32-bit immediate precomputed, so the
  hot path never touches the ``_imm_latch``.

The engine is *bit-exact* with the interpreter: identical cycle counts,
``ExecutionStats`` contents (including the seed's double-charging of
delay-slot cycles to both the slot's class and the branch's class),
branch-event streams, and memory-port access counters.  The differential
test in ``tests/test_threaded_engine.py`` asserts this on every suite
benchmark.

Superblocks live in the engine's block cache
(:class:`repro.microblaze.engines.threaded.ThreadedEngine`, visible as
``MicroBlazeCPU._blocks``) keyed by entry address and are invalidated
together with the decode cache when the dynamic partitioning module
patches the binary (see
:meth:`~repro.microblaze.cpu.MicroBlazeCPU.invalidate_decode_cache`).

Known, intentional divergence: when an instruction *faults at run time*
(misaligned access, unmapped OPB address) in the middle of a superblock,
the statistics of the other instructions of that block may differ from
the interpreter's by up to one block, because block statistics are
applied wholesale.  Architectural state (registers, memory) is identical;
fault-free runs — everything the experiment harness measures — are exact.
Compile-time faults (unknown opcodes, instructions needing an absent
hardware unit, branches in delay slots) are compiled into *raiser*
terminators so they fire at the same execution point, with the same
exception type and message, as the interpreter.

That divergence can be closed by opting in to **precise fault statistics**
(``precise_fault_stats=True`` on the CPU / system / ``run_program``): the
compiler then emits *per-handler* statistics translations — every
instruction of a block self-records its counters exactly the way delay
slots always have, maintains the program counter and the ``imm`` latch at
instruction granularity, and the block carries no wholesale deltas.  A
fault that lands mid-block therefore leaves ``ExecutionStats``, ``pc``
and the latch in exactly the interpreter's fault-point state, at the cost
of per-instruction counter updates on the hot path.  Fault-free behaviour
is unchanged and remains bit-exact.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..isa.encoding import EncodingError
from ..isa.instructions import Instruction, InstrClass
from ..isa.registers import WORD_MASK, to_signed
from .memory import MemoryError_
from .opb import OPB_BASE_ADDRESS

#: Order in which instruction classes map onto counter-array slots.
CLASS_LIST: Tuple[InstrClass, ...] = tuple(InstrClass)
CLASS_INDEX = {klass: index for index, klass in enumerate(CLASS_LIST)}

# Scalar-counter array layout (see MicroBlazeCPU._counters).
CNT_CYCLES = 0
CNT_INSTRUCTIONS = 1
CNT_BRANCHES_TAKEN = 2
CNT_BRANCHES_NOT_TAKEN = 3
CNT_LOADS = 4
CNT_STORES = 5
CNT_OPB_READS = 6
CNT_OPB_WRITES = 7
CNT_CLASS_COUNT = 8
CNT_CLASS_CYCLES = CNT_CLASS_COUNT + len(CLASS_LIST)
NUM_COUNTERS = CNT_CLASS_CYCLES + len(CLASS_LIST)

#: Upper bound on instructions folded into one superblock.  Straight-line
#: runs longer than this end in a fall-through terminator; the bound keeps
#: single compilations cheap and block descriptors small.
MAX_BLOCK_INSTRUCTIONS = 128

_LOAD_WIDTHS = {"lw": 4, "lwi": 4, "lhu": 2, "lhui": 2, "lbu": 1, "lbui": 1}
_STORE_WIDTHS = {"sw": 4, "swi": 4, "sh": 2, "shi": 2, "sb": 1, "sbi": 1}
_ABSOLUTE_BRANCHES = frozenset(("bra", "brad", "brald", "brai", "bralid"))

#: A compiled superblock: ``(n_instructions, stats_deltas, body, terminator,
#: entry_address, end_address, static_cycles)``.  ``stats_deltas`` is a
#: tuple of ``(counter_index, delta)`` pairs covering every *static*
#: statistic of the straight-line body (empty in precise mode); ``body`` is
#: a tuple of argument-less handler closures; ``terminator`` returns the
#: next program counter.  ``entry`` / ``end`` delimit the byte range the
#: block was compiled from (inclusive), which selective invalidation uses.
#: ``static_cycles`` is the statically known straight-line cycle count,
#: tracked in both modes for the tick-batching deadline pre-check.
Block = Tuple[int, tuple, tuple, Callable[[], int], int, int, int]


def signed_division(dividend: int, divisor: int) -> int:
    """Exact MicroBlaze ``idiv``: truncation toward zero, masked to 32 bits.

    Uses integer arithmetic throughout — ``int(dividend / divisor)`` loses
    precision once the quotient exceeds 2**53 — and makes the
    ``INT_MIN / -1`` overflow case explicit: the true quotient 2**31 does
    not fit in a 32-bit signed register and wraps back to ``INT_MIN``,
    which is what the masked hardware result is as well.
    """
    if divisor == 0:
        return 0
    if dividend == -0x8000_0000 and divisor == -1:
        return 0x8000_0000
    quotient = abs(dividend) // abs(divisor)
    if (dividend < 0) != (divisor < 0):
        quotient = -quotient
    return quotient & WORD_MASK


class BlockCompiler:
    """Compiles superblocks for one :class:`MicroBlazeCPU` instance.

    The compiler binds the CPU's register file, memories and peripheral
    bus once; every closure it emits reuses those bindings, which is why
    ``MicroBlazeCPU.reset`` must mutate the register list in place rather
    than rebinding it.
    """

    def __init__(self, cpu, blocks: Optional[dict] = None) -> None:
        self.cpu = cpu
        #: Superblock cache the compiler publishes into (owned by the
        #: :class:`~repro.microblaze.engines.threaded.ThreadedEngine`).
        self.blocks = blocks if blocks is not None else {}
        #: Precise-fault-statistics mode: every instruction self-records its
        #: counters, program counter and imm latch (see the module docstring).
        self.precise = bool(getattr(cpu, "precise_fault_stats", False))

    # ------------------------------------------------------------------ entry
    def compile_block(self, entry: int) -> Block:
        cpu = self.cpu
        precise = self.precise
        body: List[Callable[[], None]] = []
        deltas = [0] * NUM_COUNTERS
        timings = cpu.config.timings
        #: Statically known straight-line cycle count, tracked in *both*
        #: modes (precise blocks carry no wholesale deltas, but the
        #: tick-batching dispatch loop still needs the bound for its
        #: deadline pre-check).
        static_cycles = 0
        n = 0
        pc = entry
        pending_imm: Optional[int] = None

        while True:
            try:
                instr = cpu.fetch(pc)
            except (EncodingError, MemoryError_):
                # Undecodable word or fetch past the end of the instruction
                # BRAM: compile a raiser so the fault fires at run time, at
                # the same execution point (after the block's earlier
                # instructions) and with the same exception as the
                # interpreter's fetch.
                term = self._raiser_refetch(pc)
                if precise:
                    term = self._precise_term(term, pc)
                return self._finish(entry, pc, n, deltas, body, term,
                                    static_cycles)

            unit = instr.requires
            if unit is not None and not cpu.config.has_unit(unit):
                term = self._raiser_unit(instr)
                if precise:
                    term = self._precise_term(term, pc)
                return self._finish(entry, pc, n, deltas, body, term,
                                    static_cycles)

            klass = instr.klass
            if klass is InstrClass.IMM_PREFIX:
                pending_imm = instr.imm & 0xFFFF
                static_cycles += timings.imm_prefix
                if precise:
                    body.append(self._record_imm_prefix(pc, pending_imm))
                else:
                    deltas[CNT_CYCLES] += timings.imm_prefix
                    deltas[CNT_INSTRUCTIONS] += 1
                    ci = CLASS_INDEX[klass]
                    deltas[CNT_CLASS_COUNT + ci] += 1
                    deltas[CNT_CLASS_CYCLES + ci] += timings.imm_prefix
                n += 1
                pc += 4
                continue

            if instr.is_branch:
                term, extra_instructions, end = self._compile_terminator(
                    pc, instr, pending_imm)
                if precise:
                    term = self._precise_term(term, pc)
                n += 1 + extra_instructions
                return self._finish(entry, end, n, deltas, body, term,
                                    static_cycles)

            if precise:
                # Per-handler statistics: reuse the delay-slot (self-
                # recording) flavour of every handler and add pc / latch
                # maintenance, so a mid-block fault leaves the CPU in
                # exactly the interpreter's fault-point state.
                handler, cycles = self._compile_straightline(
                    instr, pending_imm, slot_mode=True)
                body.append(self._precise_body(handler, pc,
                                               pending_imm is not None))
            else:
                handler, cycles = self._compile_straightline(
                    instr, pending_imm, slot_mode=False)
                if handler is not None:
                    body.append(handler)
                deltas[CNT_CYCLES] += cycles
                deltas[CNT_INSTRUCTIONS] += 1
                ci = CLASS_INDEX[klass]
                deltas[CNT_CLASS_COUNT + ci] += 1
                deltas[CNT_CLASS_CYCLES + ci] += cycles
                if klass is InstrClass.LOAD:
                    deltas[CNT_LOADS] += 1
                elif klass is InstrClass.STORE:
                    deltas[CNT_STORES] += 1
            static_cycles += cycles
            pending_imm = None
            n += 1
            pc += 4

            if n >= MAX_BLOCK_INSTRUCTIONS and pending_imm is None:
                next_pc = pc
                term = lambda: next_pc  # noqa: E731 - fall-through terminator
                return self._finish(entry, pc - 4, n, deltas, body, term,
                                    static_cycles)

    def _finish(self, entry: int, end: int, n: int, deltas: List[int],
                body: List[Callable[[], None]],
                term: Callable[[], int], static_cycles: int = 0) -> Block:
        pairs = tuple((index, delta) for index, delta in enumerate(deltas)
                      if delta)
        block: Block = (n, pairs, tuple(body), term, entry, end,
                        static_cycles)
        self.blocks[entry] = block
        return block

    # ------------------------------------------------- precise-fault-stats mode
    def _record_imm_prefix(self, pc: int, latch_value: int) -> Callable[[], None]:
        """Precise-mode handler for an ``imm`` prefix.

        The prefix's semantics stay statically fused into its consumer; at
        run time the handler only records the prefix's own statistics and
        mirrors the interpreter's latch state so that a fault in the
        consumer leaves ``_imm_latch`` set, exactly as the interpreter
        would.
        """
        cpu = self.cpu
        cnt = cpu._counters
        cycles = cpu.config.timings.imm_prefix
        ci_count = CNT_CLASS_COUNT + CLASS_INDEX[InstrClass.IMM_PREFIX]
        ci_cycles = CNT_CLASS_CYCLES + CLASS_INDEX[InstrClass.IMM_PREFIX]

        def h() -> None:
            cpu.pc = pc
            cpu._imm_latch = latch_value
            cnt[CNT_CYCLES] += cycles
            cnt[CNT_INSTRUCTIONS] += 1
            cnt[ci_count] += 1
            cnt[ci_cycles] += cycles

        return h

    def _precise_body(self, handler: Callable, pc: int,
                      clears_latch: bool) -> Callable[[], None]:
        """Wrap a self-recording handler with pc / imm-latch maintenance."""
        cpu = self.cpu
        if clears_latch:
            def h() -> None:
                cpu.pc = pc
                handler()
                cpu._imm_latch = None
        else:
            def h() -> None:
                cpu.pc = pc
                handler()
        return h

    def _precise_term(self, term: Callable[[], int],
                      pc: int) -> Callable[[], int]:
        """Wrap a terminator: pc points at the branch while it executes and
        the imm latch is consumed when it completes (interpreter order)."""
        cpu = self.cpu

        def wrapped() -> int:
            cpu.pc = pc
            next_pc = term()
            cpu._imm_latch = None
            return next_pc

        return wrapped

    def _precise_slot(self, slot_handler: Callable[[], int],
                      slot_pc: int) -> Callable[[], int]:
        """Delay-slot wrapper: the interpreter executes the slot with
        ``self.pc`` pointing at the slot, so a faulting slot must leave the
        pc there."""
        cpu = self.cpu

        def wrapped() -> int:
            cpu.pc = slot_pc
            return slot_handler()

        return wrapped

    # ------------------------------------------------------- raiser terminators
    def _raiser_refetch(self, pc: int) -> Callable[[], int]:
        """Re-raise the fetch/decode error exactly where the interpreter would."""
        cpu = self.cpu

        def term() -> int:
            cpu.fetch(pc)  # raises the original EncodingError / MemoryError_
            raise AssertionError("unreachable: refetch did not raise")

        return term

    def _raiser_unit(self, instr: Instruction) -> Callable[[], int]:
        cpu = self.cpu

        def term() -> int:
            cpu._check_unit(instr)  # raises IllegalInstruction
            raise AssertionError("unreachable: unit check did not raise")

        return term

    def _raiser_delay_slot(self, branch_pc: int) -> Callable[[], int]:
        """Branch whose delay slot holds a branch/imm: raise at execution."""
        cpu = self.cpu

        def term() -> int:
            cpu._execute_delay_slot(branch_pc)  # raises IllegalInstruction
            raise AssertionError("unreachable: delay slot check did not raise")

        return term

    # ------------------------------------------------------- straight-line ops
    def _compile_straightline(self, instr: Instruction,
                              pending_imm: Optional[int],
                              slot_mode: bool):
        """Compile one non-branch instruction.

        Returns ``(handler, static_cycles)``.  In *body* mode the handler
        performs only the architectural side effect (statistics are the
        enclosing block's pre-aggregated deltas) and may be ``None`` when
        the instruction has no observable effect; dynamic OPB penalties are
        accounted by the handler itself.  In *slot* mode — delay slots,
        whose statistics the seed interpreter records per execution — the
        handler records all of its statistics and returns its actual cycle
        cost (the branch adds that to its own recorded cycles, reproducing
        the interpreter's double charge).
        """
        klass = instr.klass
        if klass is InstrClass.LOAD:
            return self._compile_load(instr, pending_imm, slot_mode)
        if klass is InstrClass.STORE:
            return self._compile_store(instr, pending_imm, slot_mode)
        handler, cycles = self._compile_compute(instr, pending_imm)
        if not slot_mode:
            return handler, cycles
        return self._wrap_slot(handler, klass, cycles), cycles

    def _wrap_slot(self, handler, klass: InstrClass, cycles: int):
        """Slot-mode wrapper for computes: self-record statistics."""
        cnt = self.cpu._counters
        ci_count = CNT_CLASS_COUNT + CLASS_INDEX[klass]
        ci_cycles = CNT_CLASS_CYCLES + CLASS_INDEX[klass]

        def slot() -> int:
            if handler is not None:
                handler()
            cnt[CNT_CYCLES] += cycles
            cnt[CNT_INSTRUCTIONS] += 1
            cnt[ci_count] += 1
            cnt[ci_cycles] += cycles
            return cycles

        return slot

    def _effective_imm(self, instr: Instruction,
                       pending_imm: Optional[int]) -> int:
        """The statically fused immediate (decode-time ``imm`` handling)."""
        if pending_imm is None:
            return instr.imm
        return to_signed(((pending_imm << 16) | (instr.imm & 0xFFFF))
                         & WORD_MASK)

    def _compile_compute(self, instr: Instruction,
                         pending_imm: Optional[int]):
        """ALU / logical / shift / multiply / divide / compare / sext."""
        regs = self.cpu.registers
        timings = self.cpu.config.timings
        cycles = timings.for_class(instr.klass)
        m = instr.mnemonic
        rd, ra, rb = instr.rd, instr.ra, instr.rb
        imm = self._effective_imm(instr, pending_imm)
        M = WORD_MASK

        if rd == 0:
            # Writes to r0 are discarded and none of the compute operations
            # has another side effect, so the handler degenerates to a NOP;
            # the block's statistics deltas still account for it.
            return None, cycles

        h: Optional[Callable[[], None]] = None
        if m in ("add", "addk"):
            def h(): regs[rd] = (regs[ra] + regs[rb]) & M
        elif m in ("addi", "addik"):
            def h(): regs[rd] = (regs[ra] + imm) & M
        elif m in ("rsub", "rsubk"):
            def h(): regs[rd] = (regs[rb] - regs[ra]) & M
        elif m in ("rsubi", "rsubik"):
            def h(): regs[rd] = (imm - regs[ra]) & M
        elif m == "mul":
            def h(): regs[rd] = (regs[ra] * regs[rb]) & M
        elif m == "muli":
            def h(): regs[rd] = (regs[ra] * imm) & M
        elif m == "idiv":
            def h():
                regs[rd] = signed_division(to_signed(regs[rb]),
                                           to_signed(regs[ra]))
        elif m == "idivu":
            def h():
                divisor = regs[ra]
                regs[rd] = (regs[rb] // divisor) & M if divisor else 0
        elif m == "cmp":
            def h():
                a, b = to_signed(regs[ra]), to_signed(regs[rb])
                regs[rd] = (1 if b > a else 0 if b == a else -1) & M
        elif m == "cmpu":
            def h():
                a, b = regs[ra], regs[rb]
                regs[rd] = (1 if b > a else 0 if b == a else -1) & M
        elif m == "and":
            def h(): regs[rd] = regs[ra] & regs[rb]
        elif m == "andi":
            masked = imm & M
            def h(): regs[rd] = regs[ra] & masked
        elif m == "or":
            def h(): regs[rd] = regs[ra] | regs[rb]
        elif m == "ori":
            masked = imm & M
            def h(): regs[rd] = regs[ra] | masked
        elif m == "xor":
            def h(): regs[rd] = regs[ra] ^ regs[rb]
        elif m == "xori":
            masked = imm & M
            def h(): regs[rd] = regs[ra] ^ masked
        elif m == "andn":
            def h(): regs[rd] = regs[ra] & ~regs[rb] & M
        elif m == "andni":
            masked = ~(imm & M) & M
            def h(): regs[rd] = regs[ra] & masked
        elif m == "sra":
            def h(): regs[rd] = (to_signed(regs[ra]) >> 1) & M
        elif m in ("srl", "src"):
            def h(): regs[rd] = regs[ra] >> 1
        elif m == "sext8":
            def h(): regs[rd] = to_signed(regs[ra] & 0xFF, 8) & M
        elif m == "sext16":
            def h(): regs[rd] = to_signed(regs[ra] & 0xFFFF, 16) & M
        elif m == "bsll":
            def h(): regs[rd] = (regs[ra] << (regs[rb] & 31)) & M
        elif m == "bslli":
            # Barrel-shift immediates use the raw 5-bit field, never a fused
            # imm prefix (the interpreter reads instr.imm directly too).
            shift = instr.imm & 31
            def h(): regs[rd] = (regs[ra] << shift) & M
        elif m == "bsrl":
            def h(): regs[rd] = regs[ra] >> (regs[rb] & 31)
        elif m == "bsrli":
            shift = instr.imm & 31
            def h(): regs[rd] = regs[ra] >> shift
        elif m == "bsra":
            def h(): regs[rd] = (to_signed(regs[ra]) >> (regs[rb] & 31)) & M
        elif m == "bsrai":
            shift = instr.imm & 31
            def h(): regs[rd] = (to_signed(regs[ra]) >> shift) & M
        else:
            from .cpu import IllegalInstruction
            raise IllegalInstruction(f"unhandled data instruction {m}")
        return h, cycles

    # --------------------------------------------------------------- memories
    def _compile_load(self, instr: Instruction, pending_imm: Optional[int],
                      slot_mode: bool):
        cpu = self.cpu
        regs = cpu.registers
        cnt = cpu._counters
        bram = cpu.data_bram
        opb = cpu.opb
        timings = cpu.config.timings
        width = _LOAD_WIDTHS[instr.mnemonic]
        base_cycles = timings.load
        opb_extra = timings.opb_access_extra
        rd, ra, rb = instr.rd, instr.ra, instr.rb
        type_a = instr.spec.fmt.value == "A"
        imm = self._effective_imm(instr, pending_imm)
        M = WORD_MASK
        ci_cycles = CNT_CLASS_CYCLES + CLASS_INDEX[InstrClass.LOAD]
        ci_count = CNT_CLASS_COUNT + CLASS_INDEX[InstrClass.LOAD]

        if type_a:
            def address() -> int:
                return (regs[ra] + regs[rb]) & M
        else:
            def address() -> int:
                return (regs[ra] + imm) & M

        if not slot_mode:
            def h() -> None:
                a = address()
                if opb is not None and a >= OPB_BASE_ADDRESS and opb.owns(a):
                    value = opb.read(a)
                    cnt[CNT_CYCLES] += opb_extra
                    cnt[ci_cycles] += opb_extra
                    cnt[CNT_OPB_READS] += 1
                else:
                    value = bram.load(a, width)
                if rd:
                    regs[rd] = value & M
            return h, base_cycles

        def slot() -> int:
            a = address()
            cycles = base_cycles
            if opb is not None and a >= OPB_BASE_ADDRESS and opb.owns(a):
                value = opb.read(a)
                cycles += opb_extra
                cnt[CNT_OPB_READS] += 1
            else:
                value = bram.load(a, width)
            if rd:
                regs[rd] = value & M
            cnt[CNT_CYCLES] += cycles
            cnt[CNT_INSTRUCTIONS] += 1
            cnt[CNT_LOADS] += 1
            cnt[ci_count] += 1
            cnt[ci_cycles] += cycles
            return cycles
        return slot, base_cycles

    def _compile_store(self, instr: Instruction, pending_imm: Optional[int],
                       slot_mode: bool):
        cpu = self.cpu
        regs = cpu.registers
        cnt = cpu._counters
        bram = cpu.data_bram
        opb = cpu.opb
        timings = cpu.config.timings
        width = _STORE_WIDTHS[instr.mnemonic]
        base_cycles = timings.store
        opb_extra = timings.opb_access_extra
        rd, ra, rb = instr.rd, instr.ra, instr.rb
        type_a = instr.spec.fmt.value == "A"
        imm = self._effective_imm(instr, pending_imm)
        M = WORD_MASK
        ci_cycles = CNT_CLASS_CYCLES + CLASS_INDEX[InstrClass.STORE]
        ci_count = CNT_CLASS_COUNT + CLASS_INDEX[InstrClass.STORE]

        if type_a:
            def address() -> int:
                return (regs[ra] + regs[rb]) & M
        else:
            def address() -> int:
                return (regs[ra] + imm) & M

        if not slot_mode:
            def h() -> None:
                a = address()
                if opb is not None and a >= OPB_BASE_ADDRESS and opb.owns(a):
                    opb.write(a, regs[rd])
                    cnt[CNT_CYCLES] += opb_extra
                    cnt[ci_cycles] += opb_extra
                    cnt[CNT_OPB_WRITES] += 1
                else:
                    bram.store(a, regs[rd], width)
            return h, base_cycles

        def slot() -> int:
            a = address()
            cycles = base_cycles
            if opb is not None and a >= OPB_BASE_ADDRESS and opb.owns(a):
                opb.write(a, regs[rd])
                cycles += opb_extra
                cnt[CNT_OPB_WRITES] += 1
            else:
                bram.store(a, regs[rd], width)
            cnt[CNT_CYCLES] += cycles
            cnt[CNT_INSTRUCTIONS] += 1
            cnt[CNT_STORES] += 1
            cnt[ci_count] += 1
            cnt[ci_cycles] += cycles
            return cycles
        return slot, base_cycles

    # -------------------------------------------------------------- terminators
    def _compile_terminator(self, pc: int, instr: Instruction,
                            pending_imm: Optional[int]):
        """Compile the branch ending a block (plus its delay slot, if any).

        Returns ``(terminator, extra_instructions, end_address)``.
        """
        cpu = self.cpu
        klass = instr.klass
        end = pc
        slot_handler = None
        extra = 0
        if instr.has_delay_slot:
            end = pc + 4
            try:
                slot_instr = cpu.fetch(pc + 4)
            except (EncodingError, MemoryError_):
                # The interpreter faults while fetching the slot during the
                # branch's execution; reproduce via the slot raiser (the
                # refetch raises the same exception inside it).
                return self._raiser_refetch_slot(pc), 0, end
            if slot_instr.is_branch or slot_instr.klass is InstrClass.IMM_PREFIX:
                return self._raiser_delay_slot(pc), 0, end
            unit = slot_instr.requires
            if unit is not None and not cpu.config.has_unit(unit):
                return self._raiser_slot_unit(pc, slot_instr), 0, end
            # The interpreter clears the imm latch only after the whole
            # branch (including its delay slot) has executed, so a pending
            # imm prefix fuses into the slot's immediate as well as the
            # branch's offset.
            slot_handler, _ = self._compile_straightline(slot_instr,
                                                         pending_imm,
                                                         slot_mode=True)
            if self.precise:
                slot_handler = self._precise_slot(slot_handler, pc + 4)
            extra = 1

        if klass is InstrClass.BRANCH_COND:
            term = self._compile_cond_branch(pc, instr, pending_imm,
                                             slot_handler)
        else:
            term = self._compile_uncond_branch(pc, instr, pending_imm,
                                               slot_handler)
        return term, extra, end

    def _raiser_refetch_slot(self, branch_pc: int) -> Callable[[], int]:
        cpu = self.cpu

        def term() -> int:
            cpu.fetch(branch_pc + 4)  # raises EncodingError
            raise AssertionError("unreachable: slot refetch did not raise")

        return term

    def _raiser_slot_unit(self, branch_pc: int,
                          slot_instr: Instruction) -> Callable[[], int]:
        """Delay slot needs an absent unit: the interpreter charges the
        branch, executes the slot via ``_execute`` and faults in its unit
        check; statistics for neither are recorded because the branch's
        ``stats.record`` happens after the slot runs.  Reproduce by
        deferring to the interpreter's own delay-slot execution."""
        cpu = self.cpu

        def term() -> int:
            cpu._execute_delay_slot(branch_pc)  # raises IllegalInstruction
            raise AssertionError("unreachable: slot unit check did not raise")

        return term

    def _compile_cond_branch(self, pc: int, instr: Instruction,
                             pending_imm: Optional[int], slot_handler):
        cpu = self.cpu
        regs = cpu.registers
        cnt = cpu._counters
        timings = cpu.config.timings
        taken_cycles = timings.branch_taken
        not_taken_cycles = timings.branch_not_taken
        ra = instr.ra
        rb = instr.rb
        type_a = instr.spec.fmt.value == "A"
        M = WORD_MASK
        ci_count = CNT_CLASS_COUNT + CLASS_INDEX[InstrClass.BRANCH_COND]
        ci_cycles = CNT_CLASS_CYCLES + CLASS_INDEX[InstrClass.BRANCH_COND]
        has_slot = slot_handler is not None
        fallthrough = pc + 8 if has_slot else pc + 4

        name = instr.spec.condition.name
        # Conditions test the signed value of ra; on the raw 32-bit pattern
        # "negative" is simply >= 2**31.
        SIGN = 0x8000_0000
        if name == "EQ":
            def taken_fn(): return regs[ra] == 0
        elif name == "NE":
            def taken_fn(): return regs[ra] != 0
        elif name == "LT":
            def taken_fn(): return regs[ra] >= SIGN
        elif name == "LE":
            def taken_fn():
                v = regs[ra]
                return v >= SIGN or v == 0
        elif name == "GT":
            def taken_fn(): return 0 < regs[ra] < SIGN
        else:  # GE
            def taken_fn(): return regs[ra] < SIGN

        if type_a:
            def target_fn() -> int:
                return (pc + to_signed(regs[rb])) & M
            static_target = None
        else:
            offset = self._effective_imm(instr, pending_imm)
            static_target = (pc + to_signed(offset)) & M
            def target_fn() -> int:
                return static_target

        def term() -> int:
            taken = taken_fn()
            if taken:
                target = target_fn()
                cycles = taken_cycles
                next_pc = target
            else:
                target = None
                cycles = not_taken_cycles
                next_pc = fallthrough
            # The slot executes before any of the branch's own statistics
            # are recorded (interpreter order — a faulting slot must leave
            # the branch unrecorded).
            if has_slot:
                cycles += slot_handler()
            if taken:
                cnt[CNT_BRANCHES_TAKEN] += 1
            else:
                cnt[CNT_BRANCHES_NOT_TAKEN] += 1
            cnt[CNT_CYCLES] += cycles
            cnt[CNT_INSTRUCTIONS] += 1
            cnt[ci_count] += 1
            cnt[ci_cycles] += cycles
            hooks = cpu._branch_hooks
            if hooks:
                for hook in hooks:
                    hook.on_branch(pc, target, taken)
            return next_pc

        return term

    def _compile_uncond_branch(self, pc: int, instr: Instruction,
                               pending_imm: Optional[int], slot_handler):
        """BRANCH_UNCOND, CALL and RETURN terminators (always taken)."""
        cpu = self.cpu
        regs = cpu.registers
        cnt = cpu._counters
        timings = cpu.config.timings
        klass = instr.klass
        M = WORD_MASK
        ci_count = CNT_CLASS_COUNT + CLASS_INDEX[klass]
        ci_cycles = CNT_CLASS_CYCLES + CLASS_INDEX[klass]
        has_slot = slot_handler is not None
        is_uncond = klass is InstrClass.BRANCH_UNCOND
        is_call = klass is InstrClass.CALL
        rd = instr.rd
        ra = instr.ra
        rb = instr.rb
        imm = self._effective_imm(instr, pending_imm)

        if klass is InstrClass.RETURN:
            base_cycles = timings.ret

            def target_fn() -> int:
                return (regs[ra] + imm) & M
        else:
            base_cycles = timings.call if is_call else timings.branch_taken
            absolute = instr.mnemonic in _ABSOLUTE_BRANCHES
            if instr.spec.fmt.value == "A":
                if absolute:
                    def target_fn() -> int:
                        return regs[rb] & M
                else:
                    def target_fn() -> int:
                        return (pc + to_signed(regs[rb])) & M
            else:
                static = imm & M if absolute else (pc + to_signed(imm)) & M

                def target_fn() -> int:
                    return static

        def term() -> int:
            target = target_fn()
            cycles = base_cycles
            if is_call and rd:
                regs[rd] = pc & M
            halts = is_uncond and target == pc
            if halts:
                cpu.halted = True
            if has_slot and not halts:
                cycles += slot_handler()
            cnt[CNT_CYCLES] += cycles
            cnt[CNT_INSTRUCTIONS] += 1
            cnt[ci_count] += 1
            cnt[ci_cycles] += cycles
            cnt[CNT_BRANCHES_TAKEN] += 1
            hooks = cpu._branch_hooks
            if hooks:
                for hook in hooks:
                    hook.on_branch(pc, target, True)
            return target

        return term
