"""Symbolic execution of a critical region's binary code.

Given the address range of the loop the profiler selected, this module
re-executes the loop body *symbolically*, producing for one generic
iteration:

* the new value of every register the body writes, as an expression over
  the registers live at loop entry (:class:`~repro.decompile.expr.LiveIn`),
  constants, and memory reads;
* the memory stores the body performs (with guards for stores inside an
  ``if``);
* the loop-continuation condition evaluated by the backward branch.

Simple forward conditional branches inside the body (an ``if`` without an
``else``) are if-converted into :class:`~repro.decompile.expr.Mux` nodes.
Anything the on-chip tools could not handle — subroutine calls, indirect
branches, branches that leave the region — raises
:class:`DecompilationError`, which the dynamic partitioning module treats
as "leave this kernel in software".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa.encoding import decode
from ..isa.instructions import Instruction, InstrClass
from ..profiler.profiler import CriticalRegion
from .expr import (
    Condition,
    ExpressionBuilder,
    Load,
    Node,
    OpKind,
    StoreOp,
)


class DecompilationError(Exception):
    """Raised when the selected region cannot be decompiled to hardware."""


_NEGATED_RELATION = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                     "gt": "le", "le": "gt"}

_LOAD_WIDTHS = {"lw": 4, "lwi": 4, "lhu": 2, "lhui": 2, "lbu": 1, "lbui": 1}
_STORE_WIDTHS = {"sw": 4, "swi": 4, "sh": 2, "shi": 2, "sb": 1, "sbi": 1}


@dataclass
class SymbolicLoopBody:
    """The dataflow view of one loop iteration."""

    builder: ExpressionBuilder
    region: CriticalRegion
    register_updates: Dict[int, Node] = field(default_factory=dict)
    stores: List[StoreOp] = field(default_factory=list)
    loads: List[Load] = field(default_factory=list)
    continue_condition: Optional[Node] = None
    live_in_registers: Set[int] = field(default_factory=set)
    written_registers: Set[int] = field(default_factory=set)
    num_instructions: int = 0

    def roots(self) -> List[Node]:
        """All expression roots of the iteration (for DAG walks)."""
        roots: List[Node] = list(self.register_updates.values())
        for store in self.stores:
            roots.extend([store.address, store.value])
            if store.guard is not None:
                roots.append(store.guard)
        if self.continue_condition is not None:
            roots.append(self.continue_condition)
        return roots


class SymbolicExecutor:
    """Symbolically executes the instructions of one critical region."""

    def __init__(self, text_words: Sequence[int], region: CriticalRegion,
                 base_address: int = 0):
        self.region = region
        self.builder = ExpressionBuilder()
        self.instructions: List[Instruction] = []
        for address in range(region.start_address, region.end_address + 4, 4):
            index = (address - base_address) // 4
            if index < 0 or index >= len(text_words):
                raise DecompilationError(
                    f"region address {address:#x} outside the program text"
                )
            self.instructions.append(decode(text_words[index], address=address))
        self._state: Dict[int, Node] = {}
        self._live_in: Set[int] = set()
        self._written: Set[int] = set()
        self._stores: List[StoreOp] = []
        self._loads: List[Load] = []
        self._sequence = 0
        self._imm_latch: Optional[int] = None

    # ------------------------------------------------------------------ state
    def _read_reg(self, register: int, state: Dict[int, Node]) -> Node:
        if register == 0:
            return self.builder.const(0)
        if register not in state:
            if register not in self._written:
                self._live_in.add(register)
            state[register] = self.builder.live_in(register)
        return state[register]

    def _write_reg(self, register: int, value: Node, state: Dict[int, Node]) -> None:
        if register == 0:
            return
        state[register] = value
        self._written.add(register)

    def _effective_imm(self, instr: Instruction) -> int:
        if self._imm_latch is None:
            return instr.imm
        value = ((self._imm_latch << 16) | (instr.imm & 0xFFFF)) & 0xFFFFFFFF
        return value - 0x1_0000_0000 if value >= 0x8000_0000 else value

    # ------------------------------------------------------------------ driver
    def run(self) -> SymbolicLoopBody:
        if not self.instructions:
            raise DecompilationError("empty region")
        final = self.instructions[-1]
        if final.klass is not InstrClass.BRANCH_COND or final.imm >= 0:
            raise DecompilationError(
                "region does not end in a backward conditional branch"
            )
        continue_condition = self._execute_block(self._state, 0, len(self.instructions) - 1)
        # The final backward branch provides the loop-continue condition.
        tested = self._read_reg(final.ra, self._state)
        relation = final.spec.condition.name.lower()
        condition = self.builder.condition(tested, relation)
        if continue_condition is not None:
            raise DecompilationError("unexpected dangling condition")

        body = SymbolicLoopBody(
            builder=self.builder,
            region=self.region,
            register_updates=dict(self._state),
            stores=list(self._stores),
            loads=list(self._loads),
            continue_condition=condition,
            live_in_registers=set(self._live_in),
            written_registers=set(self._written),
            num_instructions=len(self.instructions),
        )
        # Registers that were only read keep their live-in value and need no
        # update entry.
        for register in list(body.register_updates):
            node = body.register_updates[register]
            if node.__class__.__name__ == "LiveIn" and node.register == register:
                del body.register_updates[register]
        return body

    # ----------------------------------------------------------------- blocks
    def _execute_block(self, state: Dict[int, Node], start: int, end: int,
                       guard: Optional[Node] = None) -> Optional[Node]:
        """Execute instructions [start, end) updating ``state`` in place."""
        index = start
        while index < end:
            instr = self.instructions[index]
            klass = instr.klass

            if klass is InstrClass.BRANCH_COND:
                index = self._forward_branch(instr, index, end, state, guard)
                continue
            if instr.is_branch:
                raise DecompilationError(
                    f"unsupported branch {instr.mnemonic} inside the region at "
                    f"{instr.address:#x}"
                )
            self._execute_straightline(instr, state, guard)
            index += 1
        return None

    def _forward_branch(self, instr: Instruction, index: int, end: int,
                        state: Dict[int, Node], guard: Optional[Node]) -> int:
        """Handle an if-then pattern: a forward conditional branch that skips
        a block of straight-line code within the region."""
        if guard is not None:
            raise DecompilationError("nested conditionals are not supported")
        if instr.spec.fmt.value != "B" or instr.imm <= 0:
            raise DecompilationError(
                f"unsupported conditional branch at {instr.address:#x}"
            )
        target_address = instr.address + instr.imm
        target_index = (target_address - self.region.start_address) // 4
        if not index < target_index <= end:
            raise DecompilationError(
                f"conditional branch at {instr.address:#x} leaves the region"
            )
        tested = self._read_reg(instr.ra, state)
        relation = instr.spec.condition.name.lower()
        skip_condition = self.builder.condition(tested, relation)
        execute_condition = self.builder.condition(
            tested, _NEGATED_RELATION[relation]
        )
        # Execute the then-block on a copy of the state, guarded.
        then_state = dict(state)
        self._execute_block(then_state, index + 1, target_index,
                            guard=execute_condition)
        # Merge: a register keeps its old value when the branch (skip) is
        # taken and receives the then-block value otherwise.
        for register, then_value in then_state.items():
            old_value = state.get(register)
            if old_value is None:
                old_value = self._read_reg(register, state)
            if then_value is not old_value:
                merged = self.builder.mux(skip_condition, old_value, then_value)
                self._write_reg(register, merged, state)
        return target_index

    # ------------------------------------------------------------ instructions
    def _execute_straightline(self, instr: Instruction, state: Dict[int, Node],
                              guard: Optional[Node]) -> None:
        mnemonic = instr.mnemonic
        klass = instr.klass
        builder = self.builder

        if klass is InstrClass.IMM_PREFIX:
            self._imm_latch = instr.imm & 0xFFFF
            return
        imm = self._effective_imm(instr)
        self._imm_latch = None

        if klass is InstrClass.LOAD:
            base = self._read_reg(instr.ra, state)
            offset = self._read_reg(instr.rb, state) if instr.spec.fmt.value == "A" \
                else builder.const(imm)
            address = builder.binary(OpKind.ADD, base, offset)
            load = builder.load(address, _LOAD_WIDTHS[mnemonic], self._sequence)
            self._sequence += 1
            self._loads.append(load)
            self._write_reg(instr.rd, load, state)
            return
        if klass is InstrClass.STORE:
            base = self._read_reg(instr.ra, state)
            offset = self._read_reg(instr.rb, state) if instr.spec.fmt.value == "A" \
                else builder.const(imm)
            address = builder.binary(OpKind.ADD, base, offset)
            value = self._read_reg(instr.rd, state)
            self._stores.append(StoreOp(address=address, value=value,
                                        width=_STORE_WIDTHS[mnemonic], guard=guard,
                                        sequence=self._sequence))
            self._sequence += 1
            return
        if instr.is_branch:  # pragma: no cover - handled by caller
            raise DecompilationError("branch reached straight-line executor")

        result = self._data_expression(instr, imm, state)
        self._write_reg(instr.rd, result, state)

    def _data_expression(self, instr: Instruction, imm: int,
                         state: Dict[int, Node]) -> Node:
        builder = self.builder
        mnemonic = instr.mnemonic
        ra = self._read_reg(instr.ra, state)
        rb = self._read_reg(instr.rb, state)
        imm_node = builder.const(imm)

        if mnemonic in ("add", "addk"):
            return builder.binary(OpKind.ADD, ra, rb)
        if mnemonic in ("addi", "addik"):
            return builder.binary(OpKind.ADD, ra, imm_node)
        if mnemonic in ("rsub", "rsubk"):
            return builder.binary(OpKind.SUB, rb, ra)
        if mnemonic in ("rsubi", "rsubik"):
            return builder.binary(OpKind.SUB, imm_node, ra)
        if mnemonic == "mul":
            return builder.binary(OpKind.MUL, ra, rb)
        if mnemonic == "muli":
            return builder.binary(OpKind.MUL, ra, imm_node)
        if mnemonic == "and":
            return builder.binary(OpKind.AND, ra, rb)
        if mnemonic == "andi":
            return builder.binary(OpKind.AND, ra, imm_node)
        if mnemonic == "or":
            return builder.binary(OpKind.OR, ra, rb)
        if mnemonic == "ori":
            return builder.binary(OpKind.OR, ra, imm_node)
        if mnemonic == "xor":
            return builder.binary(OpKind.XOR, ra, rb)
        if mnemonic == "xori":
            return builder.binary(OpKind.XOR, ra, imm_node)
        if mnemonic == "andn":
            return builder.binary(OpKind.ANDN, ra, rb)
        if mnemonic == "andni":
            return builder.binary(OpKind.ANDN, ra, imm_node)
        if mnemonic == "sra":
            return builder.binary(OpKind.SHR_ARITH, ra, builder.const(1))
        if mnemonic in ("srl", "src"):
            return builder.binary(OpKind.SHR_LOGICAL, ra, builder.const(1))
        if mnemonic == "sext8":
            return builder.unary(OpKind.SEXT8, ra)
        if mnemonic == "sext16":
            return builder.unary(OpKind.SEXT16, ra)
        if mnemonic == "bsll":
            return builder.binary(OpKind.SHL, ra, rb)
        if mnemonic == "bslli":
            return builder.binary(OpKind.SHL, ra, builder.const(instr.imm & 31))
        if mnemonic == "bsrl":
            return builder.binary(OpKind.SHR_LOGICAL, ra, rb)
        if mnemonic == "bsrli":
            return builder.binary(OpKind.SHR_LOGICAL, ra, builder.const(instr.imm & 31))
        if mnemonic == "bsra":
            return builder.binary(OpKind.SHR_ARITH, ra, rb)
        if mnemonic == "bsrai":
            return builder.binary(OpKind.SHR_ARITH, ra, builder.const(instr.imm & 31))
        if mnemonic == "cmp":
            return builder.binary(OpKind.CMP_SIGN, ra, rb)
        if mnemonic == "cmpu":
            return builder.binary(OpKind.CMP_SIGN_U, ra, rb)
        raise DecompilationError(
            f"instruction {mnemonic} at {instr.address:#x} cannot be mapped to hardware"
        )


def decompile_region(text_words: Sequence[int], region: CriticalRegion,
                     base_address: int = 0) -> SymbolicLoopBody:
    """Decompile ``region`` of a program into its symbolic loop body."""
    return SymbolicExecutor(text_words, region, base_address=base_address).run()
