"""Hardware-kernel extraction: induction variables, access patterns, CDFG.

After symbolic execution has produced the dataflow view of one loop
iteration, this module recovers the information the WCLA needs:

* **induction variables** — registers whose per-iteration update is
  ``r = r + constant`` (the loop counter the loop-control hardware tracks);
* **memory access patterns** — for every load and store, an affine
  decomposition of the address over the live-in registers.  Accesses that
  are affine in the induction variable(s) (constant stride) can be handled
  by the data address generator; anything else makes the kernel ineligible
  for partitioning, mirroring the paper's "regular access patterns"
  restriction;
* **operation statistics** used by synthesis to size the datapath.

The result is a :class:`HardwareKernel`, the hand-off object between the
decompiler and the synthesis/technology-mapping flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..profiler.profiler import CriticalRegion
from .expr import (
    BinExpr,
    Condition,
    Const,
    LiveIn,
    Load,
    Mux,
    Node,
    OpKind,
    StoreOp,
    UnExpr,
    walk,
)
from .symexec import DecompilationError, SymbolicLoopBody


# --------------------------------------------------------------------------- affine forms
@dataclass
class AffineForm:
    """``constant + sum(coefficient[r] * LiveIn(r))`` over live-in registers."""

    constant: int = 0
    coefficients: Dict[int, int] = field(default_factory=dict)

    def add(self, other: "AffineForm", scale: int = 1) -> "AffineForm":
        result = AffineForm(constant=self.constant + scale * other.constant,
                            coefficients=dict(self.coefficients))
        for register, coefficient in other.coefficients.items():
            result.coefficients[register] = result.coefficients.get(register, 0) \
                + scale * coefficient
        result.coefficients = {r: c for r, c in result.coefficients.items() if c != 0}
        return result

    def scaled(self, factor: int) -> "AffineForm":
        return AffineForm(constant=self.constant * factor,
                          coefficients={r: c * factor for r, c in self.coefficients.items()})

    @property
    def is_constant(self) -> bool:
        return not self.coefficients


def affine_decompose(node: Node) -> Optional[AffineForm]:
    """Decompose ``node`` into an affine form, or ``None`` if it is not affine."""
    if isinstance(node, Const):
        value = node.value
        if value >= 0x8000_0000:
            value -= 0x1_0000_0000
        return AffineForm(constant=value)
    if isinstance(node, LiveIn):
        return AffineForm(coefficients={node.register: 1})
    if isinstance(node, BinExpr):
        left = affine_decompose(node.left)
        right = affine_decompose(node.right)
        if node.op is OpKind.ADD and left and right:
            return left.add(right)
        if node.op is OpKind.SUB and left and right:
            return left.add(right, scale=-1)
        if node.op is OpKind.MUL and left and right:
            if right.is_constant:
                return left.scaled(right.constant)
            if left.is_constant:
                return right.scaled(left.constant)
        if node.op is OpKind.SHL and left and right and right.is_constant \
                and 0 <= right.constant < 32:
            return left.scaled(1 << right.constant)
        return None
    return None


# --------------------------------------------------------------------------- descriptors
@dataclass
class InductionVariable:
    """A register updated as ``r = r + step`` each iteration."""

    register: int
    step: int

    def __str__(self) -> str:
        sign = "+" if self.step >= 0 else "-"
        return f"r{self.register} {sign}= {abs(self.step)}"


@dataclass
class MemoryAccessPattern:
    """One load or store with its affine address description."""

    is_store: bool
    width: int
    affine: Optional[AffineForm]
    stride_per_iteration: Optional[int]
    guarded: bool = False

    @property
    def is_regular(self) -> bool:
        """Whether the data address generator can produce this access."""
        return self.affine is not None and self.stride_per_iteration is not None


@dataclass
class OperationCounts:
    """Word-level operation counts of one iteration's dataflow graph."""

    add_sub: int = 0
    multiply: int = 0
    logic: int = 0
    shift_constant: int = 0
    shift_variable: int = 0
    compare: int = 0
    mux: int = 0
    sign_extend: int = 0
    loads: int = 0
    stores: int = 0

    @property
    def total(self) -> int:
        return (self.add_sub + self.multiply + self.logic + self.shift_constant
                + self.shift_variable + self.compare + self.mux + self.sign_extend
                + self.loads + self.stores)


@dataclass
class HardwareKernel:
    """Everything the synthesis flow needs about one critical region."""

    region: CriticalRegion
    body: SymbolicLoopBody
    induction_variables: List[InductionVariable]
    memory_accesses: List[MemoryAccessPattern]
    operations: OperationCounts
    live_in_registers: Tuple[int, ...]
    live_out_registers: Tuple[int, ...]
    partitionable: bool = True
    rejection_reason: Optional[str] = None

    @property
    def loads_per_iteration(self) -> int:
        return self.operations.loads

    @property
    def stores_per_iteration(self) -> int:
        return self.operations.stores

    @property
    def memory_accesses_per_iteration(self) -> int:
        return self.operations.loads + self.operations.stores

    def summary(self) -> str:
        lines = [
            f"kernel at {self.region}",
            f"  live-in registers : {sorted(self.live_in_registers)}",
            f"  live-out registers: {sorted(self.live_out_registers)}",
            f"  induction         : {', '.join(str(v) for v in self.induction_variables) or 'none'}",
            f"  memory accesses   : {self.operations.loads} loads, "
            f"{self.operations.stores} stores per iteration",
            f"  operations        : {self.operations.add_sub} add/sub, "
            f"{self.operations.multiply} mul, {self.operations.logic} logic, "
            f"{self.operations.shift_constant} const-shift, {self.operations.mux} mux",
        ]
        if not self.partitionable:
            lines.append(f"  NOT partitionable: {self.rejection_reason}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- extraction
def find_induction_variables(body: SymbolicLoopBody) -> List[InductionVariable]:
    """Registers whose update is ``LiveIn(reg) + constant``."""
    result: List[InductionVariable] = []
    for register, update in body.register_updates.items():
        if isinstance(update, BinExpr) and update.op in (OpKind.ADD, OpKind.SUB):
            left, right = update.left, update.right
            step: Optional[int] = None
            if isinstance(left, LiveIn) and left.register == register \
                    and isinstance(right, Const):
                step = right.value if update.op is OpKind.ADD else -right.value
            elif isinstance(right, LiveIn) and right.register == register \
                    and isinstance(left, Const) and update.op is OpKind.ADD:
                step = left.value
            if step is not None:
                if step >= 0x8000_0000:
                    step -= 0x1_0000_0000
                result.append(InductionVariable(register=register, step=step))
    return result


def classify_memory_accesses(body: SymbolicLoopBody,
                             induction: List[InductionVariable]) -> List[MemoryAccessPattern]:
    """Affine-classify every load and store of the loop body."""
    steps = {variable.register: variable.step for variable in induction}
    accesses: List[MemoryAccessPattern] = []

    def classify(address: Node, is_store: bool, width: int, guarded: bool) -> None:
        affine = affine_decompose(address)
        stride: Optional[int] = None
        if affine is not None:
            stride = 0
            for register, coefficient in affine.coefficients.items():
                if register in steps:
                    stride += coefficient * steps[register]
                # Coefficients on non-induction live-ins are loop invariant
                # and only contribute to the base address.
        accesses.append(MemoryAccessPattern(is_store=is_store, width=width,
                                            affine=affine,
                                            stride_per_iteration=stride,
                                            guarded=guarded))

    for load in body.loads:
        classify(load.address, is_store=False, width=load.width, guarded=False)
    for store in body.stores:
        classify(store.address, is_store=True, width=store.width,
                 guarded=store.guard is not None)
    return accesses


def count_operations(body: SymbolicLoopBody) -> OperationCounts:
    """Count distinct word-level operations across the iteration's DAG."""
    counts = OperationCounts()
    seen = set()
    for root in body.roots():
        for node in walk(root):
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            if isinstance(node, BinExpr):
                if node.op in (OpKind.ADD, OpKind.SUB):
                    counts.add_sub += 1
                elif node.op is OpKind.MUL:
                    counts.multiply += 1
                elif node.op in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.ANDN):
                    counts.logic += 1
                elif node.op in (OpKind.SHL, OpKind.SHR_ARITH, OpKind.SHR_LOGICAL):
                    if isinstance(node.right, Const):
                        counts.shift_constant += 1
                    else:
                        counts.shift_variable += 1
                elif node.op in (OpKind.CMP_SIGN, OpKind.CMP_SIGN_U):
                    counts.compare += 1
            elif isinstance(node, UnExpr):
                if node.op in (OpKind.SEXT8, OpKind.SEXT16):
                    counts.sign_extend += 1
                else:
                    counts.add_sub += 1
            elif isinstance(node, Mux):
                counts.mux += 1
            elif isinstance(node, Condition):
                counts.compare += 1
            elif isinstance(node, Load):
                counts.loads += 1
    counts.stores = len(body.stores)
    return counts


def extract_kernel(body: SymbolicLoopBody) -> HardwareKernel:
    """Build the :class:`HardwareKernel` descriptor for a decompiled region."""
    induction = find_induction_variables(body)
    accesses = classify_memory_accesses(body, induction)
    operations = count_operations(body)

    partitionable = True
    reason: Optional[str] = None
    if not induction:
        partitionable = False
        reason = "no induction variable found for the loop-control hardware"
    elif any(not access.is_regular for access in accesses):
        partitionable = False
        reason = "memory access pattern is not affine (DADG cannot generate it)"

    return HardwareKernel(
        region=body.region,
        body=body,
        induction_variables=induction,
        memory_accesses=accesses,
        operations=operations,
        live_in_registers=tuple(sorted(body.live_in_registers)),
        live_out_registers=tuple(sorted(body.written_registers)),
        partitionable=partitionable,
        rejection_reason=reason,
    )


def decompile_and_extract(text_words, region: CriticalRegion) -> HardwareKernel:
    """Convenience wrapper: symbolic execution followed by kernel extraction."""
    from .symexec import decompile_region

    body = decompile_region(text_words, region)
    return extract_kernel(body)
