"""Control-flow graph recovery from binaries.

Binary-level partitioning starts by rediscovering program structure that a
compiler front end would have had for free.  This module rebuilds basic
blocks and the control-flow graph of a program (or of an address range)
directly from the machine words in the instruction BRAM, which is also how
the tests validate that the critical regions chosen by the profiler are
well-formed natural loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa.encoding import decode
from ..isa.instructions import Instruction, InstrClass


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    start_address: int
    instructions: List[Instruction] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    @property
    def end_address(self) -> int:
        return self.start_address + 4 * (len(self.instructions) - 1)

    @property
    def terminator(self) -> Optional[Instruction]:
        return self.instructions[-1] if self.instructions else None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BasicBlock({self.start_address:#x}..{self.end_address:#x})"


def branch_targets(instr: Instruction, address: int) -> Tuple[Optional[int], Optional[int]]:
    """Return ``(taken_target, fallthrough_target)`` byte addresses.

    Register-indirect branches return ``None`` for the taken target because
    the destination is unknown statically.  ``rtsd`` (return) has no static
    successor either.
    """
    klass = instr.klass
    fallthrough: Optional[int] = address + 4
    if not instr.is_branch:
        return None, fallthrough
    if klass is InstrClass.RETURN:
        return None, None
    if instr.spec.fmt.value == "A":
        taken = None  # register-indirect
    elif instr.mnemonic in ("brai", "bralid"):
        taken = instr.imm
    else:
        taken = address + instr.imm
    if klass is InstrClass.BRANCH_UNCOND:
        return taken, None
    if klass is InstrClass.CALL:
        # Calls return, so the fall-through path continues after the delay slot.
        return taken, address + 8 if instr.has_delay_slot else address + 4
    return taken, fallthrough


class ControlFlowGraph:
    """CFG of one program image (or address window within it)."""

    def __init__(self, words: Sequence[int], base_address: int = 0,
                 start: Optional[int] = None, end: Optional[int] = None):
        self.base_address = base_address
        self.start = start if start is not None else base_address
        self.end = end if end is not None else base_address + 4 * len(words) - 4
        self.instructions: Dict[int, Instruction] = {}
        for index, word in enumerate(words):
            address = base_address + 4 * index
            if self.start <= address <= self.end:
                self.instructions[address] = decode(word, address=address)
        self.blocks: Dict[int, BasicBlock] = {}
        self._build()

    # -------------------------------------------------------------------- build
    def _leaders(self) -> Set[int]:
        leaders: Set[int] = {self.start}
        for address, instr in self.instructions.items():
            if not instr.is_branch:
                continue
            taken, fallthrough = branch_targets(instr, address)
            if taken is not None and self.start <= taken <= self.end:
                leaders.add(taken)
            after = address + (8 if instr.has_delay_slot else 4)
            if after <= self.end:
                leaders.add(after)
        return leaders

    def _build(self) -> None:
        leaders = sorted(self._leaders())
        for index, leader in enumerate(leaders):
            block = BasicBlock(start_address=leader)
            address = leader
            limit = leaders[index + 1] if index + 1 < len(leaders) else self.end + 4
            while address < limit and address in self.instructions:
                instr = self.instructions[address]
                block.instructions.append(instr)
                if instr.is_branch:
                    if instr.has_delay_slot and address + 4 in self.instructions \
                            and address + 4 < limit:
                        block.instructions.append(self.instructions[address + 4])
                    address += 8 if instr.has_delay_slot else 4
                    break
                address += 4
            if block.instructions:
                self.blocks[leader] = block
        self._link()

    def _link(self) -> None:
        for leader, block in self.blocks.items():
            terminator = None
            for instr in block.instructions:
                if instr.is_branch:
                    terminator = instr
            if terminator is None:
                next_address = block.end_address + 4
                if next_address in self.blocks:
                    block.successors.append(next_address)
            else:
                taken, fallthrough = branch_targets(terminator, terminator.address)
                for target in (taken, fallthrough):
                    if target is not None and target in self.blocks:
                        block.successors.append(target)
        for leader, block in self.blocks.items():
            for successor in block.successors:
                self.blocks[successor].predecessors.append(leader)

    # ------------------------------------------------------------------ queries
    def block_at(self, address: int) -> Optional[BasicBlock]:
        return self.blocks.get(address)

    def block_containing(self, address: int) -> Optional[BasicBlock]:
        for block in self.blocks.values():
            if block.start_address <= address <= block.end_address:
                return block
        return None

    def back_edges(self) -> List[Tuple[int, int]]:
        """``(source_block, target_block)`` pairs where target <= source."""
        edges = []
        for leader, block in self.blocks.items():
            for successor in block.successors:
                if successor <= leader:
                    edges.append((leader, successor))
        return edges

    def natural_loop(self, header: int, latch: int) -> Set[int]:
        """Blocks of the natural loop with the given header and latch block."""
        if header not in self.blocks or latch not in self.blocks:
            return set()
        loop = {header, latch}
        worklist = [latch]
        while worklist:
            current = worklist.pop()
            for predecessor in self.blocks[current].predecessors:
                if predecessor not in loop and current != header:
                    loop.add(predecessor)
                    worklist.append(predecessor)
        return loop

    def num_blocks(self) -> int:
        return len(self.blocks)
