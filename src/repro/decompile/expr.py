"""Symbolic dataflow expressions used by binary decompilation.

The dynamic partitioning module decompiles the selected critical region
into a control/data-flow graph.  The nodes defined here represent the data
side of that graph: values computed by one loop iteration expressed over
the registers live at loop entry (:class:`LiveIn`), constants recovered
from immediates, memory reads, and word-level operators.  Conditional
behaviour inside the loop body (an ``if`` inside the loop) is represented
by :class:`Mux` nodes, i.e. the decompiler if-converts simple forward
branches.

Expressions form a DAG: structurally identical nodes are shared through
:class:`ExpressionBuilder`, which is what makes the later hardware cost
estimation (one adder per distinct addition, wires for shared sub-terms)
faithful to what a synthesis tool would produce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

WORD_MASK = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


class OpKind(enum.Enum):
    """Word-level operator kinds of the dataflow graph."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    ANDN = "andn"
    SHL = "shl"
    SHR_LOGICAL = "shr_l"
    SHR_ARITH = "shr_a"
    SEXT8 = "sext8"
    SEXT16 = "sext16"
    NEG = "neg"
    NOT = "not"
    CMP_SIGN = "cmp_sign"    # sign(b - a) in {-1, 0, +1}
    CMP_SIGN_U = "cmp_sign_u"


#: Depth bound of the human-readable expression renderer.  Expressions form
#: a structurally *shared* DAG; naive recursive stringification expands every
#: shared sub-term at every use, which is exponential on the deep graphs
#: that e.g. software-shift lowering produces (a 32-iteration bit loop
#: symbolically unrolled).  Every ``__str__`` below therefore delegates to
#: the depth-limited :func:`format_node` — identical output for shallow
#: expressions, ``...`` placeholders past the bound.
STR_MAX_DEPTH = 8


def format_node(node: "Node", max_depth: int = STR_MAX_DEPTH) -> str:
    """Depth-bounded pretty printer for expression DAGs (always O(2^depth),
    never exponential in the graph's *unshared* size)."""
    if node is None:
        return "?"
    if isinstance(node, Const):
        return f"{_signed(node.value)}"
    if isinstance(node, LiveIn):
        return f"r{node.register}_in"
    if max_depth <= 0:
        return "..."
    inner = max_depth - 1
    if isinstance(node, BinExpr):
        return (f"({format_node(node.left, inner)} {node.op.value} "
                f"{format_node(node.right, inner)})")
    if isinstance(node, UnExpr):
        return f"({node.op.value} {format_node(node.operand, inner)})"
    if isinstance(node, Load):
        return f"mem{8 * node.width}[{format_node(node.address, inner)}]"
    if isinstance(node, Mux):
        return (f"({format_node(node.condition, inner)} ? "
                f"{format_node(node.if_true, inner)} : "
                f"{format_node(node.if_false, inner)})")
    if isinstance(node, Condition):
        return f"({format_node(node.value, inner)} {node.relation} 0)"
    return repr(node)


@dataclass(frozen=True)
class Node:
    """Base class of all DFG nodes; ``node_id`` is assigned by the builder."""

    node_id: int = field(compare=False, default=-1)


@dataclass(frozen=True)
class Const(Node):
    value: int = 0

    def __str__(self) -> str:
        return format_node(self)


@dataclass(frozen=True)
class LiveIn(Node):
    """The value of architectural register ``register`` at loop entry."""

    register: int = 0

    def __str__(self) -> str:
        return format_node(self)


@dataclass(frozen=True)
class BinExpr(Node):
    op: OpKind = OpKind.ADD
    left: "Node" = None
    right: "Node" = None

    def __str__(self) -> str:
        return format_node(self)


@dataclass(frozen=True)
class UnExpr(Node):
    op: OpKind = OpKind.NEG
    operand: "Node" = None

    def __str__(self) -> str:
        return format_node(self)


@dataclass(frozen=True)
class Load(Node):
    """A memory word/half/byte read at ``address`` (an expression)."""

    address: "Node" = None
    width: int = 4
    sequence: int = 0  # program order of the access within the iteration

    def __str__(self) -> str:
        return format_node(self)


@dataclass(frozen=True)
class Mux(Node):
    """``condition ? if_true : if_false`` produced by if-conversion."""

    condition: "Node" = None
    if_true: "Node" = None
    if_false: "Node" = None

    def __str__(self) -> str:
        return format_node(self)


@dataclass(frozen=True)
class Condition(Node):
    """A boolean node: ``value <relation> 0`` over a word expression."""

    value: "Node" = None
    relation: str = "ne"  # eq, ne, lt, le, gt, ge against zero

    def __str__(self) -> str:
        return format_node(self)


@dataclass
class StoreOp:
    """A memory write performed by one loop iteration.

    ``guard`` is ``None`` for unconditional stores, otherwise the store only
    happens when the guard condition evaluates true.
    """

    address: Node
    value: Node
    width: int = 4
    guard: Optional[Node] = None
    sequence: int = 0

    def __str__(self) -> str:
        text = f"mem{8 * self.width}[{self.address}] = {self.value}"
        if self.guard is not None:
            text = f"if {self.guard}: {text}"
        return text


class ExpressionBuilder:
    """Builds a structurally-hashed expression DAG."""

    def __init__(self) -> None:
        self._nodes: List[Node] = []
        self._cache: Dict[Tuple, Node] = {}

    # ------------------------------------------------------------------ basics
    def _intern(self, key: Tuple, factory) -> Node:
        node = self._cache.get(key)
        if node is None:
            node = factory(len(self._nodes))
            self._nodes.append(node)
            self._cache[key] = node
        return node

    def const(self, value: int) -> Const:
        value &= WORD_MASK
        return self._intern(("const", value), lambda i: Const(node_id=i, value=value))

    def live_in(self, register: int) -> LiveIn:
        return self._intern(("live", register), lambda i: LiveIn(node_id=i, register=register))

    def binary(self, op: OpKind, left: Node, right: Node) -> Node:
        folded = self._fold_binary(op, left, right)
        if folded is not None:
            return folded
        key = ("bin", op, left.node_id, right.node_id)
        return self._intern(key, lambda i: BinExpr(node_id=i, op=op, left=left, right=right))

    def unary(self, op: OpKind, operand: Node) -> Node:
        if isinstance(operand, Const):
            value = operand.value
            if op is OpKind.NEG:
                return self.const(-value)
            if op is OpKind.NOT:
                return self.const(~value)
            if op is OpKind.SEXT8:
                return self.const(_signed(value & 0xFF if value & 0x80 == 0 else value | ~0xFF))
            if op is OpKind.SEXT16:
                return self.const(_signed(value & 0xFFFF if value & 0x8000 == 0 else value | ~0xFFFF))
        key = ("un", op, operand.node_id)
        return self._intern(key, lambda i: UnExpr(node_id=i, op=op, operand=operand))

    def load(self, address: Node, width: int, sequence: int) -> Load:
        key = ("load", address.node_id, width, sequence)
        return self._intern(key, lambda i: Load(node_id=i, address=address, width=width,
                                                sequence=sequence))

    def mux(self, condition: Node, if_true: Node, if_false: Node) -> Node:
        if if_true is if_false:
            return if_true
        key = ("mux", condition.node_id, if_true.node_id, if_false.node_id)
        return self._intern(key, lambda i: Mux(node_id=i, condition=condition,
                                               if_true=if_true, if_false=if_false))

    def condition(self, value: Node, relation: str) -> Node:
        key = ("cond", value.node_id, relation)
        return self._intern(key, lambda i: Condition(node_id=i, value=value,
                                                     relation=relation))

    # -------------------------------------------------------------- simplifier
    def _fold_binary(self, op: OpKind, left: Node, right: Node) -> Optional[Node]:
        """Constant folding and identities applied while building the DAG."""
        if isinstance(left, Const) and isinstance(right, Const):
            a, b = left.value, right.value
            sa, sb = _signed(a), _signed(b)
            table = {
                OpKind.ADD: lambda: a + b,
                OpKind.SUB: lambda: a - b,
                OpKind.MUL: lambda: a * b,
                OpKind.AND: lambda: a & b,
                OpKind.OR: lambda: a | b,
                OpKind.XOR: lambda: a ^ b,
                OpKind.ANDN: lambda: a & ~b,
                OpKind.SHL: lambda: a << (b & 31),
                OpKind.SHR_LOGICAL: lambda: a >> (b & 31),
                OpKind.SHR_ARITH: lambda: sa >> (b & 31),
                OpKind.CMP_SIGN: lambda: (1 if sb > sa else 0 if sb == sa else -1),
                OpKind.CMP_SIGN_U: lambda: (1 if b > a else 0 if a == b else -1),
            }
            if op in table:
                return self.const(table[op]())
        if isinstance(right, Const) and right.value == 0:
            if op in (OpKind.ADD, OpKind.SUB, OpKind.OR, OpKind.XOR, OpKind.SHL,
                      OpKind.SHR_LOGICAL, OpKind.SHR_ARITH):
                return left
            if op is OpKind.AND:
                return self.const(0)
        if isinstance(left, Const) and left.value == 0:
            if op in (OpKind.ADD, OpKind.OR, OpKind.XOR):
                return right
            if op in (OpKind.AND, OpKind.MUL, OpKind.SHL,
                      OpKind.SHR_LOGICAL, OpKind.SHR_ARITH):
                return self.const(0)
        if isinstance(right, Const) and right.value == 0 and op is OpKind.MUL:
            return self.const(0)
        return None

    # ------------------------------------------------------------------ queries
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[Node]:
        return list(self._nodes)


def walk(node: Node) -> Iterable[Node]:
    """Yield ``node`` and every node reachable from it (depth first, deduped)."""
    seen = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if id(current) in seen or current is None:
            continue
        seen.add(id(current))
        yield current
        if isinstance(current, BinExpr):
            stack.extend([current.left, current.right])
        elif isinstance(current, UnExpr):
            stack.append(current.operand)
        elif isinstance(current, Load):
            stack.append(current.address)
        elif isinstance(current, Mux):
            stack.extend([current.condition, current.if_true, current.if_false])
        elif isinstance(current, Condition):
            stack.append(current.value)


def compile_node(node: Node, _cache: Optional[dict] = None):
    """Compile ``node`` once into a closure evaluating it per iteration.

    The returned callable has the signature
    ``fn(state, memory_read, loads_cache) -> int`` with the same contract
    as :func:`evaluate`, but all structural dispatch — node types, operator
    kinds, condition relations — is resolved here, at compile time, so the
    per-iteration cost is just the closure calls.  This is the same
    translate-once idea the threaded-code CPU engine applies to machine
    instructions, applied to the decompiled dataflow graph the WCLA
    executes: the warp co-simulation evaluates each kernel body thousands
    of times, and the recursive interpreter was one of the two hottest
    paths of the whole evaluation harness.

    The compiled form is observationally identical to :func:`evaluate`:
    ``Mux`` arms stay lazy (only the chosen side touches memory), each
    ``Load`` node reads memory at most once per iteration through
    ``loads_cache``, and every result is masked to 32 bits.

    Expressions form a structurally shared DAG, so compilation memoises
    per node (``_cache``): a shared sub-term compiles to one closure
    reused by every consumer, mirroring the one-adder-per-distinct-term
    sharing of the hardware itself.
    """
    if _cache is None:
        _cache = {}
    cached = _cache.get(id(node))
    if cached is not None:
        return cached
    _cache[id(node)] = fn = _compile_node_uncached(node, _cache)
    return fn


def _compile_node_uncached(node: Node, _cache: dict):
    if isinstance(node, Const):
        value = node.value & WORD_MASK
        return lambda state, memory_read, loads_cache: value
    if isinstance(node, LiveIn):
        register = node.register
        def fn(state, memory_read, loads_cache):
            return state.get(register, 0) & WORD_MASK
        return fn
    if isinstance(node, Load):
        address_fn = compile_node(node.address, _cache)
        node_id, width = node.node_id, node.width
        def fn(state, memory_read, loads_cache):
            # Load results are unsigned words, so -1 is a safe "missing"
            # sentinel and avoids a second dictionary probe.
            value = loads_cache.get(node_id, -1)
            if value < 0:
                value = memory_read(
                    address_fn(state, memory_read, loads_cache), width
                ) & WORD_MASK
                loads_cache[node_id] = value
            return value
        return fn
    if isinstance(node, UnExpr):
        operand_fn = compile_node(node.operand, _cache)
        op = node.op
        if op is OpKind.NEG:
            def fn(state, memory_read, loads_cache):
                return (-operand_fn(state, memory_read, loads_cache)) & WORD_MASK
        elif op is OpKind.NOT:
            def fn(state, memory_read, loads_cache):
                return (~operand_fn(state, memory_read, loads_cache)) & WORD_MASK
        elif op is OpKind.SEXT8:
            def fn(state, memory_read, loads_cache):
                value = operand_fn(state, memory_read, loads_cache)
                return _signed((value & 0xFF) | (0xFFFFFF00 if value & 0x80 else 0)) & WORD_MASK
        elif op is OpKind.SEXT16:
            def fn(state, memory_read, loads_cache):
                value = operand_fn(state, memory_read, loads_cache)
                return _signed((value & 0xFFFF) | (0xFFFF0000 if value & 0x8000 else 0)) & WORD_MASK
        else:
            raise ValueError(f"unknown unary op {op}")
        return fn
    if isinstance(node, Mux):
        condition_fn = compile_node(node.condition, _cache)
        true_fn = compile_node(node.if_true, _cache)
        false_fn = compile_node(node.if_false, _cache)
        def fn(state, memory_read, loads_cache):
            if condition_fn(state, memory_read, loads_cache):
                return true_fn(state, memory_read, loads_cache)
            return false_fn(state, memory_read, loads_cache)
        return fn
    if isinstance(node, Condition):
        value_fn = compile_node(node.value, _cache)
        relation = node.relation
        SIGN = 0x8000_0000
        if relation == "eq":
            def fn(state, memory_read, loads_cache):
                return int(value_fn(state, memory_read, loads_cache) == 0)
        elif relation == "ne":
            def fn(state, memory_read, loads_cache):
                return int(value_fn(state, memory_read, loads_cache) != 0)
        elif relation == "lt":
            def fn(state, memory_read, loads_cache):
                return int(value_fn(state, memory_read, loads_cache) >= SIGN)
        elif relation == "le":
            def fn(state, memory_read, loads_cache):
                value = value_fn(state, memory_read, loads_cache)
                return int(value >= SIGN or value == 0)
        elif relation == "gt":
            def fn(state, memory_read, loads_cache):
                return int(0 < value_fn(state, memory_read, loads_cache) < SIGN)
        elif relation == "ge":
            def fn(state, memory_read, loads_cache):
                return int(value_fn(state, memory_read, loads_cache) < SIGN)
        else:
            raise ValueError(f"unknown condition relation {relation!r}")
        return fn
    if isinstance(node, BinExpr):
        left_fn = compile_node(node.left, _cache)
        right_fn = compile_node(node.right, _cache)
        op = node.op
        if op is OpKind.ADD:
            def fn(state, memory_read, loads_cache):
                return (left_fn(state, memory_read, loads_cache)
                        + right_fn(state, memory_read, loads_cache)) & WORD_MASK
        elif op is OpKind.SUB:
            def fn(state, memory_read, loads_cache):
                return (left_fn(state, memory_read, loads_cache)
                        - right_fn(state, memory_read, loads_cache)) & WORD_MASK
        elif op is OpKind.MUL:
            def fn(state, memory_read, loads_cache):
                return (left_fn(state, memory_read, loads_cache)
                        * right_fn(state, memory_read, loads_cache)) & WORD_MASK
        elif op is OpKind.AND:
            def fn(state, memory_read, loads_cache):
                return left_fn(state, memory_read, loads_cache) \
                    & right_fn(state, memory_read, loads_cache)
        elif op is OpKind.OR:
            def fn(state, memory_read, loads_cache):
                return left_fn(state, memory_read, loads_cache) \
                    | right_fn(state, memory_read, loads_cache)
        elif op is OpKind.XOR:
            def fn(state, memory_read, loads_cache):
                return left_fn(state, memory_read, loads_cache) \
                    ^ right_fn(state, memory_read, loads_cache)
        elif op is OpKind.ANDN:
            def fn(state, memory_read, loads_cache):
                return left_fn(state, memory_read, loads_cache) \
                    & ~right_fn(state, memory_read, loads_cache) & WORD_MASK
        elif op is OpKind.SHL:
            def fn(state, memory_read, loads_cache):
                return (left_fn(state, memory_read, loads_cache)
                        << (right_fn(state, memory_read, loads_cache) & 31)) & WORD_MASK
        elif op is OpKind.SHR_LOGICAL:
            def fn(state, memory_read, loads_cache):
                return left_fn(state, memory_read, loads_cache) \
                    >> (right_fn(state, memory_read, loads_cache) & 31)
        elif op is OpKind.SHR_ARITH:
            def fn(state, memory_read, loads_cache):
                return (_signed(left_fn(state, memory_read, loads_cache))
                        >> (right_fn(state, memory_read, loads_cache) & 31)) & WORD_MASK
        elif op is OpKind.CMP_SIGN:
            def fn(state, memory_read, loads_cache):
                sa = _signed(left_fn(state, memory_read, loads_cache))
                sb = _signed(right_fn(state, memory_read, loads_cache))
                return (1 if sb > sa else 0 if sb == sa else -1) & WORD_MASK
        elif op is OpKind.CMP_SIGN_U:
            def fn(state, memory_read, loads_cache):
                a = left_fn(state, memory_read, loads_cache)
                b = right_fn(state, memory_read, loads_cache)
                return (1 if b > a else 0 if a == b else -1) & WORD_MASK
        else:
            raise ValueError(f"unknown binary op {op}")
        return fn
    raise TypeError(f"cannot compile node {node!r}")


def evaluate(node: Node, live_values: Dict[int, int], memory_read, loads_cache: Dict[int, int]) -> int:
    """Evaluate ``node`` for one iteration.

    ``live_values`` maps architectural register numbers to their values at
    the start of the iteration, ``memory_read(address, width)`` performs a
    memory read, and ``loads_cache`` memoises Load nodes so that each load
    node reads memory exactly once per iteration.
    Returns an unsigned 32-bit value (conditions return 0/1).
    """
    if isinstance(node, Const):
        return node.value & WORD_MASK
    if isinstance(node, LiveIn):
        return live_values.get(node.register, 0) & WORD_MASK
    if isinstance(node, Load):
        if node.node_id not in loads_cache:
            address = evaluate(node.address, live_values, memory_read, loads_cache)
            loads_cache[node.node_id] = memory_read(address, node.width) & WORD_MASK
        return loads_cache[node.node_id]
    if isinstance(node, UnExpr):
        value = evaluate(node.operand, live_values, memory_read, loads_cache)
        if node.op is OpKind.NEG:
            return (-value) & WORD_MASK
        if node.op is OpKind.NOT:
            return (~value) & WORD_MASK
        if node.op is OpKind.SEXT8:
            return (_signed((value & 0xFF) | (0xFFFFFF00 if value & 0x80 else 0))) & WORD_MASK
        if node.op is OpKind.SEXT16:
            return (_signed((value & 0xFFFF) | (0xFFFF0000 if value & 0x8000 else 0))) & WORD_MASK
        raise ValueError(f"unknown unary op {node.op}")
    if isinstance(node, Mux):
        condition = evaluate(node.condition, live_values, memory_read, loads_cache)
        chosen = node.if_true if condition else node.if_false
        return evaluate(chosen, live_values, memory_read, loads_cache)
    if isinstance(node, Condition):
        value = _signed(evaluate(node.value, live_values, memory_read, loads_cache))
        relation = node.relation
        result = {
            "eq": value == 0,
            "ne": value != 0,
            "lt": value < 0,
            "le": value <= 0,
            "gt": value > 0,
            "ge": value >= 0,
        }[relation]
        return int(result)
    if isinstance(node, BinExpr):
        a = evaluate(node.left, live_values, memory_read, loads_cache)
        b = evaluate(node.right, live_values, memory_read, loads_cache)
        sa, sb = _signed(a), _signed(b)
        op = node.op
        if op is OpKind.ADD:
            return (a + b) & WORD_MASK
        if op is OpKind.SUB:
            return (a - b) & WORD_MASK
        if op is OpKind.MUL:
            return (a * b) & WORD_MASK
        if op is OpKind.AND:
            return a & b
        if op is OpKind.OR:
            return a | b
        if op is OpKind.XOR:
            return a ^ b
        if op is OpKind.ANDN:
            return a & ~b & WORD_MASK
        if op is OpKind.SHL:
            return (a << (b & 31)) & WORD_MASK
        if op is OpKind.SHR_LOGICAL:
            return a >> (b & 31)
        if op is OpKind.SHR_ARITH:
            return (sa >> (b & 31)) & WORD_MASK
        if op is OpKind.CMP_SIGN:
            return (1 if sb > sa else 0 if sb == sa else -1) & WORD_MASK
        if op is OpKind.CMP_SIGN_U:
            return (1 if b > a else 0 if a == b else -1) & WORD_MASK
        raise ValueError(f"unknown binary op {op}")
    raise TypeError(f"cannot evaluate node {node!r}")
