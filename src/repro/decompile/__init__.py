"""Binary-to-CDFG decompilation (the front half of ROCPART).

Rebuilds control-flow graphs from machine words, symbolically executes the
critical region the profiler selected, and extracts the hardware kernel
descriptor (induction variables, affine memory access patterns, operation
counts) that the synthesis flow consumes.
"""

from .cfg import BasicBlock, ControlFlowGraph, branch_targets
from .expr import (
    BinExpr,
    Condition,
    Const,
    ExpressionBuilder,
    LiveIn,
    Load,
    Mux,
    Node,
    OpKind,
    StoreOp,
    UnExpr,
    evaluate,
    walk,
)
from .kernel import (
    AffineForm,
    HardwareKernel,
    InductionVariable,
    MemoryAccessPattern,
    OperationCounts,
    affine_decompose,
    decompile_and_extract,
    extract_kernel,
)
from .symexec import DecompilationError, SymbolicExecutor, SymbolicLoopBody, decompile_region

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "branch_targets",
    "BinExpr",
    "Condition",
    "Const",
    "ExpressionBuilder",
    "LiveIn",
    "Load",
    "Mux",
    "Node",
    "OpKind",
    "StoreOp",
    "UnExpr",
    "evaluate",
    "walk",
    "AffineForm",
    "HardwareKernel",
    "InductionVariable",
    "MemoryAccessPattern",
    "OperationCounts",
    "affine_decompose",
    "decompile_and_extract",
    "extract_kernel",
    "DecompilationError",
    "SymbolicExecutor",
    "SymbolicLoopBody",
    "decompile_region",
]
