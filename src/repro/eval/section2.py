"""Section 2 configurability study.

Section 2 of the paper quantifies how much the MicroBlaze's configurable
hardware units matter: ``brev`` runs 2.1x slower when the core is built
without the barrel shifter and multiplier (its kernel is shift-heavy), and
``matmul`` runs 1.3x slower without the hardware multiplier (the compiler
substitutes a software multiply routine).  This module reruns those two
experiments with our configuration-aware compiler and simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps import build_benchmark
from ..compiler import compile_source_cached
from ..isa.instructions import HwUnit
from ..microblaze.config import MicroBlazeConfig, PAPER_CONFIG
from ..microblaze.system import run_program
from .reporting import format_table


@dataclass
class ConfigurabilityEntry:
    """One benchmark measured on a full and a reduced configuration."""

    benchmark_name: str
    removed_units: Tuple[HwUnit, ...]
    baseline_cycles: int
    reduced_cycles: int
    paper_slowdown: float

    @property
    def slowdown(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return self.reduced_cycles / self.baseline_cycles

    @property
    def removed_description(self) -> str:
        return " + ".join(unit.value.replace("_", " ") for unit in self.removed_units)


@dataclass
class ConfigurabilityStudy:
    """The full Section 2 study."""

    entries: List[ConfigurabilityEntry] = field(default_factory=list)

    def table(self) -> str:
        headers = ["Benchmark", "Units removed", "Baseline cycles",
                   "Reduced cycles", "Slowdown", "Paper"]
        rows = [[entry.benchmark_name, entry.removed_description,
                 entry.baseline_cycles, entry.reduced_cycles,
                 entry.slowdown, f"{entry.paper_slowdown:.1f}x"]
                for entry in self.entries]
        return format_table(headers, rows)

    def entry(self, name: str) -> ConfigurabilityEntry:
        for candidate in self.entries:
            if candidate.benchmark_name == name:
                return candidate
        raise KeyError(name)


#: The two cases the paper reports, with the units it removes and the
#: slowdowns it quotes.
PAPER_CASES: Dict[str, Tuple[Tuple[HwUnit, ...], float]] = {
    "brev": ((HwUnit.BARREL_SHIFTER, HwUnit.MULTIPLIER), 2.1),
    "matmul": ((HwUnit.MULTIPLIER,), 1.3),
}


def measure_case(benchmark_name: str, removed_units: Tuple[HwUnit, ...],
                 paper_slowdown: float,
                 base_config: MicroBlazeConfig = PAPER_CONFIG,
                 small: bool = False) -> ConfigurabilityEntry:
    """Measure one benchmark on the full and the reduced configuration."""
    benchmark = build_benchmark(benchmark_name, small=small)
    reduced_config = base_config.without(*removed_units)

    baseline_program = compile_source_cached(benchmark.source, name=benchmark.name,
                                             config=base_config).program
    reduced_program = compile_source_cached(benchmark.source, name=benchmark.name,
                                            config=reduced_config).program
    baseline = run_program(baseline_program, base_config)
    reduced = run_program(reduced_program, reduced_config)
    if baseline.return_value != reduced.return_value:
        raise AssertionError(
            f"{benchmark_name}: checksums differ between configurations"
        )
    return ConfigurabilityEntry(
        benchmark_name=benchmark_name,
        removed_units=removed_units,
        baseline_cycles=baseline.cycles,
        reduced_cycles=reduced.cycles,
        paper_slowdown=paper_slowdown,
    )


def run_configurability_study(small: bool = False,
                              base_config: MicroBlazeConfig = PAPER_CONFIG) -> ConfigurabilityStudy:
    """Run the full Section 2 study (both paper cases)."""
    study = ConfigurabilityStudy()
    for name, (units, paper_slowdown) in PAPER_CASES.items():
        study.entries.append(measure_case(name, units, paper_slowdown,
                                          base_config=base_config, small=small))
    return study
