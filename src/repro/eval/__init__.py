"""Experiment harness regenerating every table and figure of the paper.

* :mod:`~repro.eval.figures` — Figure 6 (speedups) and Figure 7 (normalized
  energy) plus the aggregate claims of Section 4.
* :mod:`~repro.eval.section2` — the Section 2 configurability study.
* :mod:`~repro.eval.reporting` — plain-text table rendering.
"""

from .figures import (
    BenchmarkEvaluation,
    EvaluationSuite,
    PLATFORM_ORDER,
    evaluate_benchmark,
    metric_rows,
    run_evaluation,
)
from .reporting import arithmetic_mean, format_percent, format_table, geometric_mean
from .section2 import (
    ConfigurabilityEntry,
    ConfigurabilityStudy,
    PAPER_CASES,
    measure_case,
    run_configurability_study,
)

__all__ = [
    "BenchmarkEvaluation",
    "EvaluationSuite",
    "PLATFORM_ORDER",
    "evaluate_benchmark",
    "metric_rows",
    "run_evaluation",
    "arithmetic_mean",
    "format_percent",
    "format_table",
    "geometric_mean",
    "ConfigurabilityEntry",
    "ConfigurabilityStudy",
    "PAPER_CASES",
    "measure_case",
    "run_configurability_study",
]
