"""Plain-text report formatting for the experiment harness.

The paper presents its results as bar charts (Figures 6 and 7); the
experiment harness reproduces the underlying numbers as aligned text tables
so they can be diffed, pasted into ``EXPERIMENTS.md``, and asserted on by
the benchmark suite.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.2f}") -> str:
    """Render rows as an aligned, pipe-separated table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    separator = "-+-".join("-" * width for width in widths)
    output = [line([str(h) for h in headers]), separator]
    output.extend(line(row) for row in rendered_rows)
    return "\n".join(output)


def format_percent(value: float) -> str:
    return f"{100.0 * value:.0f}%"


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
