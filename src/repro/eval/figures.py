"""Reproduction of Figure 6 (speedups) and Figure 7 (normalized energy).

For every benchmark the harness:

1. compiles it for the paper's MicroBlaze configuration and runs it through
   the full warp-processing flow (software baseline, profiling, on-chip
   partitioning, patched co-execution with the WCLA),
2. estimates the four ARM hard cores' execution times from the same dynamic
   instruction mix (the SimpleScalar stand-in),
3. evaluates the Figure-5 energy equation for the plain MicroBlaze, the
   warp processor, and the ARMs.

The per-benchmark speedups relative to the plain MicroBlaze reproduce
Figure 6; the per-benchmark energies normalized to the plain MicroBlaze
reproduce Figure 7; the aggregate claims of Section 4 (average speedup,
average energy reduction, ARM10/ARM11 comparisons) are derived from the
same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..apps import Benchmark, build_suite
from ..arm.models import ArmExecutionEstimate, estimate_all_arm_cores
from ..compiler import compile_source_cached
from ..microblaze.config import MicroBlazeConfig, PAPER_CONFIG
from ..power.constants import ARM_POWER
from ..power.energy import EnergyBreakdown, arm_energy, microblaze_energy, warp_energy
from ..warp.processor import WarpProcessor, WarpRunResult
from .reporting import arithmetic_mean, format_table

#: Platform labels in the order the paper's figure legends use them.
PLATFORM_ORDER = ("MicroBlaze", "ARM7", "ARM9", "ARM10", "ARM11", "MicroBlaze (Warp)")


def metric_rows(entries: Sequence[tuple],
                order: Sequence[str],
                average_label: str = "Average:") -> List[List[object]]:
    """Build figure-style table rows from per-item metric dictionaries.

    ``entries`` is a sequence of ``(name, {column: value})`` pairs and
    ``order`` the column sequence; the returned rows are one per entry
    plus a trailing arithmetic-mean row — the row shape of Figures 6
    and 7.  Shared by :class:`EvaluationSuite` and by the warp service's
    suite-level reports (:mod:`repro.service.jobs`).
    """
    rows: List[List[object]] = [[name] + [values[key] for key in order]
                                for name, values in entries]
    averages: List[object] = [average_label]
    for key in order:
        averages.append(arithmetic_mean([values[key] for _, values in entries]))
    rows.append(averages)
    return rows


@dataclass
class BenchmarkEvaluation:
    """All Figure 6 / Figure 7 data points for one benchmark."""

    benchmark: Benchmark
    warp: WarpRunResult
    arm_estimates: Dict[str, ArmExecutionEstimate]
    energies: Dict[str, EnergyBreakdown]

    # ------------------------------------------------------------------ times
    def execution_seconds(self) -> Dict[str, float]:
        seconds = {
            "MicroBlaze": self.warp.software_seconds,
            "MicroBlaze (Warp)": self.warp.warp_seconds,
        }
        for name, estimate in self.arm_estimates.items():
            seconds[name] = estimate.seconds
        return seconds

    def speedups(self) -> Dict[str, float]:
        """Speedup of every platform relative to the plain MicroBlaze."""
        baseline = self.warp.software_seconds
        return {name: baseline / seconds if seconds > 0 else 0.0
                for name, seconds in self.execution_seconds().items()}

    def normalized_energy(self) -> Dict[str, float]:
        """Energy of every platform normalized to the plain MicroBlaze."""
        baseline = self.energies["MicroBlaze"]
        return {name: energy.normalized_to(baseline)
                for name, energy in self.energies.items()}

    @property
    def checksums_match(self) -> bool:
        return self.warp.checksums_match


@dataclass
class EvaluationSuite:
    """The full six-benchmark evaluation of Section 4."""

    evaluations: List[BenchmarkEvaluation] = field(default_factory=list)

    # ---------------------------------------------------------------- figure 6
    def figure6_rows(self) -> List[List[object]]:
        return metric_rows([(item.benchmark.name, item.speedups())
                            for item in self.evaluations], PLATFORM_ORDER)

    def figure6_table(self) -> str:
        headers = ["Benchmark"] + [f"{name} ({_clock_label(name)})"
                                   for name in PLATFORM_ORDER]
        return format_table(headers, self.figure6_rows())

    # ---------------------------------------------------------------- figure 7
    def figure7_rows(self) -> List[List[object]]:
        return metric_rows([(item.benchmark.name, item.normalized_energy())
                            for item in self.evaluations], PLATFORM_ORDER)

    def figure7_table(self) -> str:
        headers = ["Benchmark"] + [f"{name} ({_clock_label(name)})"
                                   for name in PLATFORM_ORDER]
        return format_table(headers, self.figure7_rows(), float_format="{:.3f}")

    # ------------------------------------------------------------- CAD stages
    def cad_stage_order(self) -> List[str]:
        """CAD flow stage names in flow order (union across benchmarks)."""
        order: List[str] = []
        for item in self.evaluations:
            for record in item.warp.partitioning.stage_records:
                if record.stage not in order:
                    order.append(record.stage)
        return order

    def cad_stage_rows(self) -> List[List[object]]:
        """Per-benchmark modelled on-chip time (ms) of each CAD flow stage.

        The per-stage breakdown of the ~1 s on-chip tool time the paper
        reports: each cell is the stage's :class:`~repro.cad.DpmCostModel`
        contribution for that benchmark's kernel (host-side cache hits do
        not change it).  Row shape follows :func:`metric_rows`, like the
        Figure 6/7 tables.
        """
        order = self.cad_stage_order()
        entries = []
        for item in self.evaluations:
            per_stage = {stage: 0.0 for stage in order}
            for record in item.warp.partitioning.stage_records:
                per_stage[record.stage] += record.modelled_seconds * 1e3
            entries.append((item.benchmark.name, per_stage))
        return metric_rows(entries, order)

    def cad_stage_table(self) -> str:
        headers = ["Benchmark"] + [f"{name} (ms)"
                                   for name in self.cad_stage_order()]
        return format_table(headers, self.cad_stage_rows())

    # ----------------------------------------------------------- aggregate claims
    def _mean_over(self, metric, names: Optional[Sequence[str]] = None) -> float:
        selected = [item for item in self.evaluations
                    if names is None or item.benchmark.name in names]
        return arithmetic_mean([metric(item) for item in selected])

    def average_warp_speedup(self, exclude: Sequence[str] = ()) -> float:
        names = [item.benchmark.name for item in self.evaluations
                 if item.benchmark.name not in exclude]
        return self._mean_over(lambda item: item.speedups()["MicroBlaze (Warp)"], names)

    def average_warp_energy_reduction(self, exclude: Sequence[str] = ()) -> float:
        names = [item.benchmark.name for item in self.evaluations
                 if item.benchmark.name not in exclude]
        return 1.0 - self._mean_over(
            lambda item: item.normalized_energy()["MicroBlaze (Warp)"], names)

    def microblaze_vs_arm11_energy(self) -> float:
        """How much more energy the plain MicroBlaze uses than the ARM11."""
        ratio = self._mean_over(
            lambda item: 1.0 / max(item.normalized_energy()["ARM11"], 1e-12))
        return ratio - 1.0

    def arm11_speed_advantage_over_warp(self) -> float:
        """Average factor by which the ARM11 outruns the warp processor."""
        return self._mean_over(
            lambda item: item.execution_seconds()["MicroBlaze (Warp)"]
            / item.execution_seconds()["ARM11"])

    def arm11_energy_overhead_vs_warp(self) -> float:
        """How much more energy the ARM11 uses than the warp processor."""
        return self._mean_over(
            lambda item: item.normalized_energy()["ARM11"]
            / max(item.normalized_energy()["MicroBlaze (Warp)"], 1e-12)) - 1.0

    def warp_speed_advantage_over_arm10(self) -> float:
        return self._mean_over(
            lambda item: item.execution_seconds()["ARM10"]
            / item.execution_seconds()["MicroBlaze (Warp)"])

    def warp_energy_saving_vs_arm10(self) -> float:
        return 1.0 - self._mean_over(
            lambda item: item.normalized_energy()["MicroBlaze (Warp)"]
            / max(item.normalized_energy()["ARM10"], 1e-12))

    def claims_summary(self) -> str:
        lines = [
            f"average warp speedup              : {self.average_warp_speedup():.2f}x "
            f"(paper: 5.8x)",
            f"average warp speedup (excl. brev) : {self.average_warp_speedup(exclude=('brev',)):.2f}x "
            f"(paper: 3.6x)",
            f"average warp energy reduction     : {100 * self.average_warp_energy_reduction():.0f}% "
            f"(paper: 57%)",
            f"energy reduction (excl. brev)     : {100 * self.average_warp_energy_reduction(exclude=('brev',)):.0f}% "
            f"(paper: 49%)",
            f"MicroBlaze vs ARM11 energy        : +{100 * self.microblaze_vs_arm11_energy():.0f}% "
            f"(paper: +48%)",
            f"ARM11 speed advantage over warp   : {self.arm11_speed_advantage_over_warp():.2f}x "
            f"(paper: 2.6x)",
            f"ARM11 energy overhead vs warp     : +{100 * self.arm11_energy_overhead_vs_warp():.0f}% "
            f"(paper: +80%)",
            f"warp speed advantage over ARM10   : {self.warp_speed_advantage_over_arm10():.2f}x "
            f"(paper: 1.3x)",
            f"warp energy saving vs ARM10       : {100 * self.warp_energy_saving_vs_arm10():.0f}% "
            f"(paper: 26%)",
        ]
        return "\n".join(lines)

    @property
    def all_checksums_match(self) -> bool:
        return all(item.checksums_match for item in self.evaluations)


def _clock_label(name: str) -> str:
    if name.startswith("MicroBlaze"):
        return "85"
    return f"{ARM_POWER[name].clock_mhz:.0f}"


def evaluate_benchmark(benchmark: Benchmark,
                       config: MicroBlazeConfig = PAPER_CONFIG,
                       processor: Optional[WarpProcessor] = None,
                       engine: Optional[str] = None) -> BenchmarkEvaluation:
    """Run one benchmark through the full Figure 6 / Figure 7 pipeline."""
    if processor is not None and engine is not None:
        raise ValueError("pass either an explicit processor or an engine, "
                         "not both; the processor's own engine would win")
    # Compilation is memoized across the evaluation, the Section 2 study
    # and repeated suite runs; the warp flow patches a copy, never this
    # shared image.
    program = compile_source_cached(benchmark.source, name=benchmark.name,
                                    config=config).program
    warp_processor = processor if processor is not None \
        else WarpProcessor(config=config, engine=engine)
    warp = warp_processor.run(program)

    arm_estimates = estimate_all_arm_cores(warp.software_result)

    energies: Dict[str, EnergyBreakdown] = {
        "MicroBlaze": microblaze_energy(warp.software_seconds, config.clock_mhz),
    }
    if warp.partitioning.success:
        synthesis = warp.partitioning.synthesis
        energies["MicroBlaze (Warp)"] = warp_energy(
            mb_active_seconds=warp.microblaze_seconds,
            hw_seconds=warp.hw_seconds,
            clock_mhz=config.clock_mhz,
            wcla_luts=synthesis.total_luts,
            uses_mac=synthesis.mac_operations > 0,
        )
    else:
        energies["MicroBlaze (Warp)"] = microblaze_energy(
            warp.software_seconds, config.clock_mhz, label="MicroBlaze (Warp)")
    for name, estimate in arm_estimates.items():
        energies[name] = arm_energy(estimate.seconds, ARM_POWER[name])

    return BenchmarkEvaluation(benchmark=benchmark, warp=warp,
                               arm_estimates=arm_estimates, energies=energies)


def run_evaluation(names: Optional[Sequence[str]] = None, small: bool = False,
                   config: MicroBlazeConfig = PAPER_CONFIG,
                   engine: Optional[str] = None) -> EvaluationSuite:
    """Run the whole evaluation suite (Figures 6 and 7).

    ``engine`` selects the simulator execution engine by registry name
    (:func:`repro.microblaze.engine_names`; ``"threaded"`` by default);
    the benchmark harness uses ``engine="interp"`` to measure the seed
    interpreter and ``engine="jit"`` for the generated-source engine's
    trajectory.  Unknown names fail with the registry's
    :class:`~repro.microblaze.engines.UnknownEngineError`.
    """
    benchmarks = build_suite(small=small, names=list(names) if names else None)
    suite = EvaluationSuite()
    for benchmark in benchmarks:
        suite.evaluations.append(evaluate_benchmark(benchmark, config=config,
                                                    engine=engine))
    return suite
