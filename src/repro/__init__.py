"""Warp processing for FPGA soft processor cores.

A reproduction of *"A Study of the Speedups and Competitiveness of FPGA
Soft Processor Cores using Dynamic Hardware/Software Partitioning"*
(Lysecky & Vahid, DATE 2005).

The package is organised bottom-up:

* :mod:`repro.isa` — MicroBlaze-like instruction set, assembler, encodings.
* :mod:`repro.compiler` — small C-like kernel language compiled to the ISA,
  honouring the soft core's configurable hardware units.
* :mod:`repro.microblaze` — the soft-core system simulator (Figure 1).
* :mod:`repro.profiler` — the non-intrusive on-chip profiler.
* :mod:`repro.decompile` — binary-to-CDFG decompilation.
* :mod:`repro.synthesis` — ROCPART-style synthesis, logic minimisation and
  technology mapping.
* :mod:`repro.fabric` — the warp configurable logic architecture (WCLA),
  the simple configurable logic fabric, placement and routing.
* :mod:`repro.partition` — the dynamic partitioning module (DPM).
* :mod:`repro.power` — Spartan3 / UMC 0.18 µm power models and the
  Figure-5 energy equation.
* :mod:`repro.arm` — ARM7/9/10/11 hard-core comparison models.
* :mod:`repro.warp` — the warp processor itself (Figures 2 and 4).
* :mod:`repro.apps` — the Powerstone/EEMBC-style benchmark suite.
* :mod:`repro.eval` — the experiment harness regenerating Figures 6/7 and
  the Section 2 configurability study.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
