"""Deterministic fault injection for the warp service stack.

Every failure mode the service stack recovers from has a named
**injection site** here — a point in production code where a seeded
:class:`~repro.chaos.plan.FaultPlan` can inject exceptions, delays,
truncated frames, corrupted store entries or worker kills on demand.
The recovery policies (pool watchdog + isolated retries, client
retry/backoff, store corruption quarantine, CAD-stage transient
retries, gateway drain) are ordinary production code; this package only
provides the deterministic way to *exercise* them, so the chaos
differential harness (``tests/test_chaos.py``) can assert that a run
under faults with recovery enabled produces a report identical to the
fault-free run — graceful degradation means slower, never different.

Zero overhead when disabled: the hot call sites gate on the
module-level :data:`ACTIVE_PLAN` being ``None`` (the same pattern as
the zero-allocation branch hooks of the execution engines)::

    from .. import chaos
    ...
    if chaos.ACTIVE_PLAN is not None:
        injection = chaos.fire(chaos.SITE_STORE_LOAD, label=name)

With no plan installed that is one module attribute load and an ``is``
check; no function is called, nothing is allocated.

Plans reach pool worker processes the same way the persistent store
does: :func:`export_plan_to_environment` publishes the plan spec (JSON)
under :data:`PLAN_ENV_VAR`, and the worker entry point calls
:func:`ensure_process_plan` which installs it once per process.  Rules
that must fire a bounded number of times *across* processes (e.g. "kill
exactly one worker") use a ``budget_dir`` of atomically-created marker
files, keeping multi-process chaos runs deterministic.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from .plan import (
    ChaosError,
    FaultPlan,
    FaultRule,
    Injection,
    KILL_EXIT_CODE,
    SITE_CAD_STAGE,
    SITE_MESH_MEMBER,
    SITE_PEER_FETCH,
    SITE_STORE_LOAD,
    SITE_STORE_PUBLISH,
    SITE_WIRE_READ,
    SITE_WIRE_WRITE,
    SITE_WORKER_JOB,
    SITES,
    standard_plan,
)

#: Environment variable carrying a JSON plan spec into worker processes
#: (same shipping mechanism as ``REPRO_CAD_STORE``).
PLAN_ENV_VAR = "REPRO_CHAOS_PLAN"

#: The process-wide installed plan, or ``None`` (the common case).  Hot
#: call sites read this directly; everything else goes through
#: :func:`install_plan` / :func:`clear_plan`.
ACTIVE_PLAN: Optional[FaultPlan] = None

#: Pid that last checked :data:`PLAN_ENV_VAR` — per *process*, so a
#: forked pool worker (fresh pid) re-reads the environment its parent
#: exported even though it inherited the parent's module state.
_ENV_CHECKED_PID: Optional[int] = None


def fire(site: str, label: str = "") -> Optional[Injection]:
    """Fire the installed plan at ``site`` (no-op without a plan).

    Delays are slept, error/reset/kill rules raise (or exit) from here;
    data-shape rules (truncate / corrupt / orphan) come back as an
    :class:`Injection` for the call site to apply, since only it knows
    the bytes involved.
    """
    plan = ACTIVE_PLAN
    if plan is None:
        return None
    return plan.fire(site, label)


def install_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as this process's active plan."""
    global ACTIVE_PLAN
    ACTIVE_PLAN = plan
    return plan


def clear_plan() -> None:
    """Deactivate fault injection in this process."""
    global ACTIVE_PLAN, _ENV_CHECKED_PID
    ACTIVE_PLAN = None
    _ENV_CHECKED_PID = None


def export_plan_to_environment(plan: FaultPlan) -> None:
    """Publish ``plan`` for worker processes created afterwards."""
    os.environ[PLAN_ENV_VAR] = plan.to_json()


def clear_environment_plan() -> None:
    os.environ.pop(PLAN_ENV_VAR, None)


def ensure_process_plan() -> None:
    """Install the environment-exported plan in this process, once.

    Called from the pool worker entry point; cached per pid so the check
    costs one comparison per job in the steady state, and a forked child
    (whose pid differs from the parent that populated the cache) still
    picks the plan up.
    """
    global _ENV_CHECKED_PID
    if ACTIVE_PLAN is not None or _ENV_CHECKED_PID == os.getpid():
        return
    _ENV_CHECKED_PID = os.getpid()
    spec = os.environ.get(PLAN_ENV_VAR)
    if spec:
        install_plan(FaultPlan.from_json(spec))


@contextmanager
def active_plan(plan: FaultPlan, export: bool = False):
    """Context manager: install ``plan`` (and optionally export it to
    worker processes), restoring the previous state on exit."""
    global ACTIVE_PLAN
    previous = ACTIVE_PLAN
    install_plan(plan)
    if export:
        export_plan_to_environment(plan)
    try:
        yield plan
    finally:
        ACTIVE_PLAN = previous
        if export:
            clear_environment_plan()


__all__ = [
    "ACTIVE_PLAN",
    "ChaosError",
    "FaultPlan",
    "FaultRule",
    "Injection",
    "KILL_EXIT_CODE",
    "PLAN_ENV_VAR",
    "SITES",
    "SITE_CAD_STAGE",
    "SITE_MESH_MEMBER",
    "SITE_PEER_FETCH",
    "SITE_STORE_LOAD",
    "SITE_STORE_PUBLISH",
    "SITE_WIRE_READ",
    "SITE_WIRE_WRITE",
    "SITE_WORKER_JOB",
    "active_plan",
    "clear_environment_plan",
    "clear_plan",
    "ensure_process_plan",
    "export_plan_to_environment",
    "fire",
    "install_plan",
    "standard_plan",
]
