"""Fault rules, the seedable fault plan, and the standard plan mix.

A :class:`FaultPlan` is a seeded RNG plus an ordered list of
:class:`FaultRule`\\ s, each keyed to one named injection **site**.
Firing a site walks its rules in order; a rule that matches (site,
optional label substring, probability draw, remaining budget) injects
its fault kind:

======== ====================================================== =========
kind     effect                                                 sites
======== ====================================================== =========
error    raise :class:`ChaosError` (classified *transient*:     worker,
         the recovery policies retry it within a bounded         cad-stage,
         budget)                                                 store,
                                                                 peer-fetch
reset    raise :class:`ConnectionResetError`                     wire,
                                                                 mesh-member
delay    ``time.sleep(delay_s)``                                 any
kill     ``os._exit(KILL_EXIT_CODE)`` — the worker process       worker
         dies as a segfault would, bypassing all handlers
truncate returned to the call site, which drops the tail of      wire,
         the frame/entry at a seeded fraction                    store
corrupt  returned to the call site, which flips a seeded byte    store
orphan   returned to the call site, which writes the tmp file    store
         but never publishes it (death between write and         publish
         rename)
======== ====================================================== =========

Everything is deterministic: the probability draws and the
truncate/corrupt positions come from the plan's seeded RNG, and rule
budgets (``max_fires``) either count in-process or — when the plan
carries a ``budget_dir`` — claim atomically-created marker files, so
"exactly one worker kill" holds across a whole process pool.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field, asdict
from typing import Dict, Optional, Sequence, Tuple

# ------------------------------------------------------------------- sites
SITE_WIRE_READ = "wire-read"        #: WARPNET frame about to be read
SITE_WIRE_WRITE = "wire-write"      #: WARPNET frame about to be written
SITE_STORE_LOAD = "store-load"      #: disk-store entry bytes just read
SITE_STORE_PUBLISH = "store-publish"  #: disk-store entry about to publish
SITE_WORKER_JOB = "worker-job"      #: a worker beginning a job execution
SITE_CAD_STAGE = "cad-stage"        #: a CAD flow stage about to compute
SITE_PEER_FETCH = "peer-fetch"      #: a mesh peer store fetch attempt
SITE_MESH_MEMBER = "mesh-member"    #: a mesh member about to be contacted

SITES = (SITE_WIRE_READ, SITE_WIRE_WRITE, SITE_STORE_LOAD,
         SITE_STORE_PUBLISH, SITE_WORKER_JOB, SITE_CAD_STAGE,
         SITE_PEER_FETCH, SITE_MESH_MEMBER)

_KINDS = ("error", "reset", "delay", "kill", "truncate", "corrupt", "orphan")

#: Exit status of an injected worker kill (distinctive in pool reports).
KILL_EXIT_CODE = 43


class ChaosError(Exception):
    """An injected fault, classified **transient** by definition: it
    models the environment errors (flaky NFS, OOM-killed helper, cosmic
    ray) that a bounded retry is the correct response to.  Recovery
    policies retry exactly this type; real domain errors still fail
    fast."""


@dataclass(frozen=True)
class Injection:
    """A data-shape fault returned to the call site to apply.

    ``fraction`` is a seeded draw in ``[0, 1)`` parameterizing the
    injection (truncation point, corrupted byte position).
    """

    site: str
    kind: str
    fraction: float = 0.0

    def mangle(self, blob: bytes) -> bytes:
        """Apply this injection to a byte payload (truncate/corrupt)."""
        if not blob:
            return blob
        if self.kind == "truncate":
            return blob[:int(len(blob) * self.fraction)]
        if self.kind == "corrupt":
            position = min(len(blob) - 1, int(len(blob) * self.fraction))
            return (blob[:position]
                    + bytes([blob[position] ^ 0xFF])
                    + blob[position + 1:])
        return blob


@dataclass(frozen=True)
class FaultRule:
    """One injection rule of a plan."""

    site: str
    kind: str
    #: Chance of firing per visit (draws from the plan's seeded RNG;
    #: ``1.0`` fires on every visit and consumes no draw).
    probability: float = 1.0
    #: Total fires allowed (``None`` = unlimited).  With a plan-level
    #: ``budget_dir`` the budget spans every process sharing the plan.
    max_fires: Optional[int] = None
    #: Sleep applied by ``kind="delay"``.
    delay_s: float = 0.0
    #: Only fire when this substring occurs in the site label (a job
    #: name, stage name, entry name, or wire verb) — for targeted,
    #: fully deterministic injections.
    match: Optional[str] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown injection site {self.site!r}; "
                             f"sites are {SITES}")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"kinds are {_KINDS}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.max_fires is not None and self.max_fires <= 0:
            raise ValueError("max_fires must be positive (or None)")


class FaultPlan:
    """A seeded, deterministic set of fault rules plus its accounting."""

    def __init__(self, seed: int, rules: Sequence[FaultRule],
                 budget_dir=None):
        self.seed = seed
        self.rules = tuple(rules)
        #: Directory for cross-process fire budgets (marker files); when
        #: ``None`` budgets count per process.
        self.budget_dir = str(budget_dir) if budget_dir is not None else None
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._fires: Dict[int, int] = {}
        #: ``(site, kind) -> fires`` in this process.
        self.injections: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------ firing
    def fire(self, site: str, label: str = "") -> Optional[Injection]:
        """Visit ``site``: apply every matching rule, in rule order.

        Delay rules sleep here; error/reset rules raise; kill rules end
        the process.  The first matching data-shape rule (truncate /
        corrupt / orphan) is returned for the call site to apply.
        """
        returned: Optional[Injection] = None
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.match is not None and rule.match not in label:
                continue
            with self._lock:
                if rule.probability < 1.0 \
                        and self._rng.random() >= rule.probability:
                    continue
                if not self._claim_budget(index, rule):
                    continue
                key = (site, rule.kind)
                self.injections[key] = self.injections.get(key, 0) + 1
                fraction = self._rng.random()
            if rule.kind == "delay":
                time.sleep(rule.delay_s)
            elif rule.kind == "error":
                raise ChaosError(f"injected fault at {site} ({label})")
            elif rule.kind == "reset":
                raise ConnectionResetError(
                    f"chaos: injected connection reset at {site} ({label})")
            elif rule.kind == "kill":
                os._exit(KILL_EXIT_CODE)
            elif returned is None:
                returned = Injection(site=site, kind=rule.kind,
                                     fraction=fraction)
        return returned

    def _claim_budget(self, index: int, rule: FaultRule) -> bool:
        if rule.max_fires is None:
            self._fires[index] = self._fires.get(index, 0) + 1
            return True
        if self.budget_dir is None:
            fired = self._fires.get(index, 0)
            if fired >= rule.max_fires:
                return False
            self._fires[index] = fired + 1
            return True
        # Cross-process budget: each fire claims one marker file with
        # O_EXCL, so concurrent workers cannot over-fire the rule.
        for slot in range(rule.max_fires):
            marker = os.path.join(self.budget_dir,
                                  f"rule{index}-fire{slot}")
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL
                                 | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False

    # -------------------------------------------------------------- accounting
    def total_injections(self) -> int:
        return sum(self.injections.values())

    def summary(self) -> Dict:
        return {
            "seed": self.seed,
            "rules": len(self.rules),
            "injections": {f"{site}/{kind}": count
                           for (site, kind), count
                           in sorted(self.injections.items())},
            "total_injections": self.total_injections(),
        }

    # ------------------------------------------------------------------ codecs
    def to_plain(self) -> Dict:
        return {
            "seed": self.seed,
            "budget_dir": self.budget_dir,
            "rules": [asdict(rule) for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_plain(), separators=(",", ":"))

    @classmethod
    def from_plain(cls, plain: Dict) -> "FaultPlan":
        return cls(seed=plain["seed"],
                   rules=[FaultRule(**entry) for entry in plain["rules"]],
                   budget_dir=plain.get("budget_dir"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_plain(json.loads(text))


# --------------------------------------------------------------------- presets
def standard_plan(seed: int, budget_dir=None) -> FaultPlan:
    """The CLI's default chaos mix (``repro-warp suite --chaos-seed N``).

    Every rule is *recoverable* by the stack's recovery policies —
    bounded wire resets/truncations (client retry), store corruption and
    publish orphans (quarantine + recompute, tmp GC), transient CAD
    stage and worker faults (bounded retries), and small delays — so a
    run under this plan must produce a report identical to the
    fault-free run, just slower.  Worker kills are deliberately not in
    the mix: they are only recoverable under a process pool, and the
    targeted chaos tests cover them explicitly.
    """
    return FaultPlan(seed=seed, budget_dir=budget_dir, rules=[
        FaultRule(site=SITE_WIRE_WRITE, kind="truncate",
                  probability=0.08, max_fires=3),
        FaultRule(site=SITE_WIRE_READ, kind="reset",
                  probability=0.08, max_fires=3),
        FaultRule(site=SITE_STORE_LOAD, kind="corrupt",
                  probability=0.10, max_fires=4),
        FaultRule(site=SITE_STORE_PUBLISH, kind="orphan",
                  probability=0.10, max_fires=4),
        FaultRule(site=SITE_CAD_STAGE, kind="error",
                  probability=0.05, max_fires=2),
        FaultRule(site=SITE_CAD_STAGE, kind="delay",
                  probability=0.20, delay_s=0.002),
        FaultRule(site=SITE_WORKER_JOB, kind="error",
                  probability=0.05, max_fires=2),
        FaultRule(site=SITE_WORKER_JOB, kind="delay",
                  probability=0.25, delay_s=0.005),
    ])
