"""Lexical analysis for the kernel language.

The kernel language ("Kernel-C") is the small C subset in which the
Powerstone / EEMBC-style benchmark kernels of :mod:`repro.apps` are
written.  The lexer produces a flat list of :class:`Token` objects; all the
syntax the parser understands is built from the token kinds defined here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexerError

#: Reserved words of the kernel language.
KEYWORDS = frozenset({
    "int", "void", "if", "else", "while", "for", "return", "do", "break", "continue",
})

#: Multi-character operators, longest first so that the scanner is greedy.
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ",", ";",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"number"``, ``"ident"``, ``"keyword"``, ``"op"`` or
    ``"eof"``; ``text`` is the matched source text and ``value`` the numeric
    value for number tokens.
    """

    kind: str
    text: str
    line: int
    value: int = 0

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list of tokens terminated by an EOF token."""
    tokens: List[Token] = []
    position = 0
    line = 1
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            snippet = source[position:position + 10]
            raise LexerError(f"unexpected character sequence {snippet!r}", line)
        text = match.group(0)
        line += text.count("\n")
        position = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        token_line = line - text.count("\n")
        if match.lastgroup == "number":
            value = int(text, 0)
            tokens.append(Token("number", text, token_line, value))
        elif match.lastgroup == "ident":
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, token_line))
        else:
            tokens.append(Token("op", text, token_line))
    tokens.append(Token("eof", "", line))
    return tokens
