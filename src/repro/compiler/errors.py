"""Compiler diagnostics."""

from __future__ import annotations

from typing import Optional


class CompileError(Exception):
    """Any error raised while compiling a kernel-language program.

    Carries an optional ``line`` so that benchmark authors get actionable
    messages ("matmul.kc, line 17: undefined variable 'jj'").
    """

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexerError(CompileError):
    """Raised on malformed tokens."""


class ParseError(CompileError):
    """Raised on syntax errors."""


class SemanticError(CompileError):
    """Raised on undefined names, arity mismatches, bad array usage, etc."""
