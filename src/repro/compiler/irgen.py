"""AST → three-address IR lowering with semantic checking.

This pass walks the kernel-language AST, checks names/arities/array usage,
and emits linear IR per function.  Loops are emitted in the classic
bottom-test form (body first, the test at the bottom with a *backward*
conditional branch to the body), which is both what period compilers
produced and exactly the pattern the warp processor's on-chip profiler
detects when it watches for backward branches on the instruction bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .ast_nodes import (
    ArrayRef,
    Assign,
    BinaryOp,
    Block,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    Function,
    GlobalVar,
    IfStmt,
    IntLiteral,
    LocalDecl,
    ReturnStmt,
    Stmt,
    TranslationUnit,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from .errors import SemanticError
from .ir import (
    BinOp,
    BinOpKind,
    Call,
    CondJump,
    Const,
    Copy,
    IRFunction,
    IRGlobal,
    IRInstr,
    IRModule,
    Jump,
    Label,
    LoadArray,
    LoadGlobal,
    Operand,
    Reg,
    RelOp,
    Return,
    StoreArray,
    StoreGlobal,
    UnOp,
)

_BINOP_BY_TOKEN = {
    "+": BinOpKind.ADD,
    "-": BinOpKind.SUB,
    "*": BinOpKind.MUL,
    "/": BinOpKind.DIV,
    "%": BinOpKind.MOD,
    "&": BinOpKind.AND,
    "|": BinOpKind.OR,
    "^": BinOpKind.XOR,
    "<<": BinOpKind.SHL,
    ">>": BinOpKind.SHR,
}

_RELOP_BY_TOKEN = {
    "==": RelOp.EQ,
    "!=": RelOp.NE,
    "<": RelOp.LT,
    "<=": RelOp.LE,
    ">": RelOp.GT,
    ">=": RelOp.GE,
}

_WORD_MASK = 0xFFFFFFFF


def _wrap32(value: int) -> int:
    """Wrap a Python integer to signed 32-bit two's-complement semantics."""
    value &= _WORD_MASK
    if value >= 0x8000_0000:
        value -= 0x1_0000_0000
    return value


@dataclass
class _FunctionSignature:
    name: str
    arity: int
    returns_value: bool


@dataclass
class _GlobalInfo:
    name: str
    is_array: bool
    num_words: int


class IRGenerator:
    """Lowers a :class:`TranslationUnit` to an :class:`IRModule`."""

    def __init__(self) -> None:
        self.globals: Dict[str, _GlobalInfo] = {}
        self.functions: Dict[str, _FunctionSignature] = {}
        self._body: List[IRInstr] = []
        self._scope: Dict[str, Reg] = {}
        self._temp_pool: List[str] = []
        self._next_temp = 0
        self._next_label = 0
        self._function_name = ""
        self._loop_stack: List[Tuple[str, str]] = []  # (break_label, continue_label)

    # ------------------------------------------------------------------ driver
    def generate(self, unit: TranslationUnit) -> IRModule:
        module = IRModule()
        for decl in unit.globals:
            info = self._declare_global(decl)
            num_words = info.num_words
            module.globals.append(
                IRGlobal(name=decl.name, num_words=num_words,
                         initializer=tuple(_wrap32(v) for v in decl.initializer))
            )
        for func in unit.functions:
            if func.name in self.functions:
                raise SemanticError(f"duplicate function {func.name!r}", func.line)
            if func.name in self.globals:
                raise SemanticError(
                    f"{func.name!r} declared both as global and function", func.line
                )
            self.functions[func.name] = _FunctionSignature(
                func.name, len(func.parameters), func.returns_value
            )
        if "main" not in self.functions:
            raise SemanticError("program has no 'main' function")
        for func in unit.functions:
            module.functions.append(self._lower_function(func))
        return module

    def _declare_global(self, decl: GlobalVar) -> _GlobalInfo:
        if decl.name in self.globals:
            raise SemanticError(f"duplicate global {decl.name!r}", decl.line)
        if decl.size is not None:
            num_words = decl.size
            if num_words <= 0:
                raise SemanticError(f"array {decl.name!r} must have positive size",
                                    decl.line)
            if len(decl.initializer) > num_words:
                raise SemanticError(
                    f"too many initializers for {decl.name!r}", decl.line
                )
            info = _GlobalInfo(decl.name, True, num_words)
        else:
            if len(decl.initializer) > 1:
                raise SemanticError(
                    f"scalar {decl.name!r} initialised with a list", decl.line
                )
            info = _GlobalInfo(decl.name, False, 1)
        self.globals[decl.name] = info
        return info

    # ---------------------------------------------------------------- functions
    def _lower_function(self, func: Function) -> IRFunction:
        self._body = []
        self._scope = {}
        self._temp_pool = []
        self._next_temp = 0
        self._next_label = 0
        self._function_name = func.name
        self._loop_stack = []

        if len(func.parameters) > 6:
            raise SemanticError(
                f"function {func.name!r} has more than 6 parameters", func.line
            )
        for param in func.parameters:
            if param.name in self._scope:
                raise SemanticError(f"duplicate parameter {param.name!r}", param.line)
            self._scope[param.name] = Reg(param.name)

        self._statement(func.body)
        # Fall off the end: synthesise "return 0" / "return".
        if not self._body or not isinstance(self._body[-1], Return):
            self._body.append(Return(Const(0) if func.returns_value else None))

        return IRFunction(
            name=func.name,
            parameters=[p.name for p in func.parameters],
            body=self._body,
            returns_value=func.returns_value,
        )

    # ------------------------------------------------------------------ helpers
    def _emit(self, instr: IRInstr) -> None:
        self._body.append(instr)

    def _new_temp(self) -> Reg:
        if self._temp_pool:
            return Reg(self._temp_pool.pop())
        name = f"%t{self._next_temp}"
        self._next_temp += 1
        return Reg(name)

    def _release(self, operand: Operand) -> None:
        """Return a compiler temporary to the free pool after its last use."""
        if isinstance(operand, Reg) and operand.is_temp and operand.name not in self._temp_pool:
            self._temp_pool.append(operand.name)

    def _new_label(self, hint: str) -> str:
        name = f"L_{self._function_name}_{hint}_{self._next_label}"
        self._next_label += 1
        return name

    def _lookup_scalar(self, name: str, line: int) -> Optional[Reg]:
        """Resolve ``name`` as a scalar: local register or global scalar."""
        if name in self._scope:
            return self._scope[name]
        return None

    # --------------------------------------------------------------- statements
    def _statement(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            for inner in stmt.statements:
                self._statement(inner)
        elif isinstance(stmt, LocalDecl):
            self._local_decl(stmt)
        elif isinstance(stmt, Assign):
            self._assign(stmt)
        elif isinstance(stmt, IfStmt):
            self._if(stmt)
        elif isinstance(stmt, WhileStmt):
            self._while(stmt)
        elif isinstance(stmt, DoWhileStmt):
            self._do_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._for(stmt)
        elif isinstance(stmt, ReturnStmt):
            self._return(stmt)
        elif isinstance(stmt, BreakStmt):
            if not self._loop_stack:
                raise SemanticError("'break' outside of a loop", stmt.line)
            self._emit(Jump(self._loop_stack[-1][0]))
        elif isinstance(stmt, ContinueStmt):
            if not self._loop_stack:
                raise SemanticError("'continue' outside of a loop", stmt.line)
            self._emit(Jump(self._loop_stack[-1][1]))
        elif isinstance(stmt, ExprStmt):
            value = self._expression(stmt.expression)
            self._release(value)
        else:  # pragma: no cover - defensive
            raise SemanticError(f"unsupported statement {type(stmt).__name__}", stmt.line)

    def _local_decl(self, stmt: LocalDecl) -> None:
        if stmt.name in self._scope:
            raise SemanticError(f"duplicate local {stmt.name!r}", stmt.line)
        register = Reg(stmt.name)
        self._scope[stmt.name] = register
        if stmt.initializer is not None:
            value = self._expression(stmt.initializer)
            self._emit(Copy(register, value))
            self._release(value)
        else:
            self._emit(Copy(register, Const(0)))

    def _assign(self, stmt: Assign) -> None:
        value = self._expression(stmt.value)
        target = stmt.target
        if isinstance(target, VarRef):
            local = self._lookup_scalar(target.name, target.line)
            if local is not None:
                self._emit(Copy(local, value))
            else:
                info = self.globals.get(target.name)
                if info is None:
                    raise SemanticError(f"undefined variable {target.name!r}", target.line)
                if info.is_array:
                    raise SemanticError(
                        f"array {target.name!r} used without an index", target.line
                    )
                self._emit(StoreGlobal(target.name, value))
        elif isinstance(target, ArrayRef):
            info = self.globals.get(target.name)
            if info is None or not info.is_array:
                raise SemanticError(f"{target.name!r} is not a global array", target.line)
            index = self._expression(target.index)
            self._emit(StoreArray(target.name, index, value))
            self._release(index)
        else:  # pragma: no cover - parser prevents this
            raise SemanticError("invalid assignment target", stmt.line)
        self._release(value)

    def _if(self, stmt: IfStmt) -> None:
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        target = else_label if stmt.else_body is not None else end_label
        self._cond_jump(stmt.condition, target, jump_if_true=False)
        self._statement(stmt.then_body)
        if stmt.else_body is not None:
            self._emit(Jump(end_label))
            self._emit(Label(else_label))
            self._statement(stmt.else_body)
        self._emit(Label(end_label))

    def _while(self, stmt: WhileStmt) -> None:
        body_label = self._new_label("loop")
        test_label = self._new_label("test")
        end_label = self._new_label("endloop")
        self._emit(Jump(test_label))
        self._emit(Label(body_label))
        self._loop_stack.append((end_label, test_label))
        self._statement(stmt.body)
        self._loop_stack.pop()
        self._emit(Label(test_label))
        self._cond_jump(stmt.condition, body_label, jump_if_true=True)
        self._emit(Label(end_label))

    def _do_while(self, stmt: DoWhileStmt) -> None:
        body_label = self._new_label("loop")
        test_label = self._new_label("test")
        end_label = self._new_label("endloop")
        self._emit(Label(body_label))
        self._loop_stack.append((end_label, test_label))
        self._statement(stmt.body)
        self._loop_stack.pop()
        self._emit(Label(test_label))
        self._cond_jump(stmt.condition, body_label, jump_if_true=True)
        self._emit(Label(end_label))

    def _for(self, stmt: ForStmt) -> None:
        body_label = self._new_label("loop")
        update_label = self._new_label("update")
        test_label = self._new_label("test")
        end_label = self._new_label("endloop")
        if stmt.init is not None:
            self._statement(stmt.init)
        self._emit(Jump(test_label))
        self._emit(Label(body_label))
        self._loop_stack.append((end_label, update_label))
        self._statement(stmt.body)
        self._loop_stack.pop()
        self._emit(Label(update_label))
        if stmt.update is not None:
            self._statement(stmt.update)
        self._emit(Label(test_label))
        if stmt.condition is not None:
            self._cond_jump(stmt.condition, body_label, jump_if_true=True)
        else:
            self._emit(Jump(body_label))
        self._emit(Label(end_label))

    def _return(self, stmt: ReturnStmt) -> None:
        signature = self.functions[self._function_name]
        if stmt.value is not None:
            if not signature.returns_value:
                raise SemanticError(
                    f"void function {self._function_name!r} returns a value", stmt.line
                )
            value = self._expression(stmt.value)
            self._emit(Return(value))
            self._release(value)
        else:
            self._emit(Return(Const(0) if signature.returns_value else None))

    # ------------------------------------------------------------- conditions
    def _cond_jump(self, expr: Expr, target: str, jump_if_true: bool) -> None:
        """Emit control flow that jumps to ``target`` when the truth value of
        ``expr`` equals ``jump_if_true``."""
        if isinstance(expr, BinaryOp) and expr.op in _RELOP_BY_TOKEN:
            left = self._expression(expr.left)
            right = self._expression(expr.right)
            relop = _RELOP_BY_TOKEN[expr.op]
            if not jump_if_true:
                relop = relop.negate()
            self._emit(CondJump(left, relop, right, target))
            self._release(left)
            self._release(right)
            return
        if isinstance(expr, BinaryOp) and expr.op == "&&":
            if jump_if_true:
                skip = self._new_label("and")
                self._cond_jump(expr.left, skip, jump_if_true=False)
                self._cond_jump(expr.right, target, jump_if_true=True)
                self._emit(Label(skip))
            else:
                self._cond_jump(expr.left, target, jump_if_true=False)
                self._cond_jump(expr.right, target, jump_if_true=False)
            return
        if isinstance(expr, BinaryOp) and expr.op == "||":
            if jump_if_true:
                self._cond_jump(expr.left, target, jump_if_true=True)
                self._cond_jump(expr.right, target, jump_if_true=True)
            else:
                skip = self._new_label("or")
                self._cond_jump(expr.left, skip, jump_if_true=True)
                self._cond_jump(expr.right, target, jump_if_true=False)
                self._emit(Label(skip))
            return
        if isinstance(expr, UnaryOp) and expr.op == "!":
            self._cond_jump(expr.operand, target, jump_if_true=not jump_if_true)
            return
        if isinstance(expr, IntLiteral):
            truth = expr.value != 0
            if truth == jump_if_true:
                self._emit(Jump(target))
            return
        value = self._expression(expr)
        relop = RelOp.NE if jump_if_true else RelOp.EQ
        self._emit(CondJump(value, relop, Const(0), target))
        self._release(value)

    # ------------------------------------------------------------- expressions
    def _expression(self, expr: Expr) -> Operand:
        if isinstance(expr, IntLiteral):
            return Const(_wrap32(expr.value))
        if isinstance(expr, VarRef):
            return self._var_ref(expr)
        if isinstance(expr, ArrayRef):
            return self._array_ref(expr)
        if isinstance(expr, UnaryOp):
            return self._unary(expr)
        if isinstance(expr, BinaryOp):
            return self._binary(expr)
        if isinstance(expr, CallExpr):
            return self._call(expr)
        raise SemanticError(f"unsupported expression {type(expr).__name__}", expr.line)

    def _var_ref(self, expr: VarRef) -> Operand:
        local = self._lookup_scalar(expr.name, expr.line)
        if local is not None:
            return local
        info = self.globals.get(expr.name)
        if info is None:
            raise SemanticError(f"undefined variable {expr.name!r}", expr.line)
        if info.is_array:
            raise SemanticError(f"array {expr.name!r} used without an index", expr.line)
        dest = self._new_temp()
        self._emit(LoadGlobal(dest, expr.name))
        return dest

    def _array_ref(self, expr: ArrayRef) -> Operand:
        info = self.globals.get(expr.name)
        if info is None or not info.is_array:
            raise SemanticError(f"{expr.name!r} is not a global array", expr.line)
        index = self._expression(expr.index)
        dest = self._new_temp()
        self._emit(LoadArray(dest, expr.name, index))
        self._release(index)
        return dest

    def _unary(self, expr: UnaryOp) -> Operand:
        if expr.op == "!":
            return self._materialize_condition(expr)
        operand = self._expression(expr.operand)
        if isinstance(operand, Const):
            if expr.op == "-":
                return Const(_wrap32(-operand.value))
            if expr.op == "~":
                return Const(_wrap32(~operand.value))
        dest = self._new_temp()
        self._emit(UnOp(dest, "neg" if expr.op == "-" else "not", operand))
        self._release(operand)
        return dest

    def _binary(self, expr: BinaryOp) -> Operand:
        if expr.op in _RELOP_BY_TOKEN or expr.op in ("&&", "||"):
            return self._materialize_condition(expr)
        kind = _BINOP_BY_TOKEN[expr.op]
        left = self._expression(expr.left)
        right = self._expression(expr.right)
        folded = self._fold(kind, left, right, expr.line)
        if folded is not None:
            # Only release operands that are not themselves the folded result
            # (e.g. ``x + 0`` folds to ``x``, which stays live in the caller).
            if folded is not left:
                self._release(left)
            if folded is not right:
                self._release(right)
            return folded
        dest = self._new_temp()
        self._emit(BinOp(dest, kind, left, right))
        self._release(left)
        self._release(right)
        return dest

    def _fold(self, kind: BinOpKind, left: Operand, right: Operand,
              line: int) -> Optional[Operand]:
        """Constant folding and trivial algebraic simplification."""
        if isinstance(left, Const) and isinstance(right, Const):
            a, b = left.value, right.value
            try:
                value = {
                    BinOpKind.ADD: lambda: a + b,
                    BinOpKind.SUB: lambda: a - b,
                    BinOpKind.MUL: lambda: a * b,
                    BinOpKind.DIV: lambda: int(a / b) if b else 0,
                    BinOpKind.MOD: lambda: int(a - int(a / b) * b) if b else 0,
                    BinOpKind.AND: lambda: a & b,
                    BinOpKind.OR: lambda: a | b,
                    BinOpKind.XOR: lambda: a ^ b,
                    BinOpKind.SHL: lambda: a << (b & 31),
                    BinOpKind.SHR: lambda: a >> (b & 31),
                }[kind]()
            except ZeroDivisionError:  # pragma: no cover - guarded above
                value = 0
            return Const(_wrap32(value))
        # x + 0, x - 0, x * 1, x << 0, x >> 0, x | 0, x ^ 0 simplify to x.
        if isinstance(right, Const) and right.value == 0 and kind in (
            BinOpKind.ADD, BinOpKind.SUB, BinOpKind.SHL, BinOpKind.SHR,
            BinOpKind.OR, BinOpKind.XOR,
        ):
            return left
        if isinstance(right, Const) and right.value == 1 and kind in (
            BinOpKind.MUL, BinOpKind.DIV,
        ):
            return left
        if isinstance(left, Const) and left.value == 0 and kind is BinOpKind.ADD:
            return right
        if isinstance(left, Const) and left.value == 0 and kind is BinOpKind.MUL:
            return Const(0)
        if isinstance(right, Const) and right.value == 0 and kind is BinOpKind.MUL:
            return Const(0)
        return None

    def _materialize_condition(self, expr: Expr) -> Operand:
        """Produce the 0/1 value of a boolean expression in value context."""
        dest = self._new_temp()
        skip = self._new_label("bool")
        self._emit(Copy(dest, Const(0)))
        self._cond_jump(expr, skip, jump_if_true=False)
        self._emit(Copy(dest, Const(1)))
        self._emit(Label(skip))
        return dest

    def _call(self, expr: CallExpr) -> Operand:
        signature = self.functions.get(expr.name)
        if signature is None:
            raise SemanticError(f"call to undefined function {expr.name!r}", expr.line)
        if len(expr.args) != signature.arity:
            raise SemanticError(
                f"{expr.name!r} expects {signature.arity} arguments, "
                f"got {len(expr.args)}",
                expr.line,
            )
        args = [self._expression(arg) for arg in expr.args]
        dest = self._new_temp() if signature.returns_value else None
        self._emit(Call(dest, expr.name, tuple(args)))
        for arg in args:
            self._release(arg)
        if dest is None:
            return Const(0)
        return dest


def lower_to_ir(unit: TranslationUnit) -> IRModule:
    """Convenience wrapper around :class:`IRGenerator`."""
    return IRGenerator().generate(unit)
