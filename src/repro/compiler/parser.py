"""Recursive-descent parser for the kernel language.

Grammar (EBNF, whitespace and comments already removed by the lexer)::

    translation_unit := (global_decl | function)*
    global_decl      := "int" IDENT ("[" NUMBER "]")? ("=" initializer)? ";"
    initializer      := constant | "{" constant ("," constant)* "}"
    constant         := ("-")? NUMBER
    function         := ("int" | "void") IDENT "(" parameters ")" block
    parameters       := ("int" IDENT ("," "int" IDENT)*)?
    block            := "{" (local_decl | statement)* "}"
    local_decl       := "int" IDENT ("=" expression)?
                            ("," IDENT ("=" expression)?)* ";"
    statement        := block | if | while | do_while | for | return
                      | "break" ";" | "continue" ";"
                      | assignment ";" | expression ";" | ";"
    assignment       := lvalue "=" expression
    lvalue           := IDENT | IDENT "[" expression "]"
    if               := "if" "(" expression ")" statement ("else" statement)?
    while            := "while" "(" expression ")" statement
    do_while         := "do" statement "while" "(" expression ")" ";"
    for              := "for" "(" assignment? ";" expression? ";" assignment? ")"
                            statement
    return           := "return" expression? ";"

Expression precedence follows C: ``||`` < ``&&`` < ``|`` < ``^`` < ``&`` <
equality < relational < shifts < additive < multiplicative < unary.
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    ArrayRef,
    Assign,
    BinaryOp,
    Block,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    Function,
    GlobalVar,
    IfStmt,
    IntLiteral,
    LocalDecl,
    Parameter,
    ReturnStmt,
    Stmt,
    TranslationUnit,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from .errors import ParseError
from .lexer import Token, tokenize

#: Binary operator precedence levels, lowest binding first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------ cursor
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise ParseError(f"expected {text!r}, found {self.current.text!r}",
                             self.current.line)
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        if not self.current.is_keyword(text):
            raise ParseError(f"expected {text!r}, found {self.current.text!r}",
                             self.current.line)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise ParseError(f"expected identifier, found {self.current.text!r}",
                             self.current.line)
        return self.advance()

    def accept_op(self, text: str) -> bool:
        if self.current.is_op(text):
            self.advance()
            return True
        return False

    # ----------------------------------------------------------------- top level
    def parse(self) -> TranslationUnit:
        unit = TranslationUnit(line=1)
        while self.current.kind != "eof":
            if not (self.current.is_keyword("int") or self.current.is_keyword("void")):
                raise ParseError(
                    f"expected declaration, found {self.current.text!r}",
                    self.current.line,
                )
            # Distinguish a function from a global by looking past the name.
            next_next = self.tokens[self.position + 2] \
                if self.position + 2 < len(self.tokens) else self.current
            if next_next.is_op("("):
                unit.functions.append(self._function())
            else:
                unit.globals.append(self._global_decl())
        return unit

    def _global_decl(self) -> GlobalVar:
        line = self.current.line
        self.expect_keyword("int")
        name = self.expect_ident().text
        size: Optional[int] = None
        initializer: List[int] = []
        if self.accept_op("["):
            size_token = self.advance()
            if size_token.kind != "number":
                raise ParseError("array size must be a constant", size_token.line)
            size = size_token.value
            self.expect_op("]")
        if self.accept_op("="):
            if self.accept_op("{"):
                while not self.current.is_op("}"):
                    initializer.append(self._constant())
                    if not self.current.is_op("}"):
                        self.expect_op(",")
                self.expect_op("}")
            else:
                initializer.append(self._constant())
        self.expect_op(";")
        return GlobalVar(line=line, name=name, size=size, initializer=tuple(initializer))

    def _constant(self) -> int:
        negative = self.accept_op("-")
        token = self.advance()
        if token.kind != "number":
            raise ParseError("expected constant", token.line)
        return -token.value if negative else token.value

    def _function(self) -> Function:
        line = self.current.line
        returns_value = self.current.is_keyword("int")
        self.advance()  # int / void
        name = self.expect_ident().text
        self.expect_op("(")
        parameters: List[Parameter] = []
        if not self.current.is_op(")"):
            while True:
                self.expect_keyword("int")
                param = self.expect_ident()
                parameters.append(Parameter(line=param.line, name=param.text))
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        body = self._block()
        return Function(line=line, name=name, parameters=parameters, body=body,
                        returns_value=returns_value)

    # ----------------------------------------------------------------- statements
    def _block(self) -> Block:
        line = self.current.line
        self.expect_op("{")
        statements: List[Stmt] = []
        while not self.current.is_op("}"):
            if self.current.is_keyword("int"):
                statements.extend(self._local_decl())
            else:
                statements.append(self._statement())
        self.expect_op("}")
        return Block(line=line, statements=statements)

    def _local_decl(self) -> List[LocalDecl]:
        line = self.current.line
        self.expect_keyword("int")
        decls: List[LocalDecl] = []
        while True:
            name = self.expect_ident().text
            initializer = None
            if self.accept_op("="):
                initializer = self._expression()
            decls.append(LocalDecl(line=line, name=name, initializer=initializer))
            if not self.accept_op(","):
                break
        self.expect_op(";")
        return decls

    def _statement(self) -> Stmt:
        token = self.current
        if token.is_op("{"):
            return self._block()
        if token.is_keyword("if"):
            return self._if()
        if token.is_keyword("while"):
            return self._while()
        if token.is_keyword("do"):
            return self._do_while()
        if token.is_keyword("for"):
            return self._for()
        if token.is_keyword("return"):
            return self._return()
        if token.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return BreakStmt(line=token.line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ContinueStmt(line=token.line)
        if token.is_op(";"):
            self.advance()
            return Block(line=token.line, statements=[])
        stmt = self._simple_statement()
        self.expect_op(";")
        return stmt

    def _simple_statement(self) -> Stmt:
        """An assignment or expression statement (no trailing semicolon)."""
        line = self.current.line
        expr = self._expression()
        if self.current.is_op("="):
            if not isinstance(expr, (VarRef, ArrayRef)):
                raise ParseError("invalid assignment target", line)
            self.advance()
            value = self._expression()
            return Assign(line=line, target=expr, value=value)
        return ExprStmt(line=line, expression=expr)

    def _if(self) -> IfStmt:
        line = self.current.line
        self.expect_keyword("if")
        self.expect_op("(")
        condition = self._expression()
        self.expect_op(")")
        then_body = self._statement()
        else_body = None
        if self.current.is_keyword("else"):
            self.advance()
            else_body = self._statement()
        return IfStmt(line=line, condition=condition, then_body=then_body,
                      else_body=else_body)

    def _while(self) -> WhileStmt:
        line = self.current.line
        self.expect_keyword("while")
        self.expect_op("(")
        condition = self._expression()
        self.expect_op(")")
        body = self._statement()
        return WhileStmt(line=line, condition=condition, body=body)

    def _do_while(self) -> DoWhileStmt:
        line = self.current.line
        self.expect_keyword("do")
        body = self._statement()
        self.expect_keyword("while")
        self.expect_op("(")
        condition = self._expression()
        self.expect_op(")")
        self.expect_op(";")
        return DoWhileStmt(line=line, body=body, condition=condition)

    def _for(self) -> ForStmt:
        line = self.current.line
        self.expect_keyword("for")
        self.expect_op("(")
        init = None
        if not self.current.is_op(";"):
            init = self._simple_statement()
        self.expect_op(";")
        condition = None
        if not self.current.is_op(";"):
            condition = self._expression()
        self.expect_op(";")
        update = None
        if not self.current.is_op(")"):
            update = self._simple_statement()
        self.expect_op(")")
        body = self._statement()
        return ForStmt(line=line, init=init, condition=condition, update=update, body=body)

    def _return(self) -> ReturnStmt:
        line = self.current.line
        self.expect_keyword("return")
        value = None
        if not self.current.is_op(";"):
            value = self._expression()
        self.expect_op(";")
        return ReturnStmt(line=line, value=value)

    # ---------------------------------------------------------------- expressions
    def _expression(self) -> Expr:
        return self._binary(0)

    def _binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        left = self._binary(level + 1)
        while self.current.kind == "op" and self.current.text in _BINARY_LEVELS[level]:
            op = self.advance()
            right = self._binary(level + 1)
            left = BinaryOp(line=op.line, op=op.text, left=left, right=right)
        return left

    def _unary(self) -> Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "~", "!"):
            self.advance()
            operand = self._unary()
            return UnaryOp(line=token.line, op=token.text, operand=operand)
        if token.is_op("+"):
            self.advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return IntLiteral(line=token.line, value=token.value)
        if token.is_op("("):
            self.advance()
            expr = self._expression()
            self.expect_op(")")
            return expr
        if token.kind == "ident":
            name = self.advance().text
            if self.accept_op("("):
                args: List[Expr] = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self._expression())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                return CallExpr(line=token.line, name=name, args=args)
            if self.accept_op("["):
                index = self._expression()
                self.expect_op("]")
                return ArrayRef(line=token.line, name=name, index=index)
            return VarRef(line=token.line, name=name)
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> TranslationUnit:
    """Parse kernel-language ``source`` into a :class:`TranslationUnit`."""
    return Parser(tokenize(source)).parse()
