"""Kernel-language compiler targeting the MicroBlaze-like soft core.

The compiler exists for two reasons.  First, the benchmark kernels of
:mod:`repro.apps` need realistic MicroBlaze binaries for the warp
processor's binary-level decompilation to chew on.  Second, the paper's
Section 2 configurability study is fundamentally a *compiler* effect — the
code emitted for a MicroBlaze without a hardware multiplier or barrel
shifter calls software routines or strings together successive adds — so
the compiler takes the processor configuration as an input and adapts its
output accordingly.
"""

from .ast_nodes import TranslationUnit
from .driver import (CompilationResult, clear_compile_cache,
                     compile_cache_stats, compile_source,
                     compile_source_cached, compile_to_program)
from .errors import CompileError, LexerError, ParseError, SemanticError
from .ir import IRModule
from .irgen import lower_to_ir
from .lexer import Token, tokenize
from .lowering import lower_operations
from .parser import parse

__all__ = [
    "TranslationUnit",
    "CompilationResult",
    "compile_source",
    "compile_source_cached",
    "compile_to_program",
    "clear_compile_cache",
    "compile_cache_stats",
    "CompileError",
    "LexerError",
    "ParseError",
    "SemanticError",
    "IRModule",
    "lower_to_ir",
    "Token",
    "tokenize",
    "lower_operations",
    "parse",
]
