"""Configuration-aware operation lowering.

Section 2 of the paper explains how the MicroBlaze's configurable options
shape the generated code: *"If the MicroBlaze processor is configured
without the hardware barrel shifter or hardware multiplier, the resulting
application binary will perform an n-bit shift by using n successive add
operations"* and *"Without a hardware multiplier, the compiler will use a
software function to perform every multiplication."*

This pass rewrites IR operations that the selected
:class:`~repro.microblaze.config.MicroBlazeConfig` cannot execute directly:

===========================  =================================================
Operation                    Lowering when the unit is absent
===========================  =================================================
``mul``                      power-of-two constant → shift, otherwise a call
                             to the ``__mulsi3`` software multiply routine
``div``                      call to ``__divsi3``
``mod``                      always a call to ``__modsi3`` (the ISA has no
                             remainder instruction)
``shl``/``shr`` by variable  call to ``__ashl`` / ``__ashr`` when there is
                             no barrel shifter (constant shifts stay in the
                             IR and are expanded inline by the code
                             generator into successive adds / single-bit
                             shifts)
===========================  =================================================

The pass records which runtime routines it introduced so the driver links
only the library code the program actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..microblaze.config import MicroBlazeConfig
from .ir import (
    BinOp,
    BinOpKind,
    Call,
    Const,
    Copy,
    IRFunction,
    IRInstr,
    IRModule,
    Operand,
)

#: Runtime-library entry points the lowering pass may introduce.
RUNTIME_MULTIPLY = "__mulsi3"
RUNTIME_DIVIDE = "__divsi3"
RUNTIME_MODULO = "__modsi3"
RUNTIME_SHIFT_LEFT = "__ashl"
RUNTIME_SHIFT_RIGHT = "__ashr"


def _log2_exact(value: int) -> Optional[int]:
    """Return k when ``value == 2**k`` (k >= 0), otherwise ``None``."""
    if value <= 0:
        return None
    if value & (value - 1):
        return None
    return value.bit_length() - 1


@dataclass
class LoweringResult:
    """Outcome of lowering one module."""

    module: IRModule
    runtime_routines: Set[str] = field(default_factory=set)


class OperationLowering:
    """Rewrites IR operations according to the processor configuration."""

    def __init__(self, config: MicroBlazeConfig):
        self.config = config
        self.runtime_routines: Set[str] = set()

    # ------------------------------------------------------------------ driver
    def lower_module(self, module: IRModule) -> LoweringResult:
        for function in module.functions:
            function.body = self._lower_body(function)
        return LoweringResult(module=module, runtime_routines=set(self.runtime_routines))

    def _lower_body(self, function: IRFunction) -> List[IRInstr]:
        lowered: List[IRInstr] = []
        for instr in function.body:
            if isinstance(instr, BinOp):
                lowered.extend(self._lower_binop(instr))
            else:
                lowered.append(instr)
        return lowered

    # ---------------------------------------------------------------- operations
    def _lower_binop(self, instr: BinOp) -> List[IRInstr]:
        kind = instr.op
        if kind is BinOpKind.MUL:
            return self._lower_multiply(instr)
        if kind is BinOpKind.DIV:
            return self._lower_divide(instr)
        if kind is BinOpKind.MOD:
            self.runtime_routines.add(RUNTIME_MODULO)
            return [Call(instr.dest, RUNTIME_MODULO, (instr.left, instr.right))]
        if kind in (BinOpKind.SHL, BinOpKind.SHR):
            return self._lower_shift(instr)
        return [instr]

    def _lower_multiply(self, instr: BinOp) -> List[IRInstr]:
        if self.config.use_multiplier:
            return [instr]
        # Try to turn a multiply by a power-of-two constant into a shift,
        # which the shift lowering below may further expand.
        for first, second in ((instr.left, instr.right), (instr.right, instr.left)):
            if isinstance(second, Const):
                shift = _log2_exact(second.value)
                if shift is not None:
                    shifted = BinOp(instr.dest, BinOpKind.SHL, first, Const(shift))
                    return self._lower_shift(shifted)
        # Multiplication by a constant with few set bits decomposes into a
        # short shift/add sequence, which is what a production compiler emits
        # for the address arithmetic of array accesses (e.g. ``i * 14``).
        for first, second in ((instr.left, instr.right), (instr.right, instr.left)):
            if isinstance(second, Const) and second.value > 0 \
                    and bin(second.value).count("1") <= 4:
                return self._expand_constant_multiply(instr.dest, first, second.value)
        self.runtime_routines.add(RUNTIME_MULTIPLY)
        return [Call(instr.dest, RUNTIME_MULTIPLY, (instr.left, instr.right))]

    def _expand_constant_multiply(self, dest, left: Operand, constant: int) -> List[IRInstr]:
        """Expand ``dest = left * constant`` into shifts and adds."""
        from .ir import Reg

        instrs: List[IRInstr] = []
        partial = Reg("%mullo_sum")
        scratch = Reg("%mullo_term")
        bits = [b for b in range(constant.bit_length()) if constant & (1 << b)]
        first_bit = bits[0]
        first_term = BinOp(partial, BinOpKind.SHL, left, Const(first_bit))
        instrs.extend(self._lower_shift(first_term) if first_bit else [Copy(partial, left)])
        for bit in bits[1:]:
            term = BinOp(scratch, BinOpKind.SHL, left, Const(bit))
            instrs.extend(self._lower_shift(term))
            instrs.append(BinOp(partial, BinOpKind.ADD, partial, scratch))
        instrs.append(Copy(dest, partial))
        return instrs

    def _lower_divide(self, instr: BinOp) -> List[IRInstr]:
        if isinstance(instr.right, Const):
            shift = _log2_exact(instr.right.value)
            if shift is not None and shift == 0:
                return [instr]
        if self.config.use_divider:
            return [instr]
        self.runtime_routines.add(RUNTIME_DIVIDE)
        return [Call(instr.dest, RUNTIME_DIVIDE, (instr.left, instr.right))]

    def _lower_shift(self, instr: BinOp) -> List[IRInstr]:
        if self.config.use_barrel_shifter:
            return [instr]
        if isinstance(instr.right, Const):
            # Constant shift amounts are expanded inline by the code
            # generator (n successive adds for a left shift, n single-bit
            # arithmetic shifts for a right shift), as the paper describes.
            return [instr]
        routine = RUNTIME_SHIFT_LEFT if instr.op is BinOpKind.SHL else RUNTIME_SHIFT_RIGHT
        self.runtime_routines.add(routine)
        return [Call(instr.dest, routine, (instr.left, instr.right))]


def lower_operations(module: IRModule, config: MicroBlazeConfig) -> LoweringResult:
    """Lower ``module`` for ``config`` (convenience wrapper)."""
    return OperationLowering(config).lower_module(module)
