"""Compiler driver: kernel-language source → MicroBlaze program image.

The driver strings the phases together::

    source text ──parse──► AST ──lower──► IR ──config-aware lowering──►
        lowered IR ──codegen──► assembly ──assemble──► Program

Because the paper's Section 2 study depends on the *compiler* adapting to
the processor configuration (software multiply when there is no hardware
multiplier, successive-add shifts when there is no barrel shifter), the
configuration is a first-class input of :func:`compile_source`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from ..caching import lru_memoize
from ..isa.assembler import assemble
from ..isa.program import Program
from ..microblaze.config import MicroBlazeConfig, PAPER_CONFIG
from .ast_nodes import TranslationUnit
from .codegen import ModuleCodeGenerator
from .ir import IRModule
from .irgen import lower_to_ir
from .lowering import lower_operations
from .parser import parse


@dataclass
class CompilationResult:
    """Everything produced while compiling one program.

    Keeping the intermediate artifacts around makes the examples and tests
    much more informative: one can inspect the IR that fed the code
    generator or the exact assembly that was assembled into the binary.
    """

    program: Program
    assembly: str
    ir_module: IRModule
    ast: TranslationUnit
    config: MicroBlazeConfig
    runtime_routines: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.program.name


def compile_source(
    source: str,
    name: str = "program",
    config: MicroBlazeConfig = PAPER_CONFIG,
) -> CompilationResult:
    """Compile kernel-language ``source`` for the given MicroBlaze config."""
    ast = parse(source)
    ir_module = lower_to_ir(ast)
    lowering = lower_operations(ir_module, config)
    generator = ModuleCodeGenerator(lowering.module, config,
                                    runtime_routines=lowering.runtime_routines)
    assembly = generator.generate()
    program = assemble(assembly, name=name)
    return CompilationResult(
        program=program,
        assembly=assembly,
        ir_module=lowering.module,
        ast=ast,
        config=config,
        runtime_routines=set(lowering.runtime_routines),
    )


def compile_to_program(
    source: str,
    name: str = "program",
    config: MicroBlazeConfig = PAPER_CONFIG,
) -> Program:
    """Compile ``source`` and return only the program image."""
    return compile_source(source, name=name, config=config).program


@lru_memoize(maxsize=128)
def _compile_source_memo(source: str, name: str,
                         config: MicroBlazeConfig) -> CompilationResult:
    return compile_source(source, name=name, config=config)


def compile_source_cached(
    source: str,
    name: str = "program",
    config: MicroBlazeConfig = PAPER_CONFIG,
) -> CompilationResult:
    """Memoized :func:`compile_source`.

    The evaluation harness, the Section 2 configurability study and the
    warp service's workers compile the same six benchmark sources over and
    over — once per processor configuration per study per session.
    Compilation is pure in ``(source, name, config)``
    (``MicroBlazeConfig`` is a frozen, hashable dataclass), so the result
    is shared.  Callers must treat the returned :class:`CompilationResult`
    as immutable: anything that patches the program (the warp flow does)
    must operate on ``result.program.copy()``.

    The backing store is the repo-wide :class:`repro.caching.BoundedLRU`
    (the same primitive the service's CAD artifact cache uses); tests can
    reset it through :func:`clear_compile_cache` and read its hit/miss
    counters through ``compile_cache_stats()``.
    """
    return _compile_source_memo(source, name, config)


def clear_compile_cache() -> None:
    """Drop every memoized compilation (used by cold-cache tests)."""
    _compile_source_memo.cache.clear()


def compile_cache_stats() -> dict:
    """Hit/miss accounting of the shared compilation cache."""
    return _compile_source_memo.cache.stats()
