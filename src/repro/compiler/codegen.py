"""MicroBlaze code generation from the lowered IR.

The code generator turns each :class:`~repro.compiler.ir.IRFunction` into
MicroBlaze assembly text.  Its register model is deliberately simple and
robust:

* every virtual register (named variable or compiler temporary) is given a
  *home* in a callee-saved register (``r19``–``r31``); functions whose
  register pressure exceeds the pool spill the remaining virtual registers
  to stack slots,
* ``r17`` and ``r18`` are reserved as code-generator scratch registers,
* arguments travel in ``r5``–``r10`` and results in ``r3`` per the
  MicroBlaze ABI, so calls never clobber a live home.

Because homes are callee saved, the generated code needs no caller-side
save/restore around calls — including the software multiply/divide/shift
library calls introduced by :mod:`~repro.compiler.lowering` — which keeps
the binaries clean and realistic for the warp processor's binary-level
decompilation.

The generator also honours the processor configuration directly: constant
shifts are emitted as barrel-shift instructions when the barrel shifter is
present, and expanded into the *n*-successive-adds / single-bit-shift
sequences described in Section 2 of the paper when it is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..microblaze.config import MicroBlazeConfig
from .errors import CompileError
from .ir import (
    BinOp,
    BinOpKind,
    Call,
    CondJump,
    Const,
    Copy,
    IRFunction,
    IRGlobal,
    IRInstr,
    IRModule,
    Jump,
    Label,
    LoadArray,
    LoadGlobal,
    Operand,
    Reg,
    RelOp,
    Return,
    StoreArray,
    StoreGlobal,
    UnOp,
)

#: Callee-saved registers available as homes for virtual registers.
HOME_POOL: Tuple[int, ...] = tuple(range(19, 32))
#: Scratch registers reserved for the code generator.
SCRATCH_A = 18
SCRATCH_B = 17
#: Argument and return-value registers of the ABI.
ARG_REGS: Tuple[int, ...] = (5, 6, 7, 8, 9, 10)
RETURN_REG = 3
LINK_REG = 15
STACK_REG = 1

_BRANCH_BY_RELOP = {
    RelOp.EQ: "beqi",
    RelOp.NE: "bnei",
    RelOp.LT: "blti",
    RelOp.LE: "blei",
    RelOp.GT: "bgti",
    RelOp.GE: "bgei",
}

_IMMEDIATE_FORMS = {
    BinOpKind.ADD: "addi",
    BinOpKind.AND: "andi",
    BinOpKind.OR: "ori",
    BinOpKind.XOR: "xori",
    BinOpKind.MUL: "muli",
}

_REGISTER_FORMS = {
    BinOpKind.ADD: "add",
    BinOpKind.AND: "and",
    BinOpKind.OR: "or",
    BinOpKind.XOR: "xor",
    BinOpKind.MUL: "mul",
}


def _fits_imm16(value: int) -> bool:
    return -0x8000 <= value <= 0x7FFF


@dataclass
class _Home:
    """Physical location of a virtual register."""

    kind: str  # "reg" or "spill"
    register: int = 0
    offset: int = 0


class FunctionCodeGenerator:
    """Emits assembly for one IR function."""

    def __init__(self, function: IRFunction, config: MicroBlazeConfig):
        self.function = function
        self.config = config
        self.lines: List[str] = []
        self.homes: Dict[str, _Home] = {}
        self.used_callee_saved: List[int] = []
        self.frame_size = 4
        self._assign_homes()

    # -------------------------------------------------------------- allocation
    def _assign_homes(self) -> None:
        vregs = self.function.virtual_registers()
        spill_count = 0
        for index, name in enumerate(vregs):
            if index < len(HOME_POOL):
                register = HOME_POOL[index]
                self.homes[name] = _Home("reg", register=register)
                self.used_callee_saved.append(register)
            else:
                self.homes[name] = _Home("spill", offset=0)
                spill_count += 1
        # Frame layout: [0] saved r15, then saved callee-saved homes, then
        # spill slots.
        offset = 4 * (1 + len(self.used_callee_saved))
        for name in vregs:
            home = self.homes[name]
            if home.kind == "spill":
                home.offset = offset
                offset += 4
        self.frame_size = offset

    # ------------------------------------------------------------------ output
    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    # --------------------------------------------------------------- operands
    def _read(self, operand: Operand, scratch: int) -> int:
        """Ensure ``operand``'s value is in a register and return it."""
        if isinstance(operand, Const):
            self.emit(f"li r{scratch}, {operand.value}")
            return scratch
        home = self.homes[operand.name]
        if home.kind == "reg":
            return home.register
        self.emit(f"lwi r{scratch}, r{STACK_REG}, {home.offset}")
        return scratch

    def _dest(self, reg: Reg) -> Tuple[int, Optional[str]]:
        """Physical register to compute into, plus an optional store-back line."""
        home = self.homes[reg.name]
        if home.kind == "reg":
            return home.register, None
        return SCRATCH_B, f"swi r{SCRATCH_B}, r{STACK_REG}, {home.offset}"

    def _writeback(self, store_back: Optional[str]) -> None:
        if store_back is not None:
            self.emit(store_back)

    # ------------------------------------------------------------------ prologue
    def _prologue(self) -> None:
        self.emit_label(self.function.name)
        self.emit(f"addik r{STACK_REG}, r{STACK_REG}, {-self.frame_size}")
        self.emit(f"swi r{LINK_REG}, r{STACK_REG}, 0")
        for index, register in enumerate(self.used_callee_saved):
            self.emit(f"swi r{register}, r{STACK_REG}, {4 * (index + 1)}")
        for index, param in enumerate(self.function.parameters):
            if index >= len(ARG_REGS):
                raise CompileError(
                    f"function {self.function.name!r} has too many parameters"
                )
            home = self.homes[param]
            if home.kind == "reg":
                self.emit(f"add r{home.register}, r{ARG_REGS[index]}, r0")
            else:
                self.emit(f"swi r{ARG_REGS[index]}, r{STACK_REG}, {home.offset}")

    def _epilogue_label(self) -> str:
        return f"L_{self.function.name}_epilogue"

    def _epilogue(self) -> None:
        self.emit_label(self._epilogue_label())
        for index, register in enumerate(self.used_callee_saved):
            self.emit(f"lwi r{register}, r{STACK_REG}, {4 * (index + 1)}")
        self.emit(f"lwi r{LINK_REG}, r{STACK_REG}, 0")
        self.emit(f"addik r{STACK_REG}, r{STACK_REG}, {self.frame_size}")
        self.emit(f"rtsd r{LINK_REG}, 8")
        self.emit("nop")

    # ------------------------------------------------------------------ driver
    def generate(self) -> List[str]:
        self._prologue()
        for instr in self.function.body:
            self._instruction(instr)
        self._epilogue()
        return self.lines

    # ------------------------------------------------------------ instructions
    def _instruction(self, instr: IRInstr) -> None:
        if isinstance(instr, Label):
            self.emit_label(instr.name)
        elif isinstance(instr, Jump):
            self.emit(f"bri {instr.target}")
        elif isinstance(instr, CondJump):
            self._cond_jump(instr)
        elif isinstance(instr, BinOp):
            self._binop(instr)
        elif isinstance(instr, UnOp):
            self._unop(instr)
        elif isinstance(instr, Copy):
            self._copy(instr)
        elif isinstance(instr, LoadGlobal):
            dest, back = self._dest(instr.dest)
            self.emit(f"lwi r{dest}, r0, {instr.symbol}")
            self._writeback(back)
        elif isinstance(instr, StoreGlobal):
            src = self._read(instr.src, SCRATCH_A)
            self.emit(f"swi r{src}, r0, {instr.symbol}")
        elif isinstance(instr, LoadArray):
            self._load_array(instr)
        elif isinstance(instr, StoreArray):
            self._store_array(instr)
        elif isinstance(instr, Call):
            self._call(instr)
        elif isinstance(instr, Return):
            self._return(instr)
        else:  # pragma: no cover - defensive
            raise CompileError(f"cannot generate code for {instr!r}")

    # --------------------------------------------------------------- control flow
    def _cond_jump(self, instr: CondJump) -> None:
        left, relop, right = instr.left, instr.relop, instr.right
        # Branch directly on a register when comparing against zero.
        if isinstance(right, Const) and right.value == 0 and isinstance(left, Reg):
            reg = self._read(left, SCRATCH_A)
            self.emit(f"{_BRANCH_BY_RELOP[relop]} r{reg}, {instr.target}")
            return
        if isinstance(left, Const) and left.value == 0 and isinstance(right, Reg):
            reg = self._read(right, SCRATCH_A)
            self.emit(f"{_BRANCH_BY_RELOP[relop.swap()]} r{reg}, {instr.target}")
            return
        left_reg = self._read(left, SCRATCH_A)
        right_reg = self._read(right, SCRATCH_B)
        # cmp rd, ra, rb computes sign(rb - ra); with ra=right, rb=left the
        # result's sign reflects (left - right), so the branch condition can
        # be applied unchanged.
        self.emit(f"cmp r{SCRATCH_A}, r{right_reg}, r{left_reg}")
        self.emit(f"{_BRANCH_BY_RELOP[relop]} r{SCRATCH_A}, {instr.target}")

    # ----------------------------------------------------------------- data ops
    def _copy(self, instr: Copy) -> None:
        dest, back = self._dest(instr.dest)
        if isinstance(instr.src, Const):
            self.emit(f"li r{dest}, {instr.src.value}")
        else:
            src = self._read(instr.src, SCRATCH_A)
            if src != dest:
                self.emit(f"add r{dest}, r{src}, r0")
        self._writeback(back)

    def _unop(self, instr: UnOp) -> None:
        dest, back = self._dest(instr.dest)
        src = self._read(instr.src, SCRATCH_A)
        if instr.op == "neg":
            self.emit(f"rsub r{dest}, r{src}, r0")
        elif instr.op == "not":
            self.emit(f"xori r{dest}, r{src}, -1")
        else:  # pragma: no cover - defensive
            raise CompileError(f"unknown unary op {instr.op!r}")
        self._writeback(back)

    def _binop(self, instr: BinOp) -> None:
        kind = instr.op
        if kind in (BinOpKind.SHL, BinOpKind.SHR):
            self._shift(instr)
            return
        if kind is BinOpKind.SUB:
            self._subtract(instr)
            return
        if kind is BinOpKind.DIV:
            self._divide(instr)
            return
        if kind is BinOpKind.MOD:  # pragma: no cover - lowered earlier
            raise CompileError("modulo must be lowered before code generation")

        dest, back = self._dest(instr.dest)
        left, right = instr.left, instr.right
        # Prefer an immediate form with the constant on the right.
        if isinstance(left, Const) and not isinstance(right, Const):
            left, right = right, left  # all remaining ops are commutative
        if isinstance(right, Const) and _fits_imm16(right.value) and kind in _IMMEDIATE_FORMS:
            left_reg = self._read(left, SCRATCH_A)
            self.emit(f"{_IMMEDIATE_FORMS[kind]} r{dest}, r{left_reg}, {right.value}")
        else:
            left_reg = self._read(left, SCRATCH_A)
            right_reg = self._read(right, SCRATCH_B)
            self.emit(f"{_REGISTER_FORMS[kind]} r{dest}, r{left_reg}, r{right_reg}")
        self._writeback(back)

    def _subtract(self, instr: BinOp) -> None:
        dest, back = self._dest(instr.dest)
        left, right = instr.left, instr.right
        if isinstance(right, Const) and _fits_imm16(-right.value):
            left_reg = self._read(left, SCRATCH_A)
            self.emit(f"addi r{dest}, r{left_reg}, {-right.value}")
        elif isinstance(left, Const) and _fits_imm16(left.value):
            right_reg = self._read(right, SCRATCH_A)
            self.emit(f"rsubi r{dest}, r{right_reg}, {left.value}")
        else:
            left_reg = self._read(left, SCRATCH_A)
            right_reg = self._read(right, SCRATCH_B)
            # rsub rd, ra, rb computes rb - ra.
            self.emit(f"rsub r{dest}, r{right_reg}, r{left_reg}")
        self._writeback(back)

    def _divide(self, instr: BinOp) -> None:
        if not self.config.use_divider:  # pragma: no cover - lowered earlier
            raise CompileError("divide must be lowered when there is no divider")
        dest, back = self._dest(instr.dest)
        left_reg = self._read(instr.left, SCRATCH_A)
        right_reg = self._read(instr.right, SCRATCH_B)
        # idiv rd, ra, rb computes rb / ra.
        self.emit(f"idiv r{dest}, r{right_reg}, r{left_reg}")
        self._writeback(back)

    def _shift(self, instr: BinOp) -> None:
        dest, back = self._dest(instr.dest)
        is_left_shift = instr.op is BinOpKind.SHL
        amount = instr.right
        if self.config.use_barrel_shifter:
            left_reg = self._read(instr.left, SCRATCH_A)
            if isinstance(amount, Const):
                mnemonic = "bslli" if is_left_shift else "bsrai"
                self.emit(f"{mnemonic} r{dest}, r{left_reg}, {amount.value & 31}")
            else:
                amount_reg = self._read(amount, SCRATCH_B)
                mnemonic = "bsll" if is_left_shift else "bsra"
                self.emit(f"{mnemonic} r{dest}, r{left_reg}, r{amount_reg}")
            self._writeback(back)
            return
        # No barrel shifter: constant shifts expand inline (variable shifts
        # were lowered to runtime calls).
        if not isinstance(amount, Const):  # pragma: no cover - lowered earlier
            raise CompileError("variable shift must be lowered without a barrel shifter")
        count = amount.value & 31
        left_reg = self._read(instr.left, SCRATCH_A)
        if left_reg != dest:
            self.emit(f"add r{dest}, r{left_reg}, r0")
        step = f"add r{dest}, r{dest}, r{dest}" if is_left_shift else f"sra r{dest}, r{dest}"
        for _ in range(count):
            self.emit(step)
        self._writeback(back)

    # -------------------------------------------------------------------- arrays
    def _element_address(self, symbol: str, index: Operand) -> Tuple[int, int]:
        """Compute the address of ``symbol[index]``.

        Returns ``(base_register, constant_offset)`` such that the access
        can be performed with ``lwi/swi reg, base_register, constant_offset``.
        """
        if isinstance(index, Const):
            self.emit(f"la r{SCRATCH_A}, {symbol}")
            return SCRATCH_A, 4 * index.value
        index_reg = self._read(index, SCRATCH_B)
        if self.config.use_barrel_shifter:
            self.emit(f"bslli r{SCRATCH_B}, r{index_reg}, 2")
        else:
            self.emit(f"add r{SCRATCH_B}, r{index_reg}, r{index_reg}")
            self.emit(f"add r{SCRATCH_B}, r{SCRATCH_B}, r{SCRATCH_B}")
        self.emit(f"la r{SCRATCH_A}, {symbol}")
        self.emit(f"add r{SCRATCH_A}, r{SCRATCH_A}, r{SCRATCH_B}")
        return SCRATCH_A, 0

    def _load_array(self, instr: LoadArray) -> None:
        base, offset = self._element_address(instr.symbol, instr.index)
        dest, back = self._dest(instr.dest)
        self.emit(f"lwi r{dest}, r{base}, {offset}")
        self._writeback(back)

    def _store_array(self, instr: StoreArray) -> None:
        base, offset = self._element_address(instr.symbol, instr.index)
        # The address lives in SCRATCH_A; SCRATCH_B is free again for the value.
        src = self._read(instr.src, SCRATCH_B)
        self.emit(f"swi r{src}, r{base}, {offset}")

    # --------------------------------------------------------------------- calls
    def _call(self, instr: Call) -> None:
        if len(instr.args) > len(ARG_REGS):
            raise CompileError(f"call to {instr.name!r} passes too many arguments")
        for index, arg in enumerate(instr.args):
            target = ARG_REGS[index]
            if isinstance(arg, Const):
                self.emit(f"li r{target}, {arg.value}")
            else:
                home = self.homes[arg.name]
                if home.kind == "reg":
                    self.emit(f"add r{target}, r{home.register}, r0")
                else:
                    self.emit(f"lwi r{target}, r{STACK_REG}, {home.offset}")
        self.emit(f"brlid r{LINK_REG}, {instr.name}")
        self.emit("nop")
        if instr.dest is not None:
            home = self.homes[instr.dest.name]
            if home.kind == "reg":
                self.emit(f"add r{home.register}, r{RETURN_REG}, r0")
            else:
                self.emit(f"swi r{RETURN_REG}, r{STACK_REG}, {home.offset}")

    def _return(self, instr: Return) -> None:
        if instr.value is not None:
            if isinstance(instr.value, Const):
                self.emit(f"li r{RETURN_REG}, {instr.value.value}")
            else:
                src = self._read(instr.value, SCRATCH_A)
                if src != RETURN_REG:
                    self.emit(f"add r{RETURN_REG}, r{src}, r0")
        self.emit(f"bri {self._epilogue_label()}")


class ModuleCodeGenerator:
    """Emits a whole assembly module (startup stub, functions, data)."""

    def __init__(self, module: IRModule, config: MicroBlazeConfig,
                 runtime_routines: Optional[set] = None):
        self.module = module
        self.config = config
        self.runtime_routines = set(runtime_routines or ())

    def generate(self) -> str:
        from .runtime import runtime_library, startup_stub

        lines: List[str] = [".text", ".entry _start"]
        lines.extend(startup_stub())
        for function in self.module.functions:
            generator = FunctionCodeGenerator(function, self.config)
            lines.extend(generator.generate())
        lines.extend(runtime_library(self.runtime_routines, self.config))
        lines.append(".data")
        lines.extend(self._data_section())
        return "\n".join(lines) + "\n"

    def _data_section(self) -> List[str]:
        lines: List[str] = []
        for glob in self.module.globals:
            lines.extend(self._global_words(glob))
        return lines

    @staticmethod
    def _global_words(glob: IRGlobal) -> List[str]:
        lines = [f"{glob.name}:"]
        initializer = list(glob.initializer)
        if initializer:
            # Emit at most 8 words per .word directive for readability.
            for start in range(0, len(initializer), 8):
                chunk = initializer[start:start + 8]
                lines.append("    .word " + ", ".join(str(v) for v in chunk))
        remaining = glob.num_words - len(initializer)
        if remaining > 0:
            lines.append(f"    .space {4 * remaining}")
        return lines
