"""Three-address intermediate representation (IR).

The compiler lowers the kernel-language AST into a conventional
three-address code before emitting MicroBlaze assembly.  The IR is linear
(a list of instructions per function) with explicit labels and jumps, which
makes the subsequent passes — constant folding, operation lowering that
honours the MicroBlaze configuration, and code generation — straightforward
and independently testable.

Operands are either constants (:class:`Const`) or virtual registers
(:class:`Reg`).  Named program variables and compiler temporaries are both
virtual registers; the code generator later assigns each a callee-saved
physical register (or a stack slot when a function is unusually large).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


# --------------------------------------------------------------------------- operands
@dataclass(frozen=True)
class Const:
    """An integer constant operand (32-bit signed)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Reg:
    """A virtual register operand.

    ``name`` is either a source-level variable name (``"i"``, ``"sum"``) or
    a compiler temporary of the form ``"%tN"``.
    """

    name: str

    @property
    def is_temp(self) -> bool:
        return self.name.startswith("%")

    def __str__(self) -> str:
        return self.name


Operand = Union[Const, Reg]


class BinOpKind(enum.Enum):
    """Arithmetic/logical operations available at the IR level."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"  # arithmetic shift right (the language's >> operator)


class RelOp(enum.Enum):
    """Relational operators used by conditional jumps."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def negate(self) -> "RelOp":
        return {
            RelOp.EQ: RelOp.NE,
            RelOp.NE: RelOp.EQ,
            RelOp.LT: RelOp.GE,
            RelOp.LE: RelOp.GT,
            RelOp.GT: RelOp.LE,
            RelOp.GE: RelOp.LT,
        }[self]

    def swap(self) -> "RelOp":
        """The relation that holds when the two operands are exchanged."""
        return {
            RelOp.EQ: RelOp.EQ,
            RelOp.NE: RelOp.NE,
            RelOp.LT: RelOp.GT,
            RelOp.LE: RelOp.GE,
            RelOp.GT: RelOp.LT,
            RelOp.GE: RelOp.LE,
        }[self]

    def evaluate(self, left: int, right: int) -> bool:
        return {
            RelOp.EQ: left == right,
            RelOp.NE: left != right,
            RelOp.LT: left < right,
            RelOp.LE: left <= right,
            RelOp.GT: left > right,
            RelOp.GE: left >= right,
        }[self]


# --------------------------------------------------------------------------- instructions
@dataclass
class IRInstr:
    """Base class for IR instructions."""

    def defined(self) -> Optional[Reg]:
        """The virtual register this instruction defines, if any."""
        return None

    def used(self) -> Tuple[Operand, ...]:
        """Operands this instruction reads."""
        return ()


@dataclass
class Label(IRInstr):
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass
class Jump(IRInstr):
    target: str

    def __str__(self) -> str:
        return f"    goto {self.target}"


@dataclass
class CondJump(IRInstr):
    """Jump to ``target`` when ``left <relop> right`` holds."""

    left: Operand
    relop: RelOp
    right: Operand
    target: str

    def used(self) -> Tuple[Operand, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"    if {self.left} {self.relop.value} {self.right} goto {self.target}"


@dataclass
class BinOp(IRInstr):
    dest: Reg
    op: BinOpKind
    left: Operand
    right: Operand

    def defined(self) -> Optional[Reg]:
        return self.dest

    def used(self) -> Tuple[Operand, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"    {self.dest} = {self.left} {self.op.value} {self.right}"


@dataclass
class UnOp(IRInstr):
    dest: Reg
    op: str  # "neg" or "not"
    src: Operand

    def defined(self) -> Optional[Reg]:
        return self.dest

    def used(self) -> Tuple[Operand, ...]:
        return (self.src,)

    def __str__(self) -> str:
        return f"    {self.dest} = {self.op} {self.src}"


@dataclass
class Copy(IRInstr):
    dest: Reg
    src: Operand

    def defined(self) -> Optional[Reg]:
        return self.dest

    def used(self) -> Tuple[Operand, ...]:
        return (self.src,)

    def __str__(self) -> str:
        return f"    {self.dest} = {self.src}"


@dataclass
class LoadArray(IRInstr):
    """``dest = symbol[index]`` — word load from a global array."""

    dest: Reg
    symbol: str
    index: Operand

    def defined(self) -> Optional[Reg]:
        return self.dest

    def used(self) -> Tuple[Operand, ...]:
        return (self.index,)

    def __str__(self) -> str:
        return f"    {self.dest} = {self.symbol}[{self.index}]"


@dataclass
class StoreArray(IRInstr):
    """``symbol[index] = src`` — word store to a global array."""

    symbol: str
    index: Operand
    src: Operand

    def used(self) -> Tuple[Operand, ...]:
        return (self.index, self.src)

    def __str__(self) -> str:
        return f"    {self.symbol}[{self.index}] = {self.src}"


@dataclass
class LoadGlobal(IRInstr):
    """``dest = symbol`` — load of a global scalar."""

    dest: Reg
    symbol: str

    def defined(self) -> Optional[Reg]:
        return self.dest

    def __str__(self) -> str:
        return f"    {self.dest} = {self.symbol}"


@dataclass
class StoreGlobal(IRInstr):
    """``symbol = src`` — store to a global scalar."""

    symbol: str
    src: Operand

    def used(self) -> Tuple[Operand, ...]:
        return (self.src,)

    def __str__(self) -> str:
        return f"    {self.symbol} = {self.src}"


@dataclass
class Call(IRInstr):
    """``dest = name(args...)`` (``dest`` may be ``None`` for void calls)."""

    dest: Optional[Reg]
    name: str
    args: Tuple[Operand, ...] = ()

    def defined(self) -> Optional[Reg]:
        return self.dest

    def used(self) -> Tuple[Operand, ...]:
        return tuple(self.args)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dest} = " if self.dest is not None else ""
        return f"    {prefix}{self.name}({args})"


@dataclass
class Return(IRInstr):
    value: Optional[Operand] = None

    def used(self) -> Tuple[Operand, ...]:
        return (self.value,) if self.value is not None else ()

    def __str__(self) -> str:
        return f"    return {self.value}" if self.value is not None else "    return"


# --------------------------------------------------------------------------- containers
@dataclass
class IRFunction:
    """The IR of one function."""

    name: str
    parameters: List[str]
    body: List[IRInstr] = field(default_factory=list)
    returns_value: bool = True

    def virtual_registers(self) -> List[str]:
        """All virtual register names in order of first appearance."""
        seen: Dict[str, None] = {}
        for param in self.parameters:
            seen.setdefault(param, None)
        for instr in self.body:
            defined = instr.defined()
            if defined is not None:
                seen.setdefault(defined.name, None)
            for operand in instr.used():
                if isinstance(operand, Reg):
                    seen.setdefault(operand.name, None)
        return list(seen.keys())

    def __str__(self) -> str:
        header = f"function {self.name}({', '.join(self.parameters)}):"
        return "\n".join([header] + [str(i) for i in self.body])


@dataclass
class IRGlobal:
    """A global scalar or array with its initial contents."""

    name: str
    num_words: int
    initializer: Tuple[int, ...] = ()

    @property
    def is_array(self) -> bool:
        return self.num_words > 1 or bool(self.initializer) and len(self.initializer) > 1


@dataclass
class IRModule:
    """A whole compiled translation unit in IR form."""

    globals: List[IRGlobal] = field(default_factory=list)
    functions: List[IRFunction] = field(default_factory=list)

    def function(self, name: str) -> IRFunction:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no IR function named {name!r}")

    def __str__(self) -> str:
        parts = [f"global {g.name}[{g.num_words}]" for g in self.globals]
        parts.extend(str(f) for f in self.functions)
        return "\n\n".join(parts)
