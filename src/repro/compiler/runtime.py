"""Startup stub and software runtime library.

When the MicroBlaze is configured without its optional hardware units the
compiler falls back to software routines, exactly as described in Section 2
of the paper.  This module provides those routines as assembly text:

* ``__mulsi3`` — shift-and-add 32x32→32 multiply (no multiplier configured),
* ``__divsi3`` / ``__modsi3`` — restoring shift-subtract divide/remainder
  (no divider configured, or any use of ``%``),
* ``__ashl`` / ``__ashr`` — variable-amount shifts built from single-bit
  shifts (no barrel shifter configured).

All routines follow the ABI used by the code generator: arguments in
``r5``/``r6``, result in ``r3``; they clobber only argument registers and
``r3``, so the caller's callee-saved homes survive without any caller-side
spilling.

The startup stub ``_start`` calls ``main`` and then executes the
``bri 0`` halt idiom recognised by the simulator, leaving ``main``'s return
value in ``r3`` where the test harness picks it up as the program checksum.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..microblaze.config import MicroBlazeConfig
from .lowering import (
    RUNTIME_DIVIDE,
    RUNTIME_MODULO,
    RUNTIME_MULTIPLY,
    RUNTIME_SHIFT_LEFT,
    RUNTIME_SHIFT_RIGHT,
)


def startup_stub() -> List[str]:
    """The ``_start`` entry stub: call ``main`` then halt."""
    return [
        "_start:",
        "    brlid r15, main",
        "    nop",
        "_halt:",
        "    bri 0",
    ]


def _mulsi3() -> List[str]:
    """Shift-and-add multiply; iterates over the (unsigned) smaller operand."""
    return [
        "__mulsi3:",
        "    cmpu r7, r5, r6          # 1 if r6 > r5 (unsigned)",
        "    blei r7, __mulsi3_go",
        "    add  r7, r5, r0          # swap so the loop runs over the smaller value",
        "    add  r5, r6, r0",
        "    add  r6, r7, r0",
        "__mulsi3_go:",
        "    add  r3, r0, r0",
        "    beqi r6, __mulsi3_done",
        "__mulsi3_loop:",
        "    andi r7, r6, 1",
        "    beqi r7, __mulsi3_skip",
        "    add  r3, r3, r5",
        "__mulsi3_skip:",
        "    add  r5, r5, r5",
        "    srl  r6, r6",
        "    bnei r6, __mulsi3_loop",
        "__mulsi3_done:",
        "    rtsd r15, 8",
        "    nop",
    ]


def _divsi3() -> List[str]:
    """Restoring shift-subtract signed division: ``r3 = r5 / r6``."""
    return [
        "__divsi3:",
        "    xor  r9, r5, r6          # sign of the quotient",
        "    bgei r5, __divsi3_absa",
        "    rsub r5, r5, r0",
        "__divsi3_absa:",
        "    bgei r6, __divsi3_absb",
        "    rsub r6, r6, r0",
        "__divsi3_absb:",
        "    beqi r6, __divsi3_zero   # divide by zero returns 0",
        "    add  r7, r0, r0          # remainder",
        "    add  r3, r0, r0          # quotient",
        "    addi r8, r0, 32          # bit counter",
        "__divsi3_loop:",
        "    add  r7, r7, r7          # remainder <<= 1",
        "    bgei r5, __divsi3_nobit",
        "    ori  r7, r7, 1           # bring down the next dividend bit",
        "__divsi3_nobit:",
        "    add  r5, r5, r5",
        "    add  r3, r3, r3          # quotient <<= 1",
        "    cmp  r10, r6, r7         # sign(remainder - divisor)",
        "    blti r10, __divsi3_next",
        "    rsub r7, r6, r7          # remainder -= divisor",
        "    ori  r3, r3, 1",
        "__divsi3_next:",
        "    addi r8, r8, -1",
        "    bnei r8, __divsi3_loop",
        "    bgei r9, __divsi3_done",
        "    rsub r3, r3, r0          # apply the quotient sign",
        "__divsi3_done:",
        "    rtsd r15, 8",
        "    nop",
        "__divsi3_zero:",
        "    add  r3, r0, r0",
        "    rtsd r15, 8",
        "    nop",
    ]


def _modsi3() -> List[str]:
    """Signed remainder (sign follows the dividend): ``r3 = r5 % r6``."""
    return [
        "__modsi3:",
        "    add  r9, r5, r0          # remember the dividend sign",
        "    bgei r5, __modsi3_absa",
        "    rsub r5, r5, r0",
        "__modsi3_absa:",
        "    bgei r6, __modsi3_absb",
        "    rsub r6, r6, r0",
        "__modsi3_absb:",
        "    beqi r6, __modsi3_zero",
        "    add  r7, r0, r0          # remainder",
        "    addi r8, r0, 32",
        "__modsi3_loop:",
        "    add  r7, r7, r7",
        "    bgei r5, __modsi3_nobit",
        "    ori  r7, r7, 1",
        "__modsi3_nobit:",
        "    add  r5, r5, r5",
        "    cmp  r10, r6, r7",
        "    blti r10, __modsi3_next",
        "    rsub r7, r6, r7",
        "__modsi3_next:",
        "    addi r8, r8, -1",
        "    bnei r8, __modsi3_loop",
        "    add  r3, r7, r0",
        "    bgei r9, __modsi3_done",
        "    rsub r3, r3, r0",
        "__modsi3_done:",
        "    rtsd r15, 8",
        "    nop",
        "__modsi3_zero:",
        "    add  r3, r0, r0",
        "    rtsd r15, 8",
        "    nop",
    ]


def _ashl() -> List[str]:
    """Variable left shift without a barrel shifter: n successive adds."""
    return [
        "__ashl:",
        "    add  r3, r5, r0",
        "    andi r6, r6, 31",
        "    beqi r6, __ashl_done",
        "__ashl_loop:",
        "    add  r3, r3, r3",
        "    addi r6, r6, -1",
        "    bnei r6, __ashl_loop",
        "__ashl_done:",
        "    rtsd r15, 8",
        "    nop",
    ]


def _ashr() -> List[str]:
    """Variable arithmetic right shift without a barrel shifter."""
    return [
        "__ashr:",
        "    add  r3, r5, r0",
        "    andi r6, r6, 31",
        "    beqi r6, __ashr_done",
        "__ashr_loop:",
        "    sra  r3, r3",
        "    addi r6, r6, -1",
        "    bnei r6, __ashr_loop",
        "__ashr_done:",
        "    rtsd r15, 8",
        "    nop",
    ]


_ROUTINES = {
    RUNTIME_MULTIPLY: _mulsi3,
    RUNTIME_DIVIDE: _divsi3,
    RUNTIME_MODULO: _modsi3,
    RUNTIME_SHIFT_LEFT: _ashl,
    RUNTIME_SHIFT_RIGHT: _ashr,
}


def runtime_library(required: Iterable[str], config: MicroBlazeConfig) -> List[str]:
    """Return the assembly for exactly the runtime routines in ``required``."""
    lines: List[str] = []
    for name in sorted(set(required)):
        if name not in _ROUTINES:
            raise KeyError(f"unknown runtime routine {name!r}")
        lines.extend(_ROUTINES[name]())
    return lines


def available_routines() -> Set[str]:
    """Names of all runtime routines the library can provide."""
    return set(_ROUTINES)
