"""Abstract syntax tree of the kernel language.

Every node records the source line it came from so that later phases can
report precise diagnostics.  The tree is deliberately small: the language
has a single ``int`` type (32-bit signed), one-dimensional global arrays,
scalar locals and parameters, and structured control flow — enough to
express the Powerstone / EEMBC-style kernels the paper evaluates while
keeping binary-level decompilation tractable for the on-chip tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = 0


# --------------------------------------------------------------------------- expressions
@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    name: str = ""
    index: Expr = None


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------- statements
@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    name: str = ""
    initializer: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    target: Expr = None  # VarRef or ArrayRef
    value: Expr = None


@dataclass
class IfStmt(Stmt):
    condition: Expr = None
    then_body: Stmt = None
    else_body: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    condition: Expr = None
    body: Stmt = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt = None
    condition: Expr = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    update: Optional[Stmt] = None
    body: Stmt = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expression: Expr = None


# --------------------------------------------------------------------------- declarations
@dataclass
class GlobalVar(Node):
    """A global scalar (``size is None``) or array declaration."""

    name: str = ""
    size: Optional[int] = None
    initializer: Sequence[int] = ()


@dataclass
class Parameter(Node):
    name: str = ""


@dataclass
class Function(Node):
    name: str = ""
    parameters: List[Parameter] = field(default_factory=list)
    body: Block = None
    returns_value: bool = True


@dataclass
class TranslationUnit(Node):
    """A whole kernel-language source file."""

    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")
