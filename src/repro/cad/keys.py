"""Content addressing for the staged CAD flow.

Two granularities share the canonical forms defined here:

* the **whole-bundle key** (:func:`artifact_cache_key`) — a SHA-256 over
  the kernel's canonical DADG form plus the full WCLA parameters.  It
  addresses the complete synthesis/placement/routing/implementation
  bundle and backs the cache's fast path for exact repeats;
* the **per-stage keys** built by the stages themselves out of
  :func:`content_digest` — each stage hashes only the inputs it actually
  consumes (synthesis: canonical DADG + LUT/memory parameters; placement:
  the synthesis digest + fabric geometry; routing: the placement digest +
  channel capacity; implementation: the routing digest + the full WCLA),
  chaining the upstream stage's digest so an upstream invalidation
  propagates downstream automatically.  A sweep that changes only a
  routing-relevant parameter therefore re-runs routing and implementation
  while synthesis and placement are served from the cache.

The canonical DADG form is deterministic and address-independent: register
updates in register order, stores in program order, the continue condition,
and the live-in set — the complete content the CAD flow consumes.  Region
byte addresses are deliberately excluded, so the same loop body linked at a
different address (or running on another core) hits.

Versioning rules:

* bump :data:`CANONICAL_FORM_VERSION` whenever the serialization below
  changes shape — it participates in every key, so everything invalidates;
* bump a stage's ``key_version`` (see :class:`repro.cad.flow.FlowStage`)
  when only that stage's algorithm or key encoding changes — digest
  chaining invalidates the downstream stages automatically.
"""

from __future__ import annotations

from typing import Dict, List

from ..digest import sha256_hex

from ..decompile.expr import (
    BinExpr,
    Condition,
    Const,
    LiveIn,
    Load,
    Mux,
    Node,
    UnExpr,
)
from ..decompile.kernel import HardwareKernel
from ..decompile.symexec import SymbolicLoopBody
from ..fabric.architecture import WclaParameters

#: Bump whenever the canonical serialization below changes shape.
CANONICAL_FORM_VERSION = 1


# --------------------------------------------------------------------------- canonical form
def _serialize_node(node: Node, memo: Dict[int, int],
                    lines: List[str]) -> int:
    """Append ``node`` (postorder) to ``lines`` and return its line index.

    Identity-memoized: the expression DAG is structurally hashed by its
    builder, so shared sub-terms serialize once and references are by line
    index — structurally identical DAGs produce identical line sequences
    regardless of the ``node_id`` values the builder happened to assign.
    """
    index = memo.get(id(node))
    if index is not None:
        return index
    if isinstance(node, Const):
        line = f"const {node.value & 0xFFFFFFFF}"
    elif isinstance(node, LiveIn):
        line = f"live r{node.register}"
    elif isinstance(node, BinExpr):
        left = _serialize_node(node.left, memo, lines)
        right = _serialize_node(node.right, memo, lines)
        line = f"bin {node.op.value} {left} {right}"
    elif isinstance(node, UnExpr):
        operand = _serialize_node(node.operand, memo, lines)
        line = f"un {node.op.value} {operand}"
    elif isinstance(node, Load):
        address = _serialize_node(node.address, memo, lines)
        line = f"load w{node.width} seq{node.sequence} {address}"
    elif isinstance(node, Mux):
        condition = _serialize_node(node.condition, memo, lines)
        if_true = _serialize_node(node.if_true, memo, lines)
        if_false = _serialize_node(node.if_false, memo, lines)
        line = f"mux {condition} {if_true} {if_false}"
    elif isinstance(node, Condition):
        value = _serialize_node(node.value, memo, lines)
        line = f"cond {node.relation} {value}"
    else:  # pragma: no cover - defensive: new node kinds must be added here
        raise TypeError(f"cannot canonicalize node {node!r}")
    lines.append(line)
    memo[id(node)] = len(lines) - 1
    return len(lines) - 1


def canonical_body_form(body: SymbolicLoopBody) -> str:
    """Deterministic, address-independent text form of one loop body's DADG.

    Register updates are emitted in register order, stores in program
    order, the continue condition last, followed by the live-in set — the
    complete content the CAD flow consumes.  Two regions with the same
    canonical form synthesize, place and route identically.
    """
    memo: Dict[int, int] = {}
    lines: List[str] = [f"v{CANONICAL_FORM_VERSION}"]
    for register in sorted(body.register_updates):
        index = _serialize_node(body.register_updates[register], memo, lines)
        lines.append(f"update r{register} {index}")
    for store in body.stores:
        address = _serialize_node(store.address, memo, lines)
        value = _serialize_node(store.value, memo, lines)
        guard = (-1 if store.guard is None
                 else _serialize_node(store.guard, memo, lines))
        lines.append(f"store w{store.width} seq{store.sequence} "
                     f"{address} {value} {guard}")
    if body.continue_condition is not None:
        index = _serialize_node(body.continue_condition, memo, lines)
        lines.append(f"continue {index}")
    lines.append("livein " + ",".join(str(r)
                                      for r in sorted(body.live_in_registers)))
    return "\n".join(lines)


def canonical_wcla_form(wcla: WclaParameters) -> str:
    """Deterministic text form of the WCLA parameters (frozen dataclasses
    have a stable field-ordered ``repr``)."""
    return repr(wcla)


# --------------------------------------------------------------------------- digests
def content_digest(*parts: str) -> str:
    """SHA-256 hex digest over NUL-separated text parts.

    A thin alias of :func:`repro.digest.sha256_hex` — the repo-wide
    digest helper — kept so CAD code reads in CAD vocabulary.  The byte
    layout (NUL after every part) is unchanged from when this function
    owned the implementation, so existing on-disk store entries and
    recorded digests stay valid.
    """
    return sha256_hex(*parts)


def artifact_cache_key(kernel: HardwareKernel, wcla: WclaParameters,
                       flow_token: str = "",
                       body_form: str = None) -> str:
    """Whole-bundle content address of ``(kernel DADG, full WCLA)``.

    ``flow_token`` is the flow's bundled-stage identity (see
    :meth:`repro.cad.flow.CadFlow.bundle_token`): two flows with different
    passes (e.g. the default router vs ``route-greedy``) produce different
    bundles and must never share one bundle entry.  ``body_form`` lets a
    caller that already serialized the kernel's canonical DADG form pass
    it in instead of re-walking the DAG.
    """
    if body_form is None:
        body_form = canonical_body_form(kernel.body)
    return content_digest("bundle", body_form,
                          canonical_wcla_form(wcla), flow_token)
