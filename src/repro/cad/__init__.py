"""The staged on-chip CAD flow (decompile → synthesis → place → route →
implement → binary update).

The paper's core contribution is the lean CAD flow the dynamic
partitioning module runs on chip.  This package makes that flow an
explicit, first-class pipeline instead of a hardcoded call sequence:

* :mod:`~repro.cad.flow` — the :class:`FlowStage` contract (name,
  content-key contribution, compute/install, modelled on-chip cycles), the
  :class:`FlowContext` threading typed artifacts between stages, the
  :class:`CadFlow` driver (per-stage host wall time, modelled DPM cycles,
  tracing hooks), the stage registry, and the :class:`DpmCostModel` whose
  per-phase constants the stages consult.
* :mod:`~repro.cad.stages` — the concrete stages plus registered
  alternates (e.g. the single-pass greedy router ``route-greedy``).
* :mod:`~repro.cad.keys` — deterministic canonical forms and the SHA-256
  content digests used for both whole-bundle and per-stage addressing.
* :mod:`~repro.cad.artifacts` — the :class:`CadArtifactCache`: a
  whole-bundle fast path plus per-stage content-addressed entries, with
  memoized capacity rejections surfaced as a distinct counter.

Stage-key versioning: bump :data:`~repro.cad.keys.CANONICAL_FORM_VERSION`
when the DADG serialization changes shape (it invalidates every stage);
bump an individual stage's ``key_version`` when only that stage's
algorithm or parameter encoding changes (downstream stages are invalidated
automatically through digest chaining).
"""

from .keys import (
    CANONICAL_FORM_VERSION,
    artifact_cache_key,
    canonical_body_form,
    canonical_wcla_form,
    content_digest,
)
from .artifacts import (
    CadArtifactCache,
    CadArtifacts,
    CapacityRejection,
    is_negative_artifact,
)
from .flow import (
    DEFAULT_STAGE_NAMES,
    SOURCE_BUNDLE,
    SOURCE_DISK,
    SOURCE_HIT,
    SOURCE_MISS,
    SOURCE_NEGATIVE,
    SOURCE_PEER,
    SOURCE_UNCACHED,
    CadFlow,
    DpmCostModel,
    FlowContext,
    FlowError,
    FlowStage,
    KernelDoesNotFitError,
    KernelRejectedError,
    StageRecord,
    available_stage_names,
    build_flow,
    build_stage,
    register_stage,
    validate_job_stage_names,
)
from .stages import (
    BinaryUpdateStage,
    DecompileStage,
    ImplementationStage,
    PlacementStage,
    RouteStage,
    SynthesisStage,
)

__all__ = [
    "CANONICAL_FORM_VERSION",
    "artifact_cache_key",
    "canonical_body_form",
    "canonical_wcla_form",
    "content_digest",
    "CadArtifactCache",
    "CadArtifacts",
    "CapacityRejection",
    "is_negative_artifact",
    "DEFAULT_STAGE_NAMES",
    "SOURCE_BUNDLE",
    "SOURCE_DISK",
    "SOURCE_HIT",
    "SOURCE_MISS",
    "SOURCE_NEGATIVE",
    "SOURCE_PEER",
    "SOURCE_UNCACHED",
    "CadFlow",
    "DpmCostModel",
    "FlowContext",
    "FlowError",
    "FlowStage",
    "KernelDoesNotFitError",
    "KernelRejectedError",
    "StageRecord",
    "available_stage_names",
    "build_flow",
    "build_stage",
    "register_stage",
    "validate_job_stage_names",
    "BinaryUpdateStage",
    "DecompileStage",
    "ImplementationStage",
    "PlacementStage",
    "RouteStage",
    "SynthesisStage",
]
