"""CAD artifact types and the two-level content-addressed cache.

The expensive part of a warp job is not the simulation — it is the CAD
flow the dynamic partitioning module runs for each critical region.  Two
jobs that partition *the same loop body* onto *the same WCLA* produce
identical artifacts, no matter which benchmark instance, processor core or
sweep configuration the loop came from.  :class:`CadArtifactCache`
memoizes that work at two granularities:

* **whole bundle** — the legacy fast path: one lookup per partitioning
  under :func:`~repro.cad.keys.artifact_cache_key` serves all four stage
  outputs at once on an exact (kernel, WCLA) repeat.  The ``hits`` /
  ``misses`` / ``counters()`` accounting of this level is unchanged from
  the pre-staged cache, so per-job cache deltas keep meaning "one lookup
  per partitioning";
* **per stage** — each :class:`~repro.cad.flow.FlowStage` stores its
  output under its own content address.  A sweep that changes only a
  routing-relevant parameter misses the bundle but still serves synthesis
  and placement from the stage entries.  Per-stage hit/miss counts are
  kept separately (:meth:`CadArtifactCache.stage_counters`).

Capacity rejections are memoized too: a kernel that exceeds the fabric
(:class:`~repro.fabric.place.FabricCapacityError`, or a placement whose
``area.fits`` is false) stores a :class:`CapacityRejection` marker (or the
non-fitting placement itself) under the same stage address, so repeated
jobs skip re-running synthesis and placement just to fail again.  Serving
a memoized negative increments the distinct ``negative_hits`` counter.

Per-run quantities — the binary patch and the modelled on-chip
partitioning time, which depend on the region's concrete addresses — stay
outside the cache.  Both levels sit on the repo-wide
:class:`repro.caching.BoundedLRU` (one eviction/accounting implementation,
one explicit ``clear()``).

A third, *persistent* tier can be layered underneath: pass a
:class:`repro.server.store.DiskArtifactStore` (or any object with
``stage_get``/``stage_put``/``stats``) as ``store``.  Per-stage entries
are written through to it and a memory miss consults it before counting a
miss, so a fresh process — or another machine sharing the directory —
starts warm.  Disk hits are counted separately from memory hits
(``disk_hits`` / :meth:`CadArtifactCache.stage_disk_hits`), and the flow
records them as the distinct ``disk-hit`` stage source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..caching import BoundedLRU
from ..decompile.kernel import HardwareKernel
from ..fabric.architecture import WclaParameters
from ..fabric.implementation import HardwareImplementation
from ..fabric.place import PlacementResult
from ..fabric.route import RoutingResult
from ..synthesis.datapath import SynthesisResult
from .keys import artifact_cache_key


@dataclass
class CadArtifacts:
    """The four memoized stage outputs of one (kernel, WCLA) content."""

    synthesis: SynthesisResult
    placement: PlacementResult
    routing: RoutingResult
    implementation: HardwareImplementation


@dataclass(frozen=True)
class CapacityRejection:
    """Memoized negative result: this content exceeds the fabric capacity."""

    message: str


def is_negative_artifact(value: object) -> bool:
    """Whether a cached stage value records a capacity rejection.

    Only the placement stage's outputs qualify: a rejection marker, or a
    placement that completed but does not fit.  Downstream artifacts that
    merely *reference* a non-fitting placement (an implementation's
    ``area`` proxies it) must not count the same rejection again.
    """
    if isinstance(value, CapacityRejection):
        return True
    return isinstance(value, PlacementResult) and not value.area.fits


class CadArtifactCache:
    """Bounded content-addressed store of CAD stage outputs and bundles.

    One instance is typically shared per process: the serial service path
    keeps a module-level instance, every pool worker owns its own (warmed
    for the worker's lifetime), and a
    :class:`~repro.warp.multiprocessor.MultiProcessorWarpSystem` shares one
    across its cores, mirroring the paper's single DPM serving all
    processors.

    ``bundle_fast_path=False`` disables the whole-bundle lookup (stores
    still happen), forcing every partitioning through the per-stage
    entries — useful for differential tests of the staged path.
    """

    def __init__(self, maxsize: Optional[int] = 256,
                 stage_maxsize: Optional[int] = 1024,
                 bundle_fast_path: bool = True,
                 store=None):
        self._bundle = BoundedLRU(maxsize)
        self._stages = BoundedLRU(stage_maxsize)
        self.bundle_fast_path = bundle_fast_path
        #: Optional persistent tier under the per-stage entries (duck-typed:
        #: ``stage_get``/``stage_put``/``stats``, e.g.
        #: :class:`repro.server.store.DiskArtifactStore`).  Named
        #: ``disk_store`` because :meth:`store` is the bundle-store method.
        self.disk_store = store
        self._stage_hits: Dict[str, int] = {}
        self._stage_misses: Dict[str, int] = {}
        self._stage_disk_hits: Dict[str, int] = {}
        self._stage_peer_hits: Dict[str, int] = {}
        self.negative_hits = 0
        self.disk_hits = 0
        #: Stage lookups satisfied by a mesh peer's store (the persistent
        #: tier pulled the entry over the wire on a local miss) — a
        #: network round-trip, so counted apart from ``disk_hits``.
        self.peer_hits = 0
        #: Write-throughs to the persistent tier that failed (and were
        #: swallowed — persistence is an accelerator, not a dependency).
        self.store_put_errors = 0
        #: Tier that served the most recent :meth:`stage_lookup` hit
        #: (``"memory"`` / ``"disk"`` / ``None`` on a miss) — read by the
        #: flow driver to label the stage record's source.
        self.last_lookup_tier: Optional[str] = None

    # ----------------------------------------------------------------- bundle
    def key_for(self, kernel: HardwareKernel, wcla: WclaParameters,
                flow_token: str = "", body_form: str = None) -> str:
        return artifact_cache_key(kernel, wcla, flow_token,
                                  body_form=body_form)

    def lookup(self, key: str) -> Optional[CadArtifacts]:
        """Fetch a whole bundle by key, counting a hit or a miss."""
        return self._bundle.get(key)

    def store(self, key: str, artifacts: CadArtifacts) -> None:
        self._bundle.put(key, artifacts)

    # ----------------------------------------------------------------- stages
    def stage_lookup(self, stage: str, key: str) -> Optional[object]:
        """Fetch one stage's output, counting per-stage (and negative) hits.

        A memory miss consults the persistent tier (when configured)
        before counting a miss; a disk hit promotes the entry into memory
        and is tallied separately from memory hits.
        """
        self.last_lookup_tier = None
        value = self._stages.get(f"{stage}\x00{key}")
        if value is None and self.disk_store is not None:
            value = self.disk_store.stage_get(stage, key)
            if value is not None:
                self._stages.put(f"{stage}\x00{key}", value)
                # The store says how it satisfied the lookup: a plain
                # local file ("disk") or a mesh peer pull ("peer") —
                # stores without the attribute are always local.
                from_peer = getattr(self.disk_store,
                                    "last_get_source", None) == "peer"
                self.last_lookup_tier = "peer" if from_peer else "disk"
                if is_negative_artifact(value):
                    # A replayed rejection is a stage-level hit plus a
                    # negative hit — exactly as when memory serves it —
                    # but never a ``disk_hit``/``peer_hit``, so those
                    # always equal the number of same-named stage
                    # records.
                    self._stage_hits[stage] = \
                        self._stage_hits.get(stage, 0) + 1
                    self.negative_hits += 1
                elif from_peer:
                    self._stage_peer_hits[stage] = \
                        self._stage_peer_hits.get(stage, 0) + 1
                    self.peer_hits += 1
                else:
                    self._stage_disk_hits[stage] = \
                        self._stage_disk_hits.get(stage, 0) + 1
                    self.disk_hits += 1
                return value
        if value is None:
            self._stage_misses[stage] = self._stage_misses.get(stage, 0) + 1
            return None
        self._stage_hits[stage] = self._stage_hits.get(stage, 0) + 1
        self.last_lookup_tier = "memory"
        if is_negative_artifact(value):
            self.negative_hits += 1
        return value

    def stage_store(self, stage: str, key: str, value: object) -> None:
        self._stages.put(f"{stage}\x00{key}", value)
        if self.disk_store is not None:
            try:
                self.disk_store.stage_put(stage, key, value)
            except Exception:
                # The persistent tier is an accelerator, never a
                # dependency: a job must not fail because write-through
                # persistence failed (full disk, dead NFS mount, injected
                # publish fault).  The loss is counted, the entry still
                # lives in memory, and the next cold process recomputes.
                self.store_put_errors += 1

    def clear(self) -> None:
        """Drop the in-memory tiers (the persistent store, when attached,
        keeps its entries — it has its own ``clear()``)."""
        self._bundle.clear()
        self._stages.clear()
        self._stage_hits.clear()
        self._stage_misses.clear()
        self._stage_disk_hits.clear()
        self._stage_peer_hits.clear()
        self.negative_hits = 0
        self.disk_hits = 0
        self.peer_hits = 0
        self.store_put_errors = 0
        self.last_lookup_tier = None

    # -------------------------------------------------------------- accounting
    def __len__(self) -> int:
        return len(self._bundle) + len(self._stages)

    @property
    def hits(self) -> int:
        """Bundle-level hits (one lookup per partitioning)."""
        return self._bundle.hits

    @property
    def misses(self) -> int:
        return self._bundle.misses

    @property
    def hit_rate(self) -> float:
        return self._bundle.hit_rate

    def counters(self) -> Tuple[int, int]:
        """Bundle-level ``(hits, misses)`` for per-job delta accounting."""
        return self._bundle.counters()

    def stage_counters(self) -> Dict[str, Tuple[int, int]]:
        """Per-stage ``{stage: (memory hits, misses)}`` snapshot (disk hits
        are separate — see :meth:`stage_disk_hits`)."""
        stages = sorted(set(self._stage_hits) | set(self._stage_misses))
        return {stage: (self._stage_hits.get(stage, 0),
                        self._stage_misses.get(stage, 0))
                for stage in stages}

    def stage_disk_hits(self) -> Dict[str, int]:
        """Per-stage hits served by the persistent tier."""
        return dict(self._stage_disk_hits)

    def stage_peer_hits(self) -> Dict[str, int]:
        """Per-stage hits pulled from a mesh peer's store."""
        return dict(self._stage_peer_hits)

    def stats(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "negative_hits": self.negative_hits,
            "disk_hits": self.disk_hits,
            "peer_hits": self.peer_hits,
            "store_put_errors": self.store_put_errors,
            "bundle": self._bundle.stats(),
            "stages": self._stages.stats(),
            "per_stage": {stage: {"hits": self._stage_hits.get(stage, 0),
                                  "misses": self._stage_misses.get(stage, 0),
                                  "disk_hits":
                                      self._stage_disk_hits.get(stage, 0),
                                  "peer_hits":
                                      self._stage_peer_hits.get(stage, 0)}
                          for stage in sorted(set(self._stage_hits)
                                              | set(self._stage_misses)
                                              | set(self._stage_disk_hits)
                                              | set(self._stage_peer_hits))},
            "store": self.disk_store.stats()
                     if self.disk_store is not None else None,
        }
