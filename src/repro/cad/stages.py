"""Concrete passes of the on-chip CAD flow, plus registered alternates.

Each stage declares exactly what it consumes in its content key:

* ``synthesis`` — the kernel's canonical DADG form plus the two parameters
  :func:`~repro.synthesis.datapath.synthesize_kernel` reads (LUT input
  count, memory ports);
* ``place`` — the synthesis digest plus the fabric geometry the placer
  reads (rows, columns, LUTs per CLB);
* ``route`` — the placement digest plus the channel capacity (and the
  router's iteration bound, so the greedy variant never collides with the
  negotiated-congestion default);
* ``implement`` — the routing digest plus the full WCLA (every timing
  constant shapes the clock estimate).

``decompile`` and ``binary-update`` are uncacheable: both depend on the
region's concrete byte addresses, which the content addresses deliberately
exclude.
"""

from __future__ import annotations

from typing import Optional

from ..decompile.kernel import extract_kernel
from ..decompile.symexec import decompile_region
from ..fabric.place import FabricCapacityError, place_kernel
from ..fabric.route import PathfinderLiteRouter
from ..fabric.implementation import implement_kernel
from ..synthesis.datapath import synthesize_kernel
from .artifacts import CapacityRejection
from .flow import (
    FlowContext,
    FlowStage,
    KernelDoesNotFitError,
    KernelRejectedError,
    register_stage,
)
from .keys import canonical_wcla_form, content_digest


# --------------------------------------------------------------------------- decompile
class DecompileStage(FlowStage):
    """Symbolic execution of the critical region into a kernel descriptor.

    Uncacheable: it reads the program text at the region's concrete
    addresses.  It is also the gate — a kernel the WCLA cannot host
    (no induction variable, irregular accesses) stops the flow here.
    """

    name = "decompile"

    def compute(self, context: FlowContext):
        body = decompile_region(context.program.text, context.region)
        return body, extract_kernel(body)

    def install(self, context: FlowContext, value) -> None:
        context.body, context.kernel = value

    def validate(self, context: FlowContext) -> None:
        if not context.kernel.partitionable:
            raise KernelRejectedError(context.kernel.rejection_reason)

    def modelled_cycles(self, context: FlowContext) -> int:
        if context.kernel is None:
            return 0
        return context.kernel.region.num_instructions \
            * context.cost_model.cycles_per_decompiled_instruction


# --------------------------------------------------------------------------- synthesis
class SynthesisStage(FlowStage):
    """Datapath synthesis and technology mapping onto the WCLA."""

    name = "synthesis"
    in_bundle = True

    def content_key(self, context: FlowContext) -> Optional[str]:
        fabric = context.wcla.fabric
        return content_digest(self.cache_token(),
                              context.body_form(),
                              f"lut_inputs={fabric.lut_inputs}",
                              f"memory_ports={context.wcla.memory_ports}")

    def compute(self, context: FlowContext):
        return synthesize_kernel(context.kernel,
                                 lut_inputs=context.wcla.fabric.lut_inputs,
                                 memory_ports=context.wcla.memory_ports)

    def install(self, context: FlowContext, value) -> None:
        context.synthesis = value

    def modelled_cycles(self, context: FlowContext) -> int:
        if context.synthesis is None:
            return 0
        return context.synthesis.total_luts \
            * context.cost_model.cycles_per_synthesized_lut


# --------------------------------------------------------------------------- placement
class PlacementStage(FlowStage):
    """Greedy constructive placement on the fabric's CLB grid.

    Capacity rejections are memoized: both a
    :class:`~repro.fabric.place.FabricCapacityError` (no free sites) and a
    completed-but-oversubscribed placement are negatives served from the
    cache on repeats.
    """

    name = "place"
    in_bundle = True
    negative_exceptions = (FabricCapacityError,)

    def content_key(self, context: FlowContext) -> Optional[str]:
        fabric = context.wcla.fabric
        return content_digest(self.cache_token(),
                              context.digests["synthesis"],
                              f"rows={fabric.rows}",
                              f"columns={fabric.columns}",
                              f"luts_per_clb={fabric.luts_per_clb}")

    def compute(self, context: FlowContext):
        return place_kernel(context.synthesis, context.wcla)

    def install(self, context: FlowContext, value) -> None:
        context.placement = value

    def revive_negative(self, marker: CapacityRejection) -> BaseException:
        return FabricCapacityError(marker.message)

    def modelled_cycles(self, context: FlowContext) -> int:
        if context.placement is None:
            return 0
        return len(context.placement.components) \
            * context.cost_model.cycles_per_placed_component


# --------------------------------------------------------------------------- routing
class RouteStage(FlowStage):
    """Negotiated-congestion routing ("Pathfinder-lite") of the placed nets.

    ``route-greedy`` registers the single-pass variant (``max_iterations=1``,
    no rip-up-and-reroute) under the same stage slot; its ``variant`` tag
    keeps the two routers' cache entries apart.
    """

    name = "route"
    in_bundle = True

    def __init__(self, variant: str = "default", max_iterations: int = 4):
        self.variant = variant
        self.max_iterations = max_iterations

    def content_key(self, context: FlowContext) -> Optional[str]:
        return content_digest(self.cache_token(),
                              context.digests["place"],
                              f"channel_width={context.wcla.fabric.channel_width}",
                              f"max_iterations={self.max_iterations}")

    def compute(self, context: FlowContext):
        router = PathfinderLiteRouter(context.wcla.fabric,
                                      max_iterations=self.max_iterations)
        return router.route(context.placement)

    def install(self, context: FlowContext, value) -> None:
        context.routing = value

    def modelled_cycles(self, context: FlowContext) -> int:
        if context.routing is None:
            return 0
        return context.routing.total_segments_used \
            * context.cost_model.cycles_per_routed_segment


# --------------------------------------------------------------------------- implementation
class ImplementationStage(FlowStage):
    """Clock estimation and the symbolic configuration bitstream."""

    name = "implement"
    in_bundle = True

    def content_key(self, context: FlowContext) -> Optional[str]:
        return content_digest(self.cache_token(),
                              context.digests["route"],
                              canonical_wcla_form(context.wcla))

    def compute(self, context: FlowContext):
        return implement_kernel(context.kernel, context.synthesis,
                                context.placement, context.routing,
                                context.wcla)

    def install(self, context: FlowContext, value) -> None:
        context.implementation = value


# --------------------------------------------------------------------------- binary update
class BinaryUpdateStage(FlowStage):
    """Patch the running binary to invoke the new hardware.

    Uncacheable (the stub is linked at the region's concrete addresses),
    and gated on the area check: a kernel that does not fit the fabric is
    never patched in.
    """

    name = "binary-update"

    def compute(self, context: FlowContext):
        if not context.placement.area.fits:
            raise KernelDoesNotFitError("kernel does not fit the fabric")
        # Imported lazily: repro.partition drives this flow, so a module
        # level import here would be circular.
        from ..partition.binary_patch import apply_patch
        return apply_patch(context.program, context.kernel,
                           wcla_base=context.wcla_base_address)

    def install(self, context: FlowContext, value) -> None:
        context.patch = value


# --------------------------------------------------------------------------- registry
register_stage("decompile", DecompileStage)
register_stage("synthesis", SynthesisStage)
register_stage("place", PlacementStage)
register_stage("route", RouteStage)
register_stage("route-greedy",
               lambda: RouteStage(variant="greedy", max_iterations=1))
register_stage("implement", ImplementationStage)
register_stage("binary-update", BinaryUpdateStage)
