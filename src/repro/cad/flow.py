"""The pass-pipeline driver of the on-chip CAD flow.

A :class:`CadFlow` is an ordered sequence of :class:`FlowStage` passes —
decompile, synthesis/tech-map, placement, routing, implementation, binary
update by default — threaded through one :class:`FlowContext` that carries
the typed artifacts from stage to stage.  The driver owns everything the
stages have in common:

* **per-stage caching** — a stage that contributes a content key is served
  from the :class:`~repro.cad.artifacts.CadArtifactCache`'s stage entries,
  with capacity rejections memoized as negatives; a whole-bundle fast path
  serves exact repeats in one lookup;
* **accounting** — every stage leaves a :class:`StageRecord` with its host
  wall time, its modelled on-chip cycles (the
  :class:`DpmCostModel` contribution that used to be summed centrally),
  and how it was satisfied (``miss``/``hit``/``bundle``/``negative-hit``/
  ``uncached``);
* **tracing** — hooks invoked after every stage record;
* **failure mapping** — domain errors are wrapped in :class:`FlowError`
  (keeping the failing stage's name and the original cause) so the DPM can
  translate them into the exact legacy outcome shapes.

Alternate passes register under the stage registry
(:func:`register_stage`) and are selected per flow — and, through
:class:`~repro.service.jobs.WarpJob.stages`, per service job — by name via
:func:`build_flow`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import chaos, obs
from ..decompile.kernel import HardwareKernel
from ..decompile.symexec import SymbolicLoopBody
from ..fabric.architecture import WclaParameters
from ..fabric.implementation import HardwareImplementation
from ..fabric.place import PlacementResult
from ..fabric.route import RoutingResult
from ..synthesis.datapath import SynthesisResult
from .artifacts import CadArtifactCache, CadArtifacts, CapacityRejection, \
    is_negative_artifact
from .keys import canonical_body_form


# --------------------------------------------------------------------------- cost model
@dataclass
class DpmCostModel:
    """Analytical execution-time model of the on-chip tools themselves.

    The companion papers report that the lean tools run in about a second on
    a modest embedded processor; the per-phase constants below reproduce
    that order of magnitude as a function of problem size so the
    multi-processor round-robin study has something meaningful to add up.
    Each :class:`FlowStage` reads its own constant and reports its modelled
    cycles; :meth:`partitioning_cycles` remains as the closed-form sum over
    the default stages.
    """

    clock_mhz: float = 85.0
    cycles_per_decompiled_instruction: int = 40_000
    cycles_per_synthesized_lut: int = 6_000
    cycles_per_placed_component: int = 25_000
    cycles_per_routed_segment: int = 3_000
    fixed_overhead_cycles: int = 2_000_000

    def partitioning_cycles(self, kernel: HardwareKernel,
                            synthesis: SynthesisResult,
                            placement: PlacementResult,
                            routing: RoutingResult) -> int:
        cycles = self.fixed_overhead_cycles
        cycles += kernel.region.num_instructions * self.cycles_per_decompiled_instruction
        cycles += synthesis.total_luts * self.cycles_per_synthesized_lut
        cycles += len(placement.components) * self.cycles_per_placed_component
        cycles += routing.total_segments_used * self.cycles_per_routed_segment
        return cycles

    def partitioning_seconds(self, kernel: HardwareKernel,
                             synthesis: SynthesisResult,
                             placement: PlacementResult,
                             routing: RoutingResult) -> float:
        return self.partitioning_cycles(kernel, synthesis, placement, routing) \
            / (self.clock_mhz * 1e6)


# --------------------------------------------------------------------------- errors
class FlowError(Exception):
    """A stage failed; carries the stage name and the domain-level cause."""

    def __init__(self, stage: str, cause: BaseException):
        super().__init__(f"CAD flow stage {stage!r} failed: {cause}")
        self.stage = stage
        self.cause = cause


class KernelRejectedError(Exception):
    """The decompiled kernel is not partitionable (no induction variable,
    irregular memory access pattern, ...)."""


class KernelDoesNotFitError(Exception):
    """The placed kernel exceeds the configurable fabric's capacity."""


# --------------------------------------------------------------------------- records
#: How a stage was satisfied.
SOURCE_MISS = "miss"                  # executed; cache consulted and stored
SOURCE_HIT = "hit"                    # served from a per-stage memory entry
SOURCE_BUNDLE = "bundle"              # served by the whole-bundle fast path
SOURCE_NEGATIVE = "negative-hit"      # memoized capacity rejection replayed
SOURCE_DISK = "disk-hit"              # served by the persistent store tier
SOURCE_PEER = "peer-hit"              # pulled from a mesh peer's store
SOURCE_UNCACHED = "uncached"          # executed; no cache or uncacheable


@dataclass
class StageRecord:
    """Accounting left behind by one stage of one flow run."""

    stage: str
    source: str = SOURCE_UNCACHED
    wall_seconds: float = 0.0
    modelled_cycles: int = 0
    modelled_seconds: float = 0.0
    key: Optional[str] = None
    in_bundle: bool = False
    failed: bool = False
    #: Transient faults absorbed while computing this stage.
    retries: int = 0


# --------------------------------------------------------------------------- context
@dataclass
class FlowContext:
    """Mutable state threaded through one flow run.

    Stages read their inputs from — and install their outputs into — this
    context; the driver adds the cache bookkeeping (``digests`` chains the
    per-stage content addresses) and the :class:`StageRecord` trail.
    """

    wcla: WclaParameters
    wcla_base_address: int
    cost_model: DpmCostModel
    cache: Optional[CadArtifactCache] = None
    program: Optional[object] = None
    region: Optional[object] = None
    # ------------------------------------------------------- typed artifacts
    body: Optional[SymbolicLoopBody] = None
    kernel: Optional[HardwareKernel] = None
    synthesis: Optional[SynthesisResult] = None
    placement: Optional[PlacementResult] = None
    routing: Optional[RoutingResult] = None
    implementation: Optional[HardwareImplementation] = None
    patch: Optional[object] = None
    # ---------------------------------------------------------- bookkeeping
    digests: Dict[str, str] = field(default_factory=dict)
    records: List[StageRecord] = field(default_factory=list)
    bundle_key: Optional[str] = None
    bundle_hit: bool = False
    _body_form: Optional[str] = field(default=None, repr=False)

    def body_form(self) -> str:
        """The kernel's canonical DADG form, serialized once per run (both
        the bundle key and the synthesis stage key consume it)."""
        if self._body_form is None:
            self._body_form = canonical_body_form(self.kernel.body)
        return self._body_form

    # ------------------------------------------------------------ accounting
    def modelled_cycles(self) -> int:
        """Total modelled DPM cycles: fixed overhead + per-stage sums."""
        return self.cost_model.fixed_overhead_cycles \
            + sum(record.modelled_cycles for record in self.records)

    def modelled_seconds(self) -> float:
        return self.modelled_cycles() / (self.cost_model.clock_mhz * 1e6)

    def served_from_cache(self) -> bool:
        """Whether every CAD artifact came out of the cache (bundle fast
        path or a full chain of per-stage hits)."""
        if self.bundle_hit:
            return True
        bundle = [record for record in self.records if record.in_bundle]
        return bool(bundle) and all(record.source in (SOURCE_HIT,
                                                      SOURCE_BUNDLE,
                                                      SOURCE_DISK)
                                    for record in bundle)


# --------------------------------------------------------------------------- stages
class FlowStage:
    """One pass of the CAD flow.

    Subclasses define the five aspects the driver composes:

    * ``name`` — the slot this stage fills (``"route"`` for every router
      variant); ``variant`` distinguishes alternates in the content key;
    * :meth:`content_key` — the stage's content-address contribution, or
      ``None`` for uncacheable stages (decompile, binary update).  Keys
      chain the upstream digest from ``context.digests``;
    * :meth:`compute` / :meth:`install` — produce the stage's value (may
      raise a domain error) and write it into the context.  They are split
      so a cached value installs without recomputing;
    * :meth:`validate` — post-install checks (may raise a domain error);
    * :meth:`modelled_cycles` — the stage's :class:`DpmCostModel`
      contribution.

    ``key_version`` participates in the content key: bump it when the
    stage's algorithm or key encoding changes.  ``negative_exceptions``
    lists domain errors worth memoizing as :class:`CapacityRejection`
    markers under the same content address.
    """

    name: str = "stage"
    variant: str = "default"
    key_version: int = 1
    in_bundle: bool = False
    negative_exceptions: Tuple[type, ...] = ()

    def cache_token(self) -> str:
        """Stage identity prefix of the content key."""
        return f"{self.name}/{self.variant}:v{self.key_version}"

    def content_key(self, context: FlowContext) -> Optional[str]:
        return None

    def compute(self, context: FlowContext):
        raise NotImplementedError

    def install(self, context: FlowContext, value) -> None:
        raise NotImplementedError

    def validate(self, context: FlowContext) -> None:
        return None

    def modelled_cycles(self, context: FlowContext) -> int:
        return 0

    def negative_marker(self, error: BaseException) -> CapacityRejection:
        return CapacityRejection(message=str(error))

    def revive_negative(self, marker: CapacityRejection) -> BaseException:
        raise NotImplementedError(
            f"stage {self.name!r} memoizes no negative results")


# --------------------------------------------------------------------------- driver
TraceHook = Callable[[StageRecord, FlowContext], None]

#: Transient-fault (``ChaosError``) retries per stage compute before the
#: fault escapes to the job level.
STAGE_TRANSIENT_RETRIES = 3


class CadFlow:
    """Runs an ordered sequence of stages over one :class:`FlowContext`."""

    def __init__(self, stages: Sequence[FlowStage],
                 trace_hooks: Sequence[TraceHook] = ()):
        self.stages = list(stages)
        self.trace_hooks = list(trace_hooks)
        self._last_bundle_stage: Optional[FlowStage] = None
        for stage in self.stages:
            if stage.in_bundle:
                self._last_bundle_stage = stage

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def bundle_token(self) -> str:
        """Identity of the bundled passes, part of the whole-bundle key:
        flows with different stage variants (or key versions) never share
        a bundle entry."""
        return "|".join(stage.cache_token() for stage in self.stages
                        if stage.in_bundle)

    def add_trace_hook(self, hook: TraceHook) -> None:
        self.trace_hooks.append(hook)

    # --------------------------------------------------------------------- run
    def run(self, context: FlowContext) -> FlowContext:
        """Execute every stage in order; raises :class:`FlowError` on the
        first failure (the context keeps the partial artifacts and the
        records of every stage attempted)."""
        for stage in self.stages:
            self._run_stage(stage, context)
        return context

    def _run_stage(self, stage: FlowStage, context: FlowContext) -> None:
        start = time.perf_counter()
        record = StageRecord(stage=stage.name, in_bundle=stage.in_bundle)
        # The stage span nests under whatever the calling thread has open
        # (the worker's execute span), so a job's per-stage timeline joins
        # its trace without the flow knowing about jobs at all.
        with obs.span("cad-stage", stage=stage.name) as stage_span:
            self._run_stage_body(stage, context, record, start, stage_span)

    def _run_stage_body(self, stage: FlowStage, context: FlowContext,
                        record: StageRecord, start: float,
                        stage_span) -> None:
        try:
            cache = context.cache
            if stage.in_bundle and cache is not None \
                    and context.bundle_key is None:
                self._try_bundle(context)
            if stage.in_bundle and context.bundle_hit:
                record.source = SOURCE_BUNDLE
                return
            key = stage.content_key(context) if cache is not None else None
            record.key = key
            if key is not None:
                context.digests[stage.name] = key
                cached = cache.stage_lookup(stage.name, key)
                if isinstance(cached, CapacityRejection):
                    record.source = SOURCE_NEGATIVE
                    raise stage.revive_negative(cached)
                if cached is not None:
                    if is_negative_artifact(cached):
                        record.source = SOURCE_NEGATIVE
                    elif cache.last_lookup_tier == "disk":
                        record.source = SOURCE_DISK
                    elif cache.last_lookup_tier == "peer":
                        record.source = SOURCE_PEER
                    else:
                        record.source = SOURCE_HIT
                    stage.install(context, cached)
                else:
                    record.source = SOURCE_MISS
                    value = self._compute(stage, context, key, record)
                    cache.stage_store(stage.name, key, value)
                    stage.install(context, value)
            else:
                record.source = SOURCE_UNCACHED
                stage.install(context,
                              self._compute(stage, context, None, record))
            stage.validate(context)
            if stage is self._last_bundle_stage:
                self._store_bundle(context)
        except FlowError:
            record.failed = True
            raise
        except chaos.ChaosError:
            # Deliberately NOT wrapped in FlowError: a transient injected
            # fault is an environment failure, not a domain failure of
            # this stage.  Wrapping it would let the DPM translate it
            # into a partitioning-failure outcome (software fallback —
            # silent divergence); unwrapped, it escapes to the job-level
            # transient retry in the service pool.
            record.failed = True
            raise
        except Exception as error:
            record.failed = True
            raise FlowError(stage.name, error) from error
        finally:
            record.wall_seconds = time.perf_counter() - start
            if not record.failed:
                record.modelled_cycles = stage.modelled_cycles(context)
                record.modelled_seconds = record.modelled_cycles \
                    / (context.cost_model.clock_mhz * 1e6)
            if obs.ACTIVE is not None:
                if stage_span is not None:
                    stage_span.set(source=record.source,
                                   retries=record.retries,
                                   failed=record.failed)
                if not record.failed:
                    obs.inc("warp_stage_lookups_total", stage=record.stage,
                            source=record.source)
            context.records.append(record)
            for hook in self.trace_hooks:
                hook(record, context)

    def _compute(self, stage: FlowStage, context: FlowContext,
                 key: Optional[str], record: StageRecord):
        attempts_left = STAGE_TRANSIENT_RETRIES
        while True:
            try:
                if chaos.ACTIVE_PLAN is not None:
                    chaos.fire(chaos.SITE_CAD_STAGE, label=stage.name)
                return stage.compute(context)
            except chaos.ChaosError:
                # Bounded in-place retry of transient faults: the stage
                # is pure (it reads the context, returns a value), so
                # rerunning it is safe and cheaper than failing the job.
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                record.retries += 1
                if obs.ACTIVE is not None:
                    obs.inc("warp_retries_total", site="cad-stage")
            except stage.negative_exceptions as error:
                if key is not None:
                    context.cache.stage_store(stage.name, key,
                                              stage.negative_marker(error))
                raise

    # ------------------------------------------------------------ bundle path
    def _try_bundle(self, context: FlowContext) -> None:
        context.bundle_key = context.cache.key_for(
            context.kernel, context.wcla, self.bundle_token(),
            body_form=context.body_form())
        if not context.cache.bundle_fast_path:
            return
        artifacts = context.cache.lookup(context.bundle_key)
        if artifacts is not None:
            context.bundle_hit = True
            context.synthesis = artifacts.synthesis
            context.placement = artifacts.placement
            context.routing = artifacts.routing
            context.implementation = artifacts.implementation

    def _store_bundle(self, context: FlowContext) -> None:
        """Memoize the whole bundle after the last CAD stage (only fitting
        bundles are stored, so a bundle hit implies the kernel fits)."""
        cache = context.cache
        if cache is None or context.bundle_hit or context.bundle_key is None:
            return
        if context.placement is None or not context.placement.area.fits:
            return
        cache.store(context.bundle_key, CadArtifacts(
            synthesis=context.synthesis, placement=context.placement,
            routing=context.routing, implementation=context.implementation))


# --------------------------------------------------------------------------- registry
_REGISTRY: Dict[str, Callable[[], FlowStage]] = {}

#: The paper's lean on-chip flow, in order.
DEFAULT_STAGE_NAMES = ("decompile", "synthesis", "place", "route",
                       "implement", "binary-update")


def register_stage(name: str, factory: Callable[[], FlowStage]) -> None:
    """Register a stage (or an alternate variant) under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"stage {name!r} is already registered")
    _REGISTRY[name] = factory


def available_stage_names() -> List[str]:
    return sorted(_REGISTRY)


def build_stage(name: str) -> FlowStage:
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(f"unknown CAD stage {name!r}; available: "
                         f"{available_stage_names()}")
    return factory()


def build_flow(stage_names: Optional[Sequence[str]] = None,
               trace_hooks: Sequence[TraceHook] = ()) -> CadFlow:
    """Assemble a :class:`CadFlow` from registered stage names (the
    default flow when ``stage_names`` is ``None``)."""
    names = DEFAULT_STAGE_NAMES if stage_names is None else tuple(stage_names)
    return CadFlow([build_stage(name) for name in names],
                   trace_hooks=trace_hooks)


def validate_job_stage_names(stage_names: Sequence[str]) -> None:
    """Check a *declarative* stage list (a job spec) fills every slot of
    the default pipeline, in order.

    Registered alternates swap within a slot (``route-greedy`` still fills
    the ``route`` slot), but the stages feed each other through the
    :class:`FlowContext`, so a list that omits or reorders slots would only
    fail deep inside a worker with a cryptic attribute error.  Raises
    :class:`ValueError` naming the offending list instead.  Programmatic
    flows built directly from :class:`CadFlow` stay unconstrained.
    """
    slots = tuple(build_stage(name).name for name in stage_names)
    if slots != DEFAULT_STAGE_NAMES:
        raise ValueError(
            f"stage list {tuple(stage_names)} fills slots {slots}; a job's "
            f"flow must fill the slots {DEFAULT_STAGE_NAMES} in order "
            f"(alternates swap within a slot, e.g. 'route-greedy' for "
            f"'route')")
