"""Shared bounded-LRU cache used by every memoization layer of the repo.

Three layers memoize expensive work across the warp service:

* the compiler cache (:func:`repro.compiler.driver.compile_source_cached`)
  memoizes source → :class:`~repro.compiler.driver.CompilationResult`;
* the CAD artifact cache (:class:`repro.cad.CadArtifactCache`) memoizes a
  kernel's synthesis / placement / routing / implementation outputs —
  whole bundles and per-stage entries — under content-addressed keys;
* the persistent :class:`repro.server.store.DiskArtifactStore` sits
  *under* the artifact cache as its disk tier (its mtime-LRU eviction is
  file-based, not this in-memory primitive).

The in-memory layers sit on the same primitive defined here so they share
one eviction policy, one hit/miss accounting convention, and one explicit
``clear()`` that the tests use to force cold-cache behaviour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

_MISSING = object()


class BoundedLRU:
    """A bounded least-recently-used mapping with hit/miss accounting.

    ``maxsize=None`` disables eviction (unbounded).  Lookups move the entry
    to the most-recently-used position; insertion beyond ``maxsize`` evicts
    the least recently used entry.  Mutations serialize on an internal
    lock: pool workers own private instances, but the gateway's concurrent
    batch executors share the serial path's process-wide caches across
    threads.  :meth:`get_or_create` deliberately runs the factory
    *outside* the lock — two threads may both compute a missed entry, but
    entries are content-addressed (both compute the identical value, last
    put wins) and a lock held across an expensive CAD stage would
    serialize the very concurrency the executors exist for.
    """

    def __init__(self, maxsize: Optional[int] = 128):
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key`` (does not touch hit/miss counters)."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, creating it on a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self.hits += 1
                self._data.move_to_end(key)
                return value
            self.misses += 1
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry and reset the accounting counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    # -------------------------------------------------------------- accounting
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def counters(self) -> Tuple[int, int]:
        """``(hits, misses)`` — cheap snapshot for per-job delta accounting."""
        return self.hits, self.misses

    def stats(self) -> Dict[str, Any]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


def lru_memoize(maxsize: Optional[int] = 128):
    """Decorator form of :class:`BoundedLRU` for pure positional functions.

    Unlike :func:`functools.lru_cache` the backing cache is exposed as
    ``wrapper.cache`` so callers (and tests) can read the hit/miss counters
    and call ``wrapper.cache.clear()``.
    """

    def decorate(fn: Callable) -> Callable:
        cache = BoundedLRU(maxsize)

        def wrapper(*args):
            return cache.get_or_create(args, lambda: fn(*args))

        wrapper.cache = cache
        wrapper.cache_clear = cache.clear
        wrapper.__wrapped__ = fn
        wrapper.__name__ = getattr(fn, "__name__", "memoized")
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return decorate
