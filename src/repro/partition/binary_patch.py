"""Binary updating: making the executing application use the new hardware.

The last step of the dynamic partitioning flow "updates the executing
application's binary code to utilize the hardware within the configurable
logic fabric" (Section 3).  We reproduce that as the real tools did:

* an *invocation stub* is appended to the program's instruction image; it
  copies the kernel's live-in registers to the WCLA's register file over
  the on-chip peripheral bus, starts the hardware, copies the live-out
  registers back, and branches to the loop's exit;
* the first instruction of the loop (the backward branch's target) is
  overwritten with an absolute branch to the stub.

Everything else in the binary is untouched, so code that reaches the loop
header keeps working and code that never did is unaffected.  The patching
is reversible (the original words are recorded) which the tests use to
verify that un-patching restores a bit-identical binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..decompile.kernel import HardwareKernel
from ..isa.encoding import encode
from ..isa.instructions import Instruction
from ..isa.program import Program
from ..microblaze.opb import OPB_BASE_ADDRESS
from ..fabric.hw_exec import WclaPeripheral

#: Registers the code generator uses as intra-statement scratch; they are
#: never live across the loop boundary so the stub may clobber them and does
#: not need to restore them.
SCRATCH_REGISTERS = (17, 18)

#: Encoded canonical NOP (``or r0, r0, r0``), used to blank undone stubs.
_NOP_WORD = encode(Instruction("or", rd=0, ra=0, rb=0))


class PatchError(Exception):
    """Raised when a kernel cannot be safely patched into the binary."""


@dataclass
class BinaryPatch:
    """Record of one applied patch (enough to undo it)."""

    header_address: int
    original_word: int
    stub_address: int
    stub_words: List[int] = field(default_factory=list)
    exit_address: int = 0
    live_in_registers: Tuple[int, ...] = ()
    live_out_registers: Tuple[int, ...] = ()

    @property
    def stub_instructions(self) -> int:
        return len(self.stub_words)

    @property
    def invocation_opb_accesses(self) -> int:
        """OPB transactions per invocation (live-in writes + start + live-out reads)."""
        return len(self.live_in_registers) + 1 + len(self.live_out_registers)


def _stub_instructions(kernel: HardwareKernel, wcla_base: int,
                       exit_address: int) -> List[Instruction]:
    """Build the invocation stub for ``kernel``."""
    live_in = [r for r in kernel.live_in_registers if r != 0]
    live_out = [r for r in kernel.live_out_registers
                if r != 0 and r not in SCRATCH_REGISTERS]
    for register in live_in:
        if register in SCRATCH_REGISTERS:
            raise PatchError(
                f"live-in register r{register} collides with the stub's scratch registers"
            )

    instructions: List[Instruction] = []
    high = (wcla_base >> 16) & 0xFFFF
    low = wcla_base & 0xFFFF
    if low >= 0x8000:
        low -= 0x10000
    instructions.append(Instruction("imm", imm=high))
    instructions.append(Instruction("addi", rd=18, ra=0, imm=low,
                                    comment="r18 = WCLA base"))
    for register in live_in:
        instructions.append(Instruction("swi", rd=register, ra=18, imm=4 * register,
                                        comment=f"live-in r{register}"))
    instructions.append(Instruction("addi", rd=17, ra=0, imm=1))
    instructions.append(Instruction("swi", rd=17, ra=18,
                                    imm=WclaPeripheral.CONTROL_OFFSET,
                                    comment="start hardware"))
    for register in live_out:
        instructions.append(Instruction("lwi", rd=register, ra=18, imm=4 * register,
                                        comment=f"live-out r{register}"))
    instructions.append(Instruction("brai", imm=exit_address,
                                    comment="resume after the loop"))
    return instructions


def apply_patch(program: Program, kernel: HardwareKernel,
                wcla_base: int = OPB_BASE_ADDRESS,
                system=None) -> BinaryPatch:
    """Patch ``program`` in place so the kernel's loop runs on the WCLA.

    Returns the :class:`BinaryPatch` record needed to undo the change and to
    account for the per-invocation communication overhead.

    When ``system`` (a running
    :class:`~repro.microblaze.system.MicroBlazeSystem`) is given, the patch
    is additionally applied to the *live* instruction BRAM through the
    DPM's second port and the CPU's decode cache and superblock
    translations covering the touched addresses are invalidated — the
    mid-execution binary update of Section 3.  Without invalidation the
    threaded-code engine (and the decode cache before it) would keep
    executing the stale translation of the loop header.
    """
    region = kernel.region
    header_address = region.start_address
    exit_address = region.end_address + 4
    if header_address % 4 or header_address >= 4 * len(program.text):
        raise PatchError(f"loop header {header_address:#x} outside the program text")
    if exit_address >= 4 * len(program.text):
        raise PatchError("loop exit falls outside the program text")

    stub_address = 4 * len(program.text)
    stub = _stub_instructions(kernel, wcla_base, exit_address)
    stub_words = [encode(instr) for instr in stub]
    program.text.extend(stub_words)

    original_word = program.word_at(header_address)
    branch_to_stub = Instruction("brai", imm=stub_address)
    program.patch_word(header_address, encode(branch_to_stub))

    if system is not None:
        patch_live_words(system, stub_address, stub_words)
        patch_live_words(system, header_address,
                         [program.word_at(header_address)])

    return BinaryPatch(
        header_address=header_address,
        original_word=original_word,
        stub_address=stub_address,
        stub_words=stub_words,
        exit_address=exit_address,
        live_in_registers=tuple(r for r in kernel.live_in_registers if r != 0),
        live_out_registers=tuple(r for r in kernel.live_out_registers
                                 if r != 0 and r not in SCRATCH_REGISTERS),
    )


def undo_patch(program: Program, patch: BinaryPatch, system=None) -> None:
    """Restore the program to its pre-patch state (bit exact).

    As with :func:`apply_patch`, passing ``system`` also reverts the live
    instruction BRAM and invalidates the stale translations.
    """
    program.patch_word(patch.header_address, patch.original_word)
    expected_length = patch.stub_address // 4 + len(patch.stub_words)
    if len(program.text) < expected_length:
        raise PatchError("program text shorter than expected while undoing patch")
    if 4 * len(program.text) == patch.stub_address + 4 * len(patch.stub_words):
        del program.text[patch.stub_address // 4:]
        stub_restore = [_NOP_WORD] * len(patch.stub_words)
    else:
        # Another patch was applied after this one; blank the stub instead.
        stub_restore = [_NOP_WORD] * len(patch.stub_words)
        for index in range(len(patch.stub_words)):
            program.text[patch.stub_address // 4 + index] = _NOP_WORD
    if system is not None:
        patch_live_words(system, patch.header_address, [patch.original_word])
        patch_live_words(system, patch.stub_address, stub_restore)


def patch_live_words(system, address: int, words: Sequence[int]) -> None:
    """Write ``words`` into a running system's instruction BRAM at ``address``.

    This is the primitive behind mid-execution binary updates: the words go
    in through the BRAM's second port (the port the dynamic partitioning
    module owns in Figure 2), one bulk pass, and the CPU's decode cache and
    superblock cache are invalidated for exactly the touched addresses so
    the next fetch re-translates the patched code.
    """
    bram = system.instr_bram
    bram.store_words(address, list(words))
    bram.port_b_accesses += len(words)
    for offset in range(0, 4 * len(words), 4):
        system.cpu.invalidate_decode_cache(address + offset)
