"""Dynamic partitioning module (DPM) and binary updating.

Orchestrates the ROCPART flow — decompile, synthesise, place, route,
configure, patch — and models the on-chip tools' own execution time.
"""

from .binary_patch import (
    BinaryPatch,
    PatchError,
    SCRATCH_REGISTERS,
    apply_patch,
    patch_live_words,
    undo_patch,
)
from .dpm import DpmCostModel, DynamicPartitioningModule, PartitioningOutcome

__all__ = [
    "BinaryPatch",
    "PatchError",
    "SCRATCH_REGISTERS",
    "apply_patch",
    "patch_live_words",
    "undo_patch",
    "DpmCostModel",
    "DynamicPartitioningModule",
    "PartitioningOutcome",
]
