"""The dynamic partitioning module (DPM).

The DPM is the embedded processor that runs the Riverside on-chip
partitioning tools (ROCPART): it reads the profiler's results, selects the
most critical region, decompiles it from the application binary, runs
synthesis / technology mapping / placement / routing for the WCLA, and
finally updates the application binary to invoke the new hardware
(Section 3 of the paper).  In the paper's system the DPM is itself another
MicroBlaze with its own memories; we model the tool *flow* exactly and the
DPM's own execution time analytically (so studies of how long on-chip CAD
takes, and whether one DPM can serve several processors round-robin, remain
possible).

The flow itself lives in :mod:`repro.cad`: an explicit pass pipeline
(decompile → synthesis → place → route → implement → binary update) with
per-stage content-addressed caching, per-stage host wall time and modelled
DPM cycles, and a registry of alternate passes.  This module is the thin
driver that runs one :class:`~repro.cad.CadFlow` per critical region and
translates stage failures into :class:`PartitioningOutcome` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..cad import (
    CadFlow,
    DpmCostModel,
    FlowContext,
    FlowError,
    KernelDoesNotFitError,
    KernelRejectedError,
    StageRecord,
    build_flow,
)
from ..decompile.kernel import HardwareKernel
from ..decompile.symexec import DecompilationError
from ..fabric.architecture import DEFAULT_WCLA, WclaParameters
from ..fabric.implementation import HardwareImplementation
from ..fabric.place import FabricCapacityError, PlacementResult
from ..fabric.route import RoutingResult
from ..isa.program import Program
from ..microblaze.opb import OPB_BASE_ADDRESS
from ..profiler.profiler import CriticalRegion
from ..synthesis.datapath import SynthesisResult
from .binary_patch import BinaryPatch, PatchError

__all__ = ["DpmCostModel", "DynamicPartitioningModule", "PartitioningOutcome"]


@dataclass
class PartitioningOutcome:
    """Everything the DPM produced for one critical region."""

    success: bool
    region: CriticalRegion
    reason: Optional[str] = None
    kernel: Optional[HardwareKernel] = None
    synthesis: Optional[SynthesisResult] = None
    placement: Optional[PlacementResult] = None
    routing: Optional[RoutingResult] = None
    implementation: Optional[HardwareImplementation] = None
    patch: Optional[BinaryPatch] = None
    dpm_seconds: float = 0.0
    #: Whether the CAD artifacts came from the content-addressed cache
    #: (host-side memoization; the *modelled* on-chip tool time
    #: ``dpm_seconds`` is unaffected, it is a property of the simulated
    #: system, not of how fast this process produced the artifacts).
    cad_cache_hit: bool = False
    #: Content address of the (kernel, WCLA) pair when a cache was in use.
    cad_cache_key: Optional[str] = None
    #: Per-stage accounting of the flow run that produced this outcome:
    #: host wall time, modelled DPM cycles, and how each stage was
    #: satisfied (executed, per-stage cache hit, bundle fast path, memoized
    #: capacity rejection).
    stage_records: List[StageRecord] = field(default_factory=list)

    def summary(self) -> str:
        if not self.success:
            return f"partitioning rejected: {self.reason}"
        lines = [
            self.kernel.summary(),
            self.synthesis.summary(),
            self.implementation.summary(),
            f"on-chip tool time: {self.dpm_seconds * 1e3:.1f} ms (modelled)",
        ]
        return "\n".join(lines)


class DynamicPartitioningModule:
    """Runs the ROCPART flow for one program and one critical region.

    ``artifact_cache`` (a :class:`~repro.cad.CadArtifactCache`) memoizes
    the CAD stage outputs under content addresses of the kernel's dataflow
    graph and the WCLA parameters: repeated partitioning of the same loop
    body — across service jobs, across the cores of a multiprocessor
    system, across sweep repetitions — skips the CAD work, stage by stage
    or (on an exact repeat) as a whole bundle.  Without a cache the flow
    always runs, exactly as before.

    The flow is pluggable: pass ``stage_names`` (registry names, e.g.
    swapping ``"route"`` for ``"route-greedy"``) or a prebuilt ``flow`` to
    replace passes; ``trace_hooks`` observe every stage record.
    """

    def __init__(self, wcla: WclaParameters = DEFAULT_WCLA,
                 wcla_base_address: int = OPB_BASE_ADDRESS,
                 cost_model: Optional[DpmCostModel] = None,
                 artifact_cache=None,
                 flow: Optional[CadFlow] = None,
                 stage_names: Optional[Sequence[str]] = None,
                 trace_hooks: Sequence = ()):
        if flow is not None and (stage_names is not None
                                 or len(tuple(trace_hooks)) > 0):
            raise ValueError("pass either a prebuilt flow or the "
                             "stage_names/trace_hooks it would be built "
                             "with, not both")
        self.wcla = wcla
        self.wcla_base_address = wcla_base_address
        self.cost_model = cost_model if cost_model is not None else DpmCostModel()
        self.artifact_cache = artifact_cache
        self.flow = flow if flow is not None \
            else build_flow(stage_names, trace_hooks=trace_hooks)

    def partition(self, program: Program,
                  region: Optional[CriticalRegion]) -> PartitioningOutcome:
        """Run the full flow and patch ``program`` in place on success.

        On any failure the program is left untouched and the outcome records
        the reason, mirroring a warp processor that silently keeps executing
        the software-only binary.
        """
        if region is None:
            return PartitioningOutcome(success=False, region=None,
                                       reason="profiler found no critical region")
        context = FlowContext(
            wcla=self.wcla,
            wcla_base_address=self.wcla_base_address,
            cost_model=self.cost_model,
            cache=self.artifact_cache,
            program=program,
            region=region,
        )
        try:
            self.flow.run(context)
        except FlowError as error:
            return self._failure_outcome(context, error)
        return PartitioningOutcome(
            success=True,
            region=region,
            kernel=context.kernel,
            synthesis=context.synthesis,
            placement=context.placement,
            routing=context.routing,
            implementation=context.implementation,
            patch=context.patch,
            dpm_seconds=context.modelled_seconds(),
            cad_cache_hit=context.served_from_cache(),
            cad_cache_key=context.bundle_key,
            stage_records=list(context.records),
        )

    # ------------------------------------------------------------- failures
    def _failure_outcome(self, context: FlowContext,
                         error: FlowError) -> PartitioningOutcome:
        """Translate a stage failure into the outcome shape the rest of the
        system expects (the same fields the monolithic flow reported)."""
        cause = error.cause
        region = context.region
        records = list(context.records)
        if isinstance(cause, DecompilationError):
            return PartitioningOutcome(
                success=False, region=region,
                reason=f"decompilation failed: {cause}",
                stage_records=records)
        if isinstance(cause, KernelRejectedError):
            return PartitioningOutcome(
                success=False, region=region,
                reason=context.kernel.rejection_reason,
                kernel=context.kernel, stage_records=records)
        if isinstance(cause, FabricCapacityError):
            return PartitioningOutcome(
                success=False, region=region, reason=str(cause),
                kernel=context.kernel, synthesis=context.synthesis,
                cad_cache_key=context.bundle_key, stage_records=records)
        if isinstance(cause, KernelDoesNotFitError):
            return PartitioningOutcome(
                success=False, region=region,
                reason="kernel does not fit the fabric",
                kernel=context.kernel, synthesis=context.synthesis,
                placement=context.placement, routing=context.routing,
                cad_cache_key=context.bundle_key, stage_records=records)
        if isinstance(cause, PatchError):
            return PartitioningOutcome(
                success=False, region=region,
                reason=f"binary update failed: {cause}",
                kernel=context.kernel, synthesis=context.synthesis,
                placement=context.placement, routing=context.routing,
                implementation=context.implementation,
                cad_cache_hit=context.served_from_cache(),
                cad_cache_key=context.bundle_key, stage_records=records)
        return PartitioningOutcome(
            success=False, region=region,
            reason=f"CAD stage {error.stage!r} failed: {cause}",
            kernel=context.kernel, synthesis=context.synthesis,
            placement=context.placement, routing=context.routing,
            implementation=context.implementation,
            cad_cache_key=context.bundle_key, stage_records=records)
