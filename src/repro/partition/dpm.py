"""The dynamic partitioning module (DPM).

The DPM is the embedded processor that runs the Riverside on-chip
partitioning tools (ROCPART): it reads the profiler's results, selects the
most critical region, decompiles it from the application binary, runs
synthesis / technology mapping / placement / routing for the WCLA, and
finally updates the application binary to invoke the new hardware
(Section 3 of the paper).  In the paper's system the DPM is itself another
MicroBlaze with its own memories; we model the tool *flow* exactly and the
DPM's own execution time analytically (so studies of how long on-chip CAD
takes, and whether one DPM can serve several processors round-robin, remain
possible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..decompile.kernel import HardwareKernel, extract_kernel
from ..decompile.symexec import DecompilationError, decompile_region
from ..fabric.architecture import DEFAULT_WCLA, WclaParameters
from ..fabric.implementation import HardwareImplementation, implement_kernel
from ..fabric.place import FabricCapacityError, PlacementResult, place_kernel
from ..fabric.route import RoutingResult, route_kernel
from ..isa.program import Program
from ..microblaze.opb import OPB_BASE_ADDRESS
from ..profiler.profiler import CriticalRegion
from ..synthesis.datapath import SynthesisResult, synthesize_kernel
from .binary_patch import BinaryPatch, PatchError, apply_patch


@dataclass
class DpmCostModel:
    """Analytical execution-time model of the on-chip tools themselves.

    The companion papers report that the lean tools run in about a second on
    a modest embedded processor; the per-phase constants below reproduce
    that order of magnitude as a function of problem size so the
    multi-processor round-robin study has something meaningful to add up.
    """

    clock_mhz: float = 85.0
    cycles_per_decompiled_instruction: int = 40_000
    cycles_per_synthesized_lut: int = 6_000
    cycles_per_placed_component: int = 25_000
    cycles_per_routed_segment: int = 3_000
    fixed_overhead_cycles: int = 2_000_000

    def partitioning_cycles(self, kernel: HardwareKernel,
                            synthesis: SynthesisResult,
                            placement: PlacementResult,
                            routing: RoutingResult) -> int:
        cycles = self.fixed_overhead_cycles
        cycles += kernel.region.num_instructions * self.cycles_per_decompiled_instruction
        cycles += synthesis.total_luts * self.cycles_per_synthesized_lut
        cycles += len(placement.components) * self.cycles_per_placed_component
        cycles += routing.total_segments_used * self.cycles_per_routed_segment
        return cycles

    def partitioning_seconds(self, kernel: HardwareKernel,
                             synthesis: SynthesisResult,
                             placement: PlacementResult,
                             routing: RoutingResult) -> float:
        return self.partitioning_cycles(kernel, synthesis, placement, routing) \
            / (self.clock_mhz * 1e6)


@dataclass
class PartitioningOutcome:
    """Everything the DPM produced for one critical region."""

    success: bool
    region: CriticalRegion
    reason: Optional[str] = None
    kernel: Optional[HardwareKernel] = None
    synthesis: Optional[SynthesisResult] = None
    placement: Optional[PlacementResult] = None
    routing: Optional[RoutingResult] = None
    implementation: Optional[HardwareImplementation] = None
    patch: Optional[BinaryPatch] = None
    dpm_seconds: float = 0.0

    def summary(self) -> str:
        if not self.success:
            return f"partitioning rejected: {self.reason}"
        lines = [
            self.kernel.summary(),
            self.synthesis.summary(),
            self.implementation.summary(),
            f"on-chip tool time: {self.dpm_seconds * 1e3:.1f} ms (modelled)",
        ]
        return "\n".join(lines)


class DynamicPartitioningModule:
    """Runs the ROCPART flow for one program and one critical region."""

    def __init__(self, wcla: WclaParameters = DEFAULT_WCLA,
                 wcla_base_address: int = OPB_BASE_ADDRESS,
                 cost_model: Optional[DpmCostModel] = None):
        self.wcla = wcla
        self.wcla_base_address = wcla_base_address
        self.cost_model = cost_model if cost_model is not None else DpmCostModel()

    def partition(self, program: Program,
                  region: Optional[CriticalRegion]) -> PartitioningOutcome:
        """Run the full flow and patch ``program`` in place on success.

        On any failure the program is left untouched and the outcome records
        the reason, mirroring a warp processor that silently keeps executing
        the software-only binary.
        """
        if region is None:
            return PartitioningOutcome(success=False, region=None,
                                       reason="profiler found no critical region")
        try:
            body = decompile_region(program.text, region)
            kernel = extract_kernel(body)
        except DecompilationError as error:
            return PartitioningOutcome(success=False, region=region,
                                       reason=f"decompilation failed: {error}")
        if not kernel.partitionable:
            return PartitioningOutcome(success=False, region=region,
                                       reason=kernel.rejection_reason, kernel=kernel)

        synthesis = synthesize_kernel(kernel,
                                      lut_inputs=self.wcla.fabric.lut_inputs,
                                      memory_ports=self.wcla.memory_ports)
        try:
            placement = place_kernel(synthesis, self.wcla)
        except FabricCapacityError as error:
            return PartitioningOutcome(success=False, region=region,
                                       reason=str(error), kernel=kernel,
                                       synthesis=synthesis)
        routing = route_kernel(placement, self.wcla)
        implementation = implement_kernel(kernel, synthesis, placement, routing,
                                          self.wcla)
        if not placement.area.fits:
            return PartitioningOutcome(success=False, region=region,
                                       reason="kernel does not fit the fabric",
                                       kernel=kernel, synthesis=synthesis,
                                       placement=placement, routing=routing)
        try:
            patch = apply_patch(program, kernel, wcla_base=self.wcla_base_address)
        except PatchError as error:
            return PartitioningOutcome(success=False, region=region,
                                       reason=f"binary update failed: {error}",
                                       kernel=kernel, synthesis=synthesis,
                                       placement=placement, routing=routing,
                                       implementation=implementation)
        dpm_seconds = self.cost_model.partitioning_seconds(kernel, synthesis,
                                                           placement, routing)
        return PartitioningOutcome(
            success=True,
            region=region,
            kernel=kernel,
            synthesis=synthesis,
            placement=placement,
            routing=routing,
            implementation=implementation,
            patch=patch,
            dpm_seconds=dpm_seconds,
        )
