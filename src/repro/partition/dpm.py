"""The dynamic partitioning module (DPM).

The DPM is the embedded processor that runs the Riverside on-chip
partitioning tools (ROCPART): it reads the profiler's results, selects the
most critical region, decompiles it from the application binary, runs
synthesis / technology mapping / placement / routing for the WCLA, and
finally updates the application binary to invoke the new hardware
(Section 3 of the paper).  In the paper's system the DPM is itself another
MicroBlaze with its own memories; we model the tool *flow* exactly and the
DPM's own execution time analytically (so studies of how long on-chip CAD
takes, and whether one DPM can serve several processors round-robin, remain
possible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..decompile.kernel import HardwareKernel, extract_kernel
from ..decompile.symexec import DecompilationError, decompile_region
from ..fabric.architecture import DEFAULT_WCLA, WclaParameters
from ..fabric.implementation import HardwareImplementation, implement_kernel
from ..fabric.place import FabricCapacityError, PlacementResult, place_kernel
from ..fabric.route import RoutingResult, route_kernel
from ..isa.program import Program
from ..microblaze.opb import OPB_BASE_ADDRESS
from ..profiler.profiler import CriticalRegion
from ..synthesis.datapath import SynthesisResult, synthesize_kernel
from .binary_patch import BinaryPatch, PatchError, apply_patch


@dataclass
class DpmCostModel:
    """Analytical execution-time model of the on-chip tools themselves.

    The companion papers report that the lean tools run in about a second on
    a modest embedded processor; the per-phase constants below reproduce
    that order of magnitude as a function of problem size so the
    multi-processor round-robin study has something meaningful to add up.
    """

    clock_mhz: float = 85.0
    cycles_per_decompiled_instruction: int = 40_000
    cycles_per_synthesized_lut: int = 6_000
    cycles_per_placed_component: int = 25_000
    cycles_per_routed_segment: int = 3_000
    fixed_overhead_cycles: int = 2_000_000

    def partitioning_cycles(self, kernel: HardwareKernel,
                            synthesis: SynthesisResult,
                            placement: PlacementResult,
                            routing: RoutingResult) -> int:
        cycles = self.fixed_overhead_cycles
        cycles += kernel.region.num_instructions * self.cycles_per_decompiled_instruction
        cycles += synthesis.total_luts * self.cycles_per_synthesized_lut
        cycles += len(placement.components) * self.cycles_per_placed_component
        cycles += routing.total_segments_used * self.cycles_per_routed_segment
        return cycles

    def partitioning_seconds(self, kernel: HardwareKernel,
                             synthesis: SynthesisResult,
                             placement: PlacementResult,
                             routing: RoutingResult) -> float:
        return self.partitioning_cycles(kernel, synthesis, placement, routing) \
            / (self.clock_mhz * 1e6)


@dataclass
class PartitioningOutcome:
    """Everything the DPM produced for one critical region."""

    success: bool
    region: CriticalRegion
    reason: Optional[str] = None
    kernel: Optional[HardwareKernel] = None
    synthesis: Optional[SynthesisResult] = None
    placement: Optional[PlacementResult] = None
    routing: Optional[RoutingResult] = None
    implementation: Optional[HardwareImplementation] = None
    patch: Optional[BinaryPatch] = None
    dpm_seconds: float = 0.0
    #: Whether the CAD artifacts came from the content-addressed cache
    #: (host-side memoization; the *modelled* on-chip tool time
    #: ``dpm_seconds`` is unaffected, it is a property of the simulated
    #: system, not of how fast this process produced the artifacts).
    cad_cache_hit: bool = False
    #: Content address of the (kernel, WCLA) pair when a cache was in use.
    cad_cache_key: Optional[str] = None

    def summary(self) -> str:
        if not self.success:
            return f"partitioning rejected: {self.reason}"
        lines = [
            self.kernel.summary(),
            self.synthesis.summary(),
            self.implementation.summary(),
            f"on-chip tool time: {self.dpm_seconds * 1e3:.1f} ms (modelled)",
        ]
        return "\n".join(lines)


class DynamicPartitioningModule:
    """Runs the ROCPART flow for one program and one critical region.

    ``artifact_cache`` (a
    :class:`~repro.service.artifact_cache.CadArtifactCache`) memoizes the
    synthesis / placement / routing / implementation outputs under a
    content address of the kernel's dataflow graph and the WCLA
    parameters: repeated partitioning of the same loop body — across
    service jobs, across the cores of a multiprocessor system, across
    sweep repetitions — skips the CAD flow entirely.  Without a cache the
    flow always runs, exactly as before.
    """

    def __init__(self, wcla: WclaParameters = DEFAULT_WCLA,
                 wcla_base_address: int = OPB_BASE_ADDRESS,
                 cost_model: Optional[DpmCostModel] = None,
                 artifact_cache=None):
        self.wcla = wcla
        self.wcla_base_address = wcla_base_address
        self.cost_model = cost_model if cost_model is not None else DpmCostModel()
        self.artifact_cache = artifact_cache

    def partition(self, program: Program,
                  region: Optional[CriticalRegion]) -> PartitioningOutcome:
        """Run the full flow and patch ``program`` in place on success.

        On any failure the program is left untouched and the outcome records
        the reason, mirroring a warp processor that silently keeps executing
        the software-only binary.
        """
        if region is None:
            return PartitioningOutcome(success=False, region=None,
                                       reason="profiler found no critical region")
        try:
            body = decompile_region(program.text, region)
            kernel = extract_kernel(body)
        except DecompilationError as error:
            return PartitioningOutcome(success=False, region=region,
                                       reason=f"decompilation failed: {error}")
        if not kernel.partitionable:
            return PartitioningOutcome(success=False, region=region,
                                       reason=kernel.rejection_reason, kernel=kernel)

        cache = self.artifact_cache
        cache_key: Optional[str] = None
        cache_hit = False
        artifacts = None
        if cache is not None:
            cache_key = cache.key_for(kernel, self.wcla)
            artifacts = cache.lookup(cache_key)
        if artifacts is not None:
            # Content hit: the whole on-chip CAD flow (synthesis, mapping,
            # placement, routing, implementation) is skipped.  Only fitting
            # bundles are ever stored, so a hit implies the kernel fits.
            cache_hit = True
            synthesis = artifacts.synthesis
            placement = artifacts.placement
            routing = artifacts.routing
            implementation = artifacts.implementation
        else:
            synthesis = synthesize_kernel(kernel,
                                          lut_inputs=self.wcla.fabric.lut_inputs,
                                          memory_ports=self.wcla.memory_ports)
            try:
                placement = place_kernel(synthesis, self.wcla)
            except FabricCapacityError as error:
                return PartitioningOutcome(success=False, region=region,
                                           reason=str(error), kernel=kernel,
                                           synthesis=synthesis,
                                           cad_cache_key=cache_key)
            routing = route_kernel(placement, self.wcla)
            implementation = implement_kernel(kernel, synthesis, placement,
                                              routing, self.wcla)
            if cache is not None and placement.area.fits:
                from ..service.artifact_cache import CadArtifacts
                cache.store(cache_key, CadArtifacts(
                    synthesis=synthesis, placement=placement,
                    routing=routing, implementation=implementation))
        if not placement.area.fits:
            return PartitioningOutcome(success=False, region=region,
                                       reason="kernel does not fit the fabric",
                                       kernel=kernel, synthesis=synthesis,
                                       placement=placement, routing=routing,
                                       cad_cache_key=cache_key)
        try:
            patch = apply_patch(program, kernel, wcla_base=self.wcla_base_address)
        except PatchError as error:
            return PartitioningOutcome(success=False, region=region,
                                       reason=f"binary update failed: {error}",
                                       kernel=kernel, synthesis=synthesis,
                                       placement=placement, routing=routing,
                                       implementation=implementation,
                                       cad_cache_hit=cache_hit,
                                       cad_cache_key=cache_key)
        dpm_seconds = self.cost_model.partitioning_seconds(kernel, synthesis,
                                                           placement, routing)
        return PartitioningOutcome(
            success=True,
            region=region,
            kernel=kernel,
            synthesis=synthesis,
            placement=placement,
            routing=routing,
            implementation=implementation,
            patch=patch,
            dpm_seconds=dpm_seconds,
            cad_cache_hit=cache_hit,
            cad_cache_key=cache_key,
        )
