"""One stable SHA-256 digest helper for every content-addressing layer.

Three subsystems need the *same* notion of a stable content digest:

* the CAD flow's content addresses (:mod:`repro.cad.keys`) hash canonical
  text forms into whole-bundle and per-stage keys;
* the worker pool's content-affinity routing
  (:meth:`repro.service.pool.WarpService._shard_index`) and the remote
  backend's gateway routing (:class:`repro.server.client.RemoteWorkerBackend`)
  map a job's content onto a shard/gateway index;
* the persistent on-disk artifact store (:mod:`repro.server.store`) names
  its entry files after the same digests.

All of them must avoid the builtin ``hash()``: string hashing is salted
per interpreter launch (``PYTHONHASHSEED``), so it is neither stable
across processes (which would scatter a distributed sweep's cache
affinity) nor across runs (which would make benchmark wall times random).
SHA-256 hex strings are stable everywhere and cheap at these sizes.
"""

from __future__ import annotations

import hashlib

__all__ = ["sha256_hex", "digest_int", "shard_index"]


def sha256_hex(*parts: str) -> str:
    """SHA-256 hex digest over NUL-separated text parts.

    The separator keeps adjacent parts from concatenating ambiguously
    (``("ab", "c")`` and ``("a", "bc")`` digest differently).
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def digest_int(text: str) -> int:
    """The first 8 digest bytes as a big-endian integer (routing keys)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


def shard_index(text: str, shards: int) -> int:
    """Deterministic content-affinity routing: ``text`` -> shard index.

    Equal content always maps to the same shard for a given shard count,
    in every process and on every machine.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    return digest_int(text) % shards
