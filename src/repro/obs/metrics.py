"""Lock-safe metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` holds labeled metric *families* —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` — behind one lock,
and renders them to a plain-JSON :meth:`~MetricsRegistry.snapshot` that
travels the wire protocol, the worker spool files and the Prometheus
text exposition unchanged.

Design points:

* **labels are the identity** — a family is one name + kind; each
  distinct label combination is one sample.  Label values are coerced
  to strings (that is what they are on every exposition surface).
* **fixed histogram bounds** — bucket bounds are set at family creation
  and never change, so snapshots from different processes merge by
  plain element-wise addition (:func:`merge_snapshots`).
* **plain JSON snapshots** — a snapshot is a dict of families, each
  ``{"kind", "help", "samples": [{"labels", ...}]}``; nothing in it
  needs the registry to be interpreted, so cross-process aggregation is
  just merging dicts read from the spool directory.
* **merge semantics** — counters and histograms add; gauges add too
  (process-local gauges like a worker's cache size sum to the fleet
  value, and single-writer gauges like the gateway's queue depth are
  only ever set in one process, so the sum *is* the value).

The registry is threadsafe (one re-entrant lock around every mutation
and the snapshot), not lock-free: metric updates are gated off the hot
path entirely when no telemetry sink is installed (see
:mod:`repro.obs`), so the lock only costs when someone asked to watch.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

#: Default histogram bucket bounds (seconds): spans the microsecond gate
#: costs up to multi-second cold CAD flows.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """A metric family was used inconsistently (kind or bounds clash)."""


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical sample identity: sorted ``(name, str(value))`` pairs."""
    return tuple(sorted((str(name), str(value))
                        for name, value in labels.items()))


class _Family:
    """Shared base: one named family of labeled samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.RLock):
        self.name = name
        self.help = help_text
        self._lock = lock
        self._samples: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def _sample_payloads(self) -> List[Dict]:
        raise NotImplementedError

    def to_plain(self) -> Dict:
        return {"kind": self.kind, "help": self.help,
                "samples": self._sample_payloads()}


class Counter(_Family):
    """A monotonically increasing sum per label combination."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease "
                              f"(inc by {value})")
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + value

    def value(self, **labels) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0.0)

    def _sample_payloads(self) -> List[Dict]:
        return [{"labels": dict(key), "value": value}
                for key, value in sorted(self._samples.items())]


class Gauge(_Family):
    """A point-in-time value per label combination (set, not summed)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + value

    def value(self, **labels) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0.0)

    def _sample_payloads(self) -> List[Dict]:
        return [{"labels": dict(key), "value": value}
                for key, value in sorted(self._samples.items())]


class Histogram(_Family):
    """Fixed-bound bucketed observations per label combination.

    Per-bucket counts are stored non-cumulative (they add trivially when
    merging snapshots); the Prometheus exposition cumulates at render
    time, as the format requires.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str, lock: threading.RLock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text, lock)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(f"histogram {name!r} bounds must be a "
                              f"non-empty strictly increasing sequence")
        self.bounds = bounds

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.bounds) + 1),
                         "sum": 0.0, "count": 0}
                self._samples[key] = state
            state["counts"][bisect_right(self.bounds, value)] += 1
            state["sum"] += value
            state["count"] += 1

    def _sample_payloads(self) -> List[Dict]:
        return [{"labels": dict(key), "counts": list(state["counts"]),
                 "sum": state["sum"], "count": state["count"]}
                for key, state in sorted(self._samples.items())]

    def to_plain(self) -> Dict:
        payload = super().to_plain()
        payload["bounds"] = list(self.bounds)
        return payload


_KINDS = {family.kind: family for family in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """One process's metric families behind one lock."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------- families
    def _family(self, cls, name: str, help_text: str, **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help_text, self._lock, **kwargs)
                self._families[name] = family
            elif not isinstance(family, cls):
                raise MetricError(
                    f"metric {name!r} is a {family.kind}, not a {cls.kind}")
            return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._family(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._family(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        family = self._family(Histogram, name, help_text, buckets=buckets)
        if family.bounds != tuple(float(bound) for bound in buckets):
            raise MetricError(f"histogram {name!r} already exists with "
                              f"different bucket bounds")
        return family

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Dict]:
        """Plain-JSON view of every family (safe to serialize/merge)."""
        with self._lock:
            return {name: family.to_plain()
                    for name, family in sorted(self._families.items())}


# --------------------------------------------------------------------- merging
def merge_snapshots(snapshots: Iterable[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Aggregate plain snapshots (e.g. one per worker process) into one.

    Counters, gauges and histogram states add per label combination;
    histogram bounds must agree (they are fixed at family creation by the
    same code in every process).  Kind clashes raise :class:`MetricError`
    — they can only come from mixing incompatible builds.
    """
    merged: Dict[str, Dict] = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    "kind": family["kind"],
                    "help": family.get("help", ""),
                    **({"bounds": list(family["bounds"])}
                       if "bounds" in family else {}),
                    "samples": [dict(sample, labels=dict(sample["labels"]))
                                for sample in family["samples"]],
                }
                continue
            if into["kind"] != family["kind"]:
                raise MetricError(f"cannot merge metric {name!r}: kind "
                                  f"{family['kind']} vs {into['kind']}")
            if into.get("bounds") != family.get("bounds"):
                raise MetricError(f"cannot merge histogram {name!r}: "
                                  f"bucket bounds differ")
            by_labels = {_label_key(sample["labels"]): sample
                         for sample in into["samples"]}
            for sample in family["samples"]:
                key = _label_key(sample["labels"])
                existing = by_labels.get(key)
                if existing is None:
                    sample = dict(sample, labels=dict(sample["labels"]))
                    into["samples"].append(sample)
                    by_labels[key] = sample
                elif "value" in sample:
                    existing["value"] += sample["value"]
                else:
                    existing["counts"] = [a + b for a, b in
                                          zip(existing["counts"],
                                              sample["counts"])]
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
    for family in merged.values():
        family["samples"].sort(key=lambda s: _label_key(s["labels"]))
    return merged


# ------------------------------------------------------------------ exposition
def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"') \
                .replace("\n", r"\n")


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_text(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label(str(value))}"'
             for name, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(snapshot: Dict[str, Dict]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, family in sorted(snapshot.items()):
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        if family["kind"] != "histogram":
            for sample in family["samples"]:
                lines.append(f"{name}{_label_text(sample['labels'])} "
                             f"{_format_value(sample['value'])}")
            continue
        bounds = family.get("bounds", [])
        for sample in family["samples"]:
            cumulative = 0
            for bound, count in zip(list(bounds) + ["+Inf"],
                                    sample["counts"]):
                cumulative += count
                le = _format_value(bound) if bound != "+Inf" else "+Inf"
                le_label = 'le="%s"' % le
                labels = _label_text(sample["labels"], le_label)
                lines.append(f"{name}_bucket{labels} {cumulative}")
            lines.append(f"{name}_sum{_label_text(sample['labels'])} "
                         f"{_format_value(sample['sum'])}")
            lines.append(f"{name}_count{_label_text(sample['labels'])} "
                         f"{sample['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "merge_snapshots",
    "prometheus_text",
]
