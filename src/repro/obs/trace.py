"""Structured trace spans: per-job timelines across processes.

A :class:`Span` is one timed operation — a job execution, a scheduler
wait, one CAD :class:`~repro.cad.flow.FlowStage`, a store load/publish,
a gateway request — identified by a ``trace_id`` shared by everything
belonging to the same logical job and chained by ``parent_id``, so a
job's end-to-end timeline (scheduler -> shard -> stage -> store)
reconstructs from the flat span list.

Conventions:

* ids are 16-hex-char strings (:func:`new_id`); a trace's *root* span
  reuses the trace id as its span id, so the root is found without a
  sentinel parent value;
* ``start_s`` is wall-clock epoch seconds (comparable across
  processes), ``duration_s`` is measured with the monotonic clock;
* spans are plain data — :meth:`Span.to_plain` / :meth:`Span.from_plain`
  round-trip through JSON for the wire verb and the worker spool files.

The :class:`SpanSink` is a bounded ring buffer with a monotonically
increasing cursor: ``since(cursor)`` returns the spans recorded after a
previous read, which is what the ``metrics`` wire verb exposes so a
poller (``repro-warp top``) never re-reads spans it has seen.
"""

from __future__ import annotations

import json
import threading
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

#: Spans retained in a sink before the oldest are dropped.
DEFAULT_SPAN_CAPACITY = 8192


def new_id() -> str:
    """A fresh 16-hex-char trace/span id."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One timed, parented operation of a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    #: Wall-clock start (epoch seconds; comparable across processes).
    start_s: float = 0.0
    duration_s: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_plain(self) -> Dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }

    @classmethod
    def from_plain(cls, plain: Dict) -> "Span":
        return cls(
            name=plain.get("name", ""),
            trace_id=plain.get("trace_id", ""),
            span_id=plain.get("span_id", ""),
            parent_id=plain.get("parent_id"),
            start_s=plain.get("start_s", 0.0),
            duration_s=plain.get("duration_s", 0.0),
            attrs=plain.get("attrs", {}) or {},
        )


class SpanSink:
    """Bounded, cursor-addressable ring buffer of finished spans."""

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY):
        if capacity <= 0:
            raise ValueError("span capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: Deque[Tuple[int, Span]] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, span: Span) -> int:
        """Append one span; returns its sequence number."""
        with self._lock:
            sequence = self._recorded
            self._recorded += 1
            self._ring.append((sequence, span))
            return sequence

    @property
    def cursor(self) -> int:
        """Total spans ever recorded (the next ``since`` cursor)."""
        with self._lock:
            return self._recorded

    def since(self, cursor: int = 0) -> Tuple[int, List[Span]]:
        """Spans recorded at or after ``cursor`` (ring-bounded), plus the
        new cursor to poll from next time.  Spans that aged out of the
        ring before being read are simply gone — the cursor still
        advances past them, so pollers never stall."""
        with self._lock:
            spans = [span for sequence, span in self._ring
                     if sequence >= cursor]
            return self._recorded, spans

    def snapshot(self) -> List[Span]:
        with self._lock:
            return [span for _, span in self._ring]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # ------------------------------------------------------------------ JSONL
    def to_jsonl(self, since: int = 0) -> str:
        """One compact-JSON span per line (the spool/export format)."""
        _, spans = self.since(since)
        return "".join(json.dumps(span.to_plain(), separators=(",", ":"))
                       + "\n" for span in spans)

    def export_jsonl(self, path) -> int:
        """Write every retained span to ``path``; returns the count."""
        spans = self.snapshot()
        with open(path, "w") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_plain(),
                                        separators=(",", ":")) + "\n")
        return len(spans)


def spans_from_jsonl(text: str) -> List[Span]:
    """Parse spool/export JSONL; malformed lines are skipped (a worker
    may be mid-append when the primary reads)."""
    spans: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            plain = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(plain, dict):
            spans.append(Span.from_plain(plain))
    return spans


__all__ = [
    "DEFAULT_SPAN_CAPACITY",
    "Span",
    "SpanSink",
    "new_id",
    "spans_from_jsonl",
]
