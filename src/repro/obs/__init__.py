"""Unified telemetry plane for the warp service stack.

One process-wide :class:`Telemetry` object couples a
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
histograms) with a :class:`~repro.obs.trace.SpanSink` (per-job trace
spans).  Every layer of the stack — scheduler, worker pool, CAD flow,
artifact store, wire protocol, gateway — reports into it, and the
``metrics`` wire verb / ``repro-warp top`` / the Prometheus exposition
read out of it.

**Zero overhead when disabled** — the same gating discipline as
:mod:`repro.chaos`: hot call sites read the module-level :data:`ACTIVE`
and compare against ``None``::

    from .. import obs
    ...
    if obs.ACTIVE is not None:
        obs.inc("warp_retries_total", site="cad-stage")

With no telemetry installed that is one module attribute load and an
``is`` check — no call, no allocation.  (:func:`span` additionally
returns a shared no-op context manager, so ``with obs.span(...)`` costs
two trivial method calls when disabled; keep it off per-instruction hot
loops and on per-stage/per-job boundaries.)

**Cross-process aggregation** — pool workers cannot write into the
parent's registry.  Instead the primary process exports a *spool
directory* under :data:`SPOOL_ENV_VAR` (the same shipping mechanism as
``REPRO_CAD_STORE`` and ``REPRO_CHAOS_PLAN``); the worker entry point
calls :func:`ensure_process_telemetry` which installs a fresh
per-process telemetry pointed at the spool, and after every job the
worker atomically rewrites ``metrics-<pid>.json`` (its registry's full
snapshot — idempotent totals, so a crashed worker loses at most its
last job) and appends its new spans to ``spans-<pid>.jsonl``.  The
primary's :meth:`Telemetry.collect` merges the spool into its own
registry snapshot and drains spooled spans into its own sink, so the
``metrics`` verb sees the whole pool.

**Trace identity** — every :class:`~repro.service.jobs.WarpJob` gets a
``trace_id`` when telemetry is active; the job's root span reuses the
trace id as its span id, child spans chain ``parent_id``, and the
worker-side spans (execute, CAD stages, store I/O) join the same trace
through the job object itself — so one job's timeline reconstructs end
to end from the flat span list, across processes.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    merge_snapshots,
    prometheus_text,
)
from .trace import (
    DEFAULT_SPAN_CAPACITY,
    Span,
    SpanSink,
    new_id,
    spans_from_jsonl,
)

#: Environment variable carrying the spool directory into worker
#: processes (same shipping mechanism as ``REPRO_CAD_STORE``).
SPOOL_ENV_VAR = "REPRO_OBS_SPOOL"

#: The process-wide installed telemetry, or ``None`` (the common case).
#: Hot call sites read this directly; everything else goes through
#: :func:`install` / :func:`clear`.
ACTIVE: Optional["Telemetry"] = None

#: Pid that last checked :data:`SPOOL_ENV_VAR` — per *process*, so a
#: forked pool worker (fresh pid) re-reads the environment its parent
#: exported even though it inherited the parent's module state.
_ENV_CHECKED_PID: Optional[int] = None

#: Collectors: callables invoked with the registry right before every
#: snapshot, to publish state that lives elsewhere (cache counters,
#: compile-cache stats, chaos injection tallies) as gauge families
#: without any hot-path writes.  Registered once per module via
#: :func:`add_collector`; exceptions are swallowed — telemetry must
#: never take the service down.
_COLLECTORS: List[Callable[[MetricsRegistry], None]] = []

_CONTEXT = threading.local()


# ----------------------------------------------------------------- telemetry
class Telemetry:
    """One process's metrics registry + span sink (+ optional spool)."""

    def __init__(self, spool_dir=None, primary: bool = True,
                 span_capacity: int = DEFAULT_SPAN_CAPACITY):
        self.registry = MetricsRegistry()
        self.spans = SpanSink(capacity=span_capacity)
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        #: Primary = the installing/aggregating process; workers are
        #: installed by :func:`ensure_process_telemetry` with
        #: ``primary=False`` and *write* the spool instead of merging it.
        self.primary = primary
        self.owner_pid = os.getpid()
        #: Spans already appended to this worker's spool file.
        self._spooled_spans = 0
        #: Primary-side read offsets into each worker's span file.
        self._span_offsets: Dict[str, int] = {}

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, Dict]:
        """This process's families (collectors included), no spool."""
        for collector in list(_COLLECTORS):
            try:
                collector(self.registry)
            except Exception:  # noqa: BLE001 - observability never fails work
                pass
        return self.registry.snapshot()

    def collect(self) -> Dict[str, Dict]:
        """The aggregate snapshot: this process merged with the spool
        (worker metrics files), draining spooled spans into our sink."""
        snapshots = [self.snapshot()]
        if self.spool_dir is not None and self.primary:
            snapshots.extend(self._read_spool_metrics())
            self._drain_spool_spans()
        return merge_snapshots(snapshots)

    # ----------------------------------------------------------- worker side
    def flush_to_spool(self) -> None:
        """Worker side: publish this process's telemetry to the spool.

        The metrics file is the registry's *full* snapshot, atomically
        replaced (totals are idempotent — re-flushing is harmless); new
        spans are appended.  Any I/O error is swallowed: losing a
        flush loses observability, never a job.
        """
        if self.spool_dir is None:
            return
        try:
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            pid = os.getpid()
            blob = json.dumps(self.snapshot(), separators=(",", ":"))
            path = self.spool_dir / f"metrics-{pid}.json"
            tmp = path.with_name(f".{path.name}.tmp")
            tmp.write_text(blob)
            os.replace(tmp, path)
            lines = self.spans.to_jsonl(since=self._spooled_spans)
            self._spooled_spans = self.spans.cursor
            if lines:
                with open(self.spool_dir / f"spans-{pid}.jsonl",
                          "a") as handle:
                    handle.write(lines)
        except OSError:
            pass

    # ---------------------------------------------------------- primary side
    def _read_spool_metrics(self) -> List[Dict[str, Dict]]:
        snapshots: List[Dict[str, Dict]] = []
        own = f"metrics-{os.getpid()}.json"
        try:
            paths = sorted(self.spool_dir.glob("metrics-*.json"))
        except OSError:
            return snapshots
        for path in paths:
            if path.name == own:
                continue  # never double-count the primary's registry
            try:
                plain = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # mid-replace or torn file: next poll gets it
            if isinstance(plain, dict):
                snapshots.append(plain)
        return snapshots

    def _drain_spool_spans(self) -> None:
        """Ingest workers' spooled spans into our sink (offset-tracked,
        whole lines only — a worker may be mid-append)."""
        try:
            paths = sorted(self.spool_dir.glob("spans-*.jsonl"))
        except OSError:
            return
        for path in paths:
            offset = self._span_offsets.get(path.name, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    blob = handle.read()
            except OSError:
                continue
            if not blob:
                continue
            complete = blob.rfind(b"\n") + 1
            if complete <= 0:
                continue
            self._span_offsets[path.name] = offset + complete
            for span in spans_from_jsonl(
                    blob[:complete].decode("utf-8", "replace")):
                self.spans.record(span)


# ----------------------------------------------------------------- lifecycle
def install(telemetry: Optional[Telemetry] = None, *,
            spool_dir=None) -> Telemetry:
    """Install ``telemetry`` (or a fresh one) as this process's sink."""
    global ACTIVE
    if telemetry is None:
        telemetry = Telemetry(spool_dir=spool_dir)
    ACTIVE = telemetry
    return telemetry


def clear() -> None:
    """Deactivate telemetry in this process."""
    global ACTIVE, _ENV_CHECKED_PID
    ACTIVE = None
    _ENV_CHECKED_PID = None


def export_to_environment(telemetry: Telemetry) -> None:
    """Publish the spool directory for worker processes created later."""
    if telemetry.spool_dir is None:
        raise ValueError("cannot export telemetry without a spool "
                         "directory: workers would have nowhere to "
                         "publish their metrics")
    os.environ[SPOOL_ENV_VAR] = str(telemetry.spool_dir)


def clear_environment() -> None:
    os.environ.pop(SPOOL_ENV_VAR, None)


def ensure_process_telemetry() -> None:
    """Install the environment-exported telemetry in this process, once.

    Called from the pool worker entry point (next to
    :func:`repro.chaos.ensure_process_plan`); cached per pid so the check
    costs one comparison per job in the steady state.  A forked worker
    inherits the parent's module state — including the parent's *live*
    :data:`ACTIVE` — so anything whose ``owner_pid`` is not ours is
    replaced: with a fresh spool-writing telemetry when the environment
    names a spool, or with ``None`` (the inherited registry would be
    invisible to the parent and its inherited counts double-reported).
    """
    global ACTIVE, _ENV_CHECKED_PID
    pid = os.getpid()
    if ACTIVE is not None and ACTIVE.owner_pid == pid:
        return
    if _ENV_CHECKED_PID == pid:
        return
    _ENV_CHECKED_PID = pid
    spool = os.environ.get(SPOOL_ENV_VAR)
    if spool:
        ACTIVE = Telemetry(spool_dir=spool, primary=False)
    else:
        ACTIVE = None


def flush_worker_telemetry() -> None:
    """Publish a worker's telemetry to the spool (no-op for the primary,
    whose registry is read directly at collect time)."""
    telemetry = ACTIVE
    if telemetry is not None and not telemetry.primary:
        telemetry.flush_to_spool()


@contextmanager
def active_telemetry(spool_dir=None, export: bool = False,
                     span_capacity: int = DEFAULT_SPAN_CAPACITY):
    """Context manager: install a fresh :class:`Telemetry`, optionally
    exporting a spool directory to worker processes, restoring previous
    state on exit.  With ``export=True`` and no ``spool_dir``, a
    temporary spool is created and removed on exit."""
    global ACTIVE
    previous = ACTIVE
    previous_env = os.environ.get(SPOOL_ENV_VAR)
    created = None
    if export and spool_dir is None:
        created = tempfile.mkdtemp(prefix="warp-obs-")
        spool_dir = created
    telemetry = install(Telemetry(spool_dir=spool_dir,
                                  span_capacity=span_capacity))
    if export:
        export_to_environment(telemetry)
    try:
        yield telemetry
    finally:
        ACTIVE = previous
        if export:
            if previous_env is None:
                clear_environment()
            else:
                os.environ[SPOOL_ENV_VAR] = previous_env
        if created is not None:
            shutil.rmtree(created, ignore_errors=True)


def add_collector(collector: Callable[[MetricsRegistry], None]) -> None:
    """Register a snapshot-time collector (idempotent by identity)."""
    if collector not in _COLLECTORS:
        _COLLECTORS.append(collector)


def remove_collector(collector: Callable[[MetricsRegistry], None]) -> None:
    try:
        _COLLECTORS.remove(collector)
    except ValueError:
        pass


# ----------------------------------------------------------- metric helpers
# Convenience wrappers over ``ACTIVE.registry``; call sites still gate on
# ``obs.ACTIVE is not None`` themselves so the disabled path never enters
# a function — these re-check only to stay safe against races.
def inc(name: str, value: float = 1.0, help_text: str = "",
        **labels) -> None:
    telemetry = ACTIVE
    if telemetry is not None:
        telemetry.registry.counter(name, help_text).inc(value, **labels)


def set_gauge(name: str, value: float, help_text: str = "",
              **labels) -> None:
    telemetry = ACTIVE
    if telemetry is not None:
        telemetry.registry.gauge(name, help_text).set(value, **labels)


def observe(name: str, value: float, help_text: str = "",
            **labels) -> None:
    telemetry = ACTIVE
    if telemetry is not None:
        telemetry.registry.histogram(name, help_text).observe(value,
                                                              **labels)


# -------------------------------------------------------------------- spans
def _span_stack() -> List[Tuple[str, str]]:
    stack = getattr(_CONTEXT, "stack", None)
    if stack is None:
        stack = []
        _CONTEXT.stack = stack
    return stack


def current_trace() -> Optional[Tuple[str, str]]:
    """The calling thread's ``(trace_id, span_id)`` context, if any."""
    stack = getattr(_CONTEXT, "stack", None)
    return stack[-1] if stack else None


def _resolve_parent(trace_id: Optional[str],
                    parent_id: Optional[str]) -> Tuple[str, Optional[str]]:
    """Fill trace/parent from the thread's span stack: an explicit trace
    id starts (or joins) that trace; otherwise nest under the current
    span; otherwise start a fresh root trace."""
    if trace_id is not None:
        return trace_id, parent_id if parent_id is not None else trace_id
    current = current_trace()
    if current is not None:
        return current[0], parent_id if parent_id is not None \
            else current[1]
    fresh = new_id()
    return fresh, parent_id


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NOOP_SPAN = _NoopSpan()


class SpanHandle:
    """A live span: context manager that times its body, maintains the
    thread's span stack (children nest automatically) and records into
    the active sink on exit."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "_start_wall", "_start_perf")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str], attrs: Dict[str, object]):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._start_wall = 0.0
        self._start_perf = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span runs."""
        self.attrs.update(attrs)

    def __enter__(self) -> "SpanHandle":
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        _span_stack().append((self.trace_id, self.span_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = _span_stack()
        if stack and stack[-1] == (self.trace_id, self.span_id):
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        telemetry = ACTIVE
        if telemetry is not None:
            telemetry.spans.record(Span(
                name=self.name, trace_id=self.trace_id,
                span_id=self.span_id, parent_id=self.parent_id,
                start_s=self._start_wall,
                duration_s=time.perf_counter() - self._start_perf,
                attrs=self.attrs))
        return False


def span(name: str, trace_id: Optional[str] = None,
         parent_id: Optional[str] = None, **attrs):
    """A live timed span (or the shared no-op when telemetry is off).

    With no explicit ids the span nests under the calling thread's
    current span; a ``trace_id`` without a ``parent_id`` parents to that
    trace's root.
    """
    if ACTIVE is None:
        return _NOOP_SPAN
    trace, parent = _resolve_parent(trace_id, parent_id)
    return SpanHandle(name, trace, new_id(), parent, dict(attrs))


def record_span(name: str, duration_s: float,
                start_s: Optional[float] = None,
                trace_id: Optional[str] = None,
                parent_id: Optional[str] = None,
                span_id: Optional[str] = None, **attrs) -> Optional[str]:
    """Record an already-measured span post hoc (for call sites that
    keep their own clocks).  Returns the span id, or ``None`` when
    telemetry is off."""
    telemetry = ACTIVE
    if telemetry is None:
        return None
    trace, parent = _resolve_parent(trace_id, parent_id)
    identity = span_id if span_id is not None else new_id()
    if identity == trace and parent_id is None:
        parent = None  # a root span (span id == trace id) has no parent
    if start_s is None:
        start_s = time.time() - duration_s
    telemetry.spans.record(Span(
        name=name, trace_id=trace, span_id=identity, parent_id=parent,
        start_s=start_s, duration_s=duration_s, attrs=dict(attrs)))
    return identity


def new_trace_id() -> str:
    return new_id()


__all__ = [
    "ACTIVE",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SPAN_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "SPOOL_ENV_VAR",
    "Span",
    "SpanHandle",
    "SpanSink",
    "Telemetry",
    "active_telemetry",
    "add_collector",
    "clear",
    "clear_environment",
    "current_trace",
    "ensure_process_telemetry",
    "export_to_environment",
    "flush_worker_telemetry",
    "inc",
    "install",
    "merge_snapshots",
    "new_trace_id",
    "observe",
    "prometheus_text",
    "record_span",
    "remove_collector",
    "set_gauge",
    "span",
]
