"""Bounded, deterministic retry with exponential backoff and jitter.

One policy object serves every retry loop in the stack (remote backend,
gateway client, worker transient retries), so the retry discipline is
uniform: retry *transient* faults only, a bounded number of times, with
exponential backoff, deterministic seeded jitter, and — where the fault
carries load information, like the gateway's ``busy`` reply — backoff
scaled by how loaded the remote actually is.

Determinism matters here for the same reason it does in the chaos plane:
the differential harness replays a faulty run and expects the identical
report, so sleeping "random" amounts must come from a seeded RNG.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``base_delay_s * 2**attempt``, capped at ``max_delay_s``, then
    scaled up by ``occupancy`` (a 0..1 load fraction, e.g. the gateway's
    ``queue_depth / queue_limit``) and jittered multiplicatively in
    ``[1 - jitter, 1 + jitter]`` from a seeded RNG.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self) -> "RetrySchedule":
        """A fresh, independently seeded schedule for one operation."""
        return RetrySchedule(self)


class RetrySchedule:
    """The per-operation state of a :class:`RetryPolicy`: which attempt
    we are on, and a private RNG stream for jitter."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.attempts = 0
        self._rng = random.Random(policy.seed)

    def give_up(self) -> bool:
        """True once the bounded retry budget is spent."""
        return self.attempts >= self.policy.max_attempts

    def next_delay(self, occupancy: float = 0.0) -> float:
        """Consume one attempt and return the backoff before the next.

        ``occupancy`` in [0, 1] stretches the wait up to 2x — the more
        loaded the remote reports itself, the longer we stay away.
        """
        policy = self.policy
        delay = min(policy.max_delay_s,
                    policy.base_delay_s * (2.0 ** self.attempts))
        self.attempts += 1
        occupancy = min(1.0, max(0.0, occupancy))
        delay *= 1.0 + occupancy
        if policy.jitter:
            delay *= 1.0 + policy.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def backoff(self, occupancy: float = 0.0,
                sleep=time.sleep) -> None:
        """Sleep for the next attempt's delay."""
        sleep(self.next_delay(occupancy))


#: Retry discipline for remote submissions: jobs are content-addressed
#: and deterministic, so re-submitting after an ambiguous failure is
#: idempotent — the worst case is wasted work, never a wrong result.
DEFAULT_REMOTE_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.05,
                                    max_delay_s=2.0, jitter=0.25)

#: Retry discipline for in-process transient faults (chaos "error"
#: kind): tight, no sleeping beyond a token backoff.
DEFAULT_TRANSIENT_POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                       max_delay_s=0.0, jitter=0.0)
