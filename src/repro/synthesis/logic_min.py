"""Lean two-level logic minimisation (the "ROCM" of the on-chip tools).

The warp processor's partitioning tools include an on-chip logic minimiser
(Lysecky & Vahid, DAC 2003) designed to run on a small embedded processor:
a single-expand/irredundant pass over a cube list rather than a full
Espresso loop.  This module implements that lean minimiser for single-output
boolean functions expressed as sum-of-products cube lists.

A cube over ``n`` variables is a string of ``'0'``, ``'1'`` and ``'-'``
characters.  The minimiser is used by the synthesis flow to shrink the
WCLA's loop-control and sequencing logic before LUT technology mapping, and
it is independently unit- and property-tested (the minimised cover must be
logically equivalent to the original).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple


class LogicError(ValueError):
    """Raised for malformed cubes or covers."""


def _check_cube(cube: str, num_vars: int) -> None:
    if len(cube) != num_vars or any(c not in "01-" for c in cube):
        raise LogicError(f"malformed cube {cube!r} for {num_vars} variables")


def cube_covers(cube: str, minterm: int, num_vars: int) -> bool:
    """Whether ``cube`` covers the minterm with the given integer encoding.

    Bit ``i`` of ``minterm`` is the value of variable ``i`` (variable 0 is
    the first character of the cube string).
    """
    for position in range(num_vars):
        bit = (minterm >> position) & 1
        literal = cube[position]
        if literal == "-":
            continue
        if int(literal) != bit:
            return False
    return True


def cover_evaluates(cover: Sequence[str], minterm: int, num_vars: int) -> bool:
    """Evaluate a sum-of-products cover on one input assignment."""
    return any(cube_covers(cube, minterm, num_vars) for cube in cover)


def truth_table(cover: Sequence[str], num_vars: int) -> List[bool]:
    """Exhaustive truth table of a cover (2**num_vars entries)."""
    return [cover_evaluates(cover, minterm, num_vars)
            for minterm in range(1 << num_vars)]


@dataclass
class MinimizationResult:
    """Outcome of minimising one cover."""

    original_cubes: int
    minimized_cubes: int
    original_literals: int
    minimized_literals: int
    cover: List[str]

    @property
    def literal_reduction(self) -> float:
        if self.original_literals == 0:
            return 0.0
        return 1.0 - self.minimized_literals / self.original_literals


def count_literals(cover: Iterable[str]) -> int:
    return sum(sum(1 for c in cube if c != "-") for cube in cover)


class TwoLevelMinimizer:
    """Single-pass expand / irredundant minimiser for single-output covers."""

    def __init__(self, num_vars: int, on_set: Sequence[str]):
        self.num_vars = num_vars
        for cube in on_set:
            _check_cube(cube, num_vars)
        self.on_set = list(dict.fromkeys(on_set))  # dedupe, preserve order

    # ------------------------------------------------------------------ oracle
    def _function_value(self, minterm: int) -> bool:
        return cover_evaluates(self.on_set, minterm, self.num_vars)

    def _cube_valid(self, cube: str) -> bool:
        """A cube is valid when it covers only on-set minterms."""
        free_positions = [i for i, c in enumerate(cube) if c == "-"]
        base = 0
        for i, c in enumerate(cube):
            if c == "1":
                base |= 1 << i
        for assignment in range(1 << len(free_positions)):
            minterm = base
            for bit_index, position in enumerate(free_positions):
                if (assignment >> bit_index) & 1:
                    minterm |= 1 << position
            if not self._function_value(minterm):
                return False
        return True

    # ------------------------------------------------------------------ passes
    def _expand_cube(self, cube: str) -> str:
        """Greedily raise literals to don't-care while the cube stays valid."""
        cube_chars = list(cube)
        for position in range(self.num_vars):
            if cube_chars[position] == "-":
                continue
            saved = cube_chars[position]
            cube_chars[position] = "-"
            if not self._cube_valid("".join(cube_chars)):
                cube_chars[position] = saved
        return "".join(cube_chars)

    def _irredundant(self, cover: List[str]) -> List[str]:
        """Drop cubes whose minterms are covered by the remaining cubes."""
        result = list(cover)
        index = 0
        while index < len(result):
            candidate = result[:index] + result[index + 1:]
            if candidate and self._covers_same(candidate):
                result = candidate
            else:
                index += 1
        return result

    def _covers_same(self, candidate: List[str]) -> bool:
        for minterm in range(1 << self.num_vars):
            if self._function_value(minterm) != cover_evaluates(
                    candidate, minterm, self.num_vars):
                return False
        return True

    def minimize(self) -> MinimizationResult:
        if not self.on_set:
            return MinimizationResult(0, 0, 0, 0, [])
        expanded = [self._expand_cube(cube) for cube in self.on_set]
        expanded = list(dict.fromkeys(expanded))
        reduced = self._irredundant(expanded)
        return MinimizationResult(
            original_cubes=len(self.on_set),
            minimized_cubes=len(reduced),
            original_literals=count_literals(self.on_set),
            minimized_literals=count_literals(reduced),
            cover=reduced,
        )


def minimize_cover(num_vars: int, on_set: Sequence[str]) -> MinimizationResult:
    """Minimise a single-output sum-of-products cover."""
    if num_vars > 12:
        raise LogicError(
            "the lean on-chip minimiser is limited to 12 variables per output"
        )
    return TwoLevelMinimizer(num_vars, list(on_set)).minimize()


def minterms_to_cover(num_vars: int, minterms: Iterable[int]) -> List[str]:
    """Build the canonical (one cube per minterm) cover of a function."""
    cover = []
    for minterm in minterms:
        cube = "".join("1" if (minterm >> i) & 1 else "0" for i in range(num_vars))
        cover.append(cube)
    return cover
