"""On-chip synthesis (the back half of ROCPART).

Binds the decompiled kernel's dataflow graph onto the warp configurable
logic architecture: the DADG takes the address arithmetic, the 32-bit MAC
takes the multiplies, constant shifts and masks become wires, everything
else becomes LUT logic.  The loop sequencer's next-state logic goes through
the lean two-level minimiser (:mod:`~repro.synthesis.logic_min`) and the
3-input LUT technology mapper (:mod:`~repro.synthesis.techmap`).
"""

from .datapath import (
    ControlUnit,
    DatapathComponent,
    DatapathSynthesizer,
    SynthesisResult,
    possible_ones,
    synthesize_kernel,
)
from .logic_min import (
    LogicError,
    MinimizationResult,
    TwoLevelMinimizer,
    count_literals,
    cover_evaluates,
    cube_covers,
    minimize_cover,
    minterms_to_cover,
    truth_table,
)
from .techmap import LutNode, MappedNetwork, estimate_word_operator_luts, map_cover_to_luts

__all__ = [
    "ControlUnit",
    "DatapathComponent",
    "DatapathSynthesizer",
    "SynthesisResult",
    "possible_ones",
    "synthesize_kernel",
    "LogicError",
    "MinimizationResult",
    "TwoLevelMinimizer",
    "count_literals",
    "cover_evaluates",
    "cube_covers",
    "minimize_cover",
    "minterms_to_cover",
    "truth_table",
    "LutNode",
    "MappedNetwork",
    "estimate_word_operator_luts",
    "map_cover_to_luts",
]
