"""Datapath synthesis: binding the decompiled kernel onto the WCLA.

This is the back half of the on-chip partitioning tools: the kernel's
dataflow graph is split between

* the **data address generator** (DADG), which absorbs the address
  arithmetic of every regular (affine) memory access,
* the **32-bit multiplier-accumulator**, which executes the multiply
  operations (one per cycle),
* the **configurable logic fabric**, which implements everything else —
  adders, logic operations, multiplexers, comparators — as LUT networks,
* plain **wires**, for the operations that need no logic at all: shifts by
  constants, masks with constants, merges of bit-disjoint values, sign
  extensions.  The wire analysis is what makes ``brev``'s kernel collapse
  to "only wires", the behaviour the paper highlights.

The module also synthesises the loop-control sequencer (a small FSM) whose
next-state logic is minimised with the lean two-level minimiser and mapped
onto 3-input LUTs, and computes the kernel's initiation interval from the
single memory port and the single MAC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..decompile.expr import (
    BinExpr,
    Condition,
    Const,
    LiveIn,
    Load,
    Mux,
    Node,
    OpKind,
    UnExpr,
    walk,
)
from ..decompile.kernel import HardwareKernel
from .logic_min import minimize_cover, minterms_to_cover
from .techmap import estimate_word_operator_luts, map_cover_to_luts

WORD_MASK = 0xFFFFFFFF


# --------------------------------------------------------------------------- results
@dataclass
class DatapathComponent:
    """One DFG node bound to fabric logic, the MAC, or plain wires."""

    node_id: int
    kind: str              # "add", "logic", "mux", "compare", "mac", "wire", ...
    description: str
    luts: int
    levels: int
    uses_mac: bool = False
    width: int = 32


@dataclass
class ControlUnit:
    """The synthesised loop sequencer (counter FSM + next-state logic)."""

    num_states: int
    state_bits: int
    luts: int
    depth: int
    minimized_literals: int
    original_literals: int


@dataclass
class SynthesisResult:
    """Everything the placement/routing and timing models need."""

    kernel: HardwareKernel
    components: List[DatapathComponent] = field(default_factory=list)
    control: Optional[ControlUnit] = None
    mac_operations: int = 0
    wire_only_nodes: int = 0
    datapath_luts: int = 0
    control_luts: int = 0
    critical_path_levels: int = 0
    initiation_interval: int = 1
    memory_reads_per_iteration: int = 0
    memory_writes_per_iteration: int = 0
    dadg_accesses: int = 0
    live_in_count: int = 0
    live_out_count: int = 0

    @property
    def total_luts(self) -> int:
        return self.datapath_luts + self.control_luts

    def summary(self) -> str:
        return (
            f"datapath: {self.datapath_luts} LUTs, control: {self.control_luts} LUTs, "
            f"MAC ops/iter: {self.mac_operations}, wires-only nodes: {self.wire_only_nodes}, "
            f"II: {self.initiation_interval}, critical path: {self.critical_path_levels} levels"
        )


# --------------------------------------------------------------------------- bit analysis
def possible_ones(node: Node, cache: Dict[int, int]) -> int:
    """Bits of ``node`` that can possibly be 1 (conservative superset)."""
    if node.node_id in cache:
        return cache[node.node_id]
    result = WORD_MASK
    if isinstance(node, Const):
        result = node.value & WORD_MASK
    elif isinstance(node, (LiveIn, Load)):
        result = WORD_MASK if not isinstance(node, Load) or node.width == 4 \
            else (1 << (8 * node.width)) - 1
    elif isinstance(node, Condition):
        result = 1
    elif isinstance(node, UnExpr):
        result = WORD_MASK
    elif isinstance(node, Mux):
        result = possible_ones(node.if_true, cache) | possible_ones(node.if_false, cache)
    elif isinstance(node, BinExpr):
        left = possible_ones(node.left, cache)
        right = possible_ones(node.right, cache)
        op = node.op
        if op is OpKind.AND:
            result = left & right
        elif op in (OpKind.OR, OpKind.XOR):
            result = left | right
        elif op is OpKind.ANDN:
            result = left
        elif op is OpKind.SHL and isinstance(node.right, Const):
            result = (left << (node.right.value & 31)) & WORD_MASK
        elif op is OpKind.SHR_LOGICAL and isinstance(node.right, Const):
            result = left >> (node.right.value & 31)
        elif op is OpKind.SHR_ARITH and isinstance(node.right, Const):
            shift = node.right.value & 31
            result = left >> shift
            if left & 0x8000_0000:
                result |= (WORD_MASK << max(0, 32 - shift)) & WORD_MASK
        elif op in (OpKind.ADD, OpKind.SUB):
            # The sum can carry one position past the widest operand.
            combined = left | right
            width = combined.bit_length()
            result = (1 << min(32, width + 1)) - 1 if combined else 0
            if op is OpKind.SUB:
                result = WORD_MASK  # subtraction can borrow through the sign
        else:
            result = WORD_MASK
    cache[node.node_id] = result
    return result


def _effective_width(mask: int) -> int:
    return mask.bit_length()


# --------------------------------------------------------------------------- synthesis
class DatapathSynthesizer:
    """Binds a :class:`HardwareKernel` onto the WCLA resources."""

    def __init__(self, kernel: HardwareKernel, lut_inputs: int = 3,
                 memory_ports: int = 1):
        self.kernel = kernel
        self.lut_inputs = lut_inputs
        self.memory_ports = memory_ports
        self._ones_cache: Dict[int, int] = {}
        self._level_cache: Dict[int, int] = {}
        self._components: Dict[int, DatapathComponent] = {}

    # ------------------------------------------------------------------ driver
    def synthesize(self) -> SynthesisResult:
        kernel = self.kernel
        datapath_roots = self._datapath_roots()
        address_only = self._address_only_nodes(datapath_roots)

        for root in datapath_roots:
            for node in walk(root):
                if node.node_id in self._components or node.node_id in address_only:
                    continue
                component = self._bind_node(node)
                if component is not None:
                    self._components[node.node_id] = component

        components = list(self._components.values())
        mac_operations = sum(1 for c in components if c.uses_mac)
        datapath_luts = sum(c.luts for c in components)
        wire_only = sum(1 for c in components if c.kind == "wire")

        reads = kernel.operations.loads
        writes = kernel.operations.stores
        initiation_interval = max(
            1,
            math.ceil((reads + writes) / self.memory_ports),
            mac_operations,
        )
        control = self._synthesize_control(initiation_interval, reads + writes)
        critical_path = self._critical_path(datapath_roots, address_only)

        return SynthesisResult(
            kernel=kernel,
            components=components,
            control=control,
            mac_operations=mac_operations,
            wire_only_nodes=wire_only,
            datapath_luts=datapath_luts,
            control_luts=control.luts,
            critical_path_levels=critical_path,
            initiation_interval=initiation_interval,
            memory_reads_per_iteration=reads,
            memory_writes_per_iteration=writes,
            dadg_accesses=len(kernel.memory_accesses),
            live_in_count=len(kernel.live_in_registers),
            live_out_count=len(kernel.live_out_registers),
        )

    # ---------------------------------------------------------------- node sets
    def _datapath_roots(self) -> List[Node]:
        body = self.kernel.body
        roots: List[Node] = list(body.register_updates.values())
        for store in body.stores:
            roots.append(store.value)
            if store.guard is not None:
                roots.append(store.guard)
        if body.continue_condition is not None:
            roots.append(body.continue_condition)
        return roots

    def _address_only_nodes(self, datapath_roots: List[Node]) -> Set[int]:
        """Nodes reachable only from regular-access addresses (DADG territory)."""
        body = self.kernel.body
        address_nodes: Set[int] = set()
        for load in body.loads:
            for node in walk(load.address):
                address_nodes.add(node.node_id)
        for store in body.stores:
            for node in walk(store.address):
                address_nodes.add(node.node_id)
        datapath_nodes: Set[int] = set()
        for root in datapath_roots:
            for node in walk(root):
                if isinstance(node, Load):
                    # The load's value is datapath, its address is not.
                    datapath_nodes.add(node.node_id)
                    continue
                datapath_nodes.add(node.node_id)
        # Everything under a Load address that is *also* reachable as a value
        # stays in the datapath; the rest belongs to the DADG.
        value_reachable: Set[int] = set()
        for root in datapath_roots:
            for node in walk(root):
                if isinstance(node, Load):
                    continue
                value_reachable.add(node.node_id)
        return address_nodes - value_reachable

    # ------------------------------------------------------------------ binding
    def _bind_node(self, node: Node) -> Optional[DatapathComponent]:
        ones = self._ones_cache
        if isinstance(node, (Const, LiveIn)):
            return None
        if isinstance(node, Load):
            return DatapathComponent(node.node_id, "load", str(node), luts=0, levels=0)
        if isinstance(node, Condition):
            width = _effective_width(possible_ones(node.value, ones))
            if node.relation in ("lt", "ge"):
                return DatapathComponent(node.node_id, "wire",
                                         f"sign bit of {node.value}", 0, 0)
            luts, depth = estimate_word_operator_luts(max(1, width), "reduce",
                                                      self.lut_inputs)
            return DatapathComponent(node.node_id, "compare", str(node), luts, depth)
        if isinstance(node, UnExpr):
            if node.op in (OpKind.SEXT8, OpKind.SEXT16):
                return DatapathComponent(node.node_id, "wire", str(node), 0, 0)
            luts, depth = estimate_word_operator_luts(32, "add", self.lut_inputs)
            return DatapathComponent(node.node_id, "add", str(node), luts, depth)
        if isinstance(node, Mux):
            width = _effective_width(
                possible_ones(node.if_true, ones) | possible_ones(node.if_false, ones)
            )
            luts, depth = estimate_word_operator_luts(max(1, width), "mux",
                                                      self.lut_inputs)
            return DatapathComponent(node.node_id, "mux", str(node), luts, depth)
        if isinstance(node, BinExpr):
            return self._bind_binary(node)
        raise TypeError(f"cannot bind node {node!r}")

    def _bind_binary(self, node: BinExpr) -> DatapathComponent:
        ones = self._ones_cache
        op = node.op
        left_mask = possible_ones(node.left, ones)
        right_mask = possible_ones(node.right, ones)

        # Shifts by constants are wiring.
        if op in (OpKind.SHL, OpKind.SHR_LOGICAL, OpKind.SHR_ARITH):
            if isinstance(node.right, Const):
                return DatapathComponent(node.node_id, "wire", str(node), 0, 0)
            luts, depth = estimate_word_operator_luts(32, "mux", self.lut_inputs)
            # A variable shifter is a barrel of log2(32) mux stages.
            return DatapathComponent(node.node_id, "shift", str(node),
                                     luts * 5, depth * 5)
        # Masking with a constant selects wires; merging bit-disjoint values
        # is also pure wiring.
        if op is OpKind.AND and (isinstance(node.left, Const) or isinstance(node.right, Const)):
            return DatapathComponent(node.node_id, "wire", str(node), 0, 0)
        if op in (OpKind.OR, OpKind.XOR) and (left_mask & right_mask) == 0:
            return DatapathComponent(node.node_id, "wire", str(node), 0, 0)
        if op is OpKind.MUL:
            if isinstance(node.right, Const) and _is_power_of_two(node.right.value):
                return DatapathComponent(node.node_id, "wire", str(node), 0, 0)
            if isinstance(node.left, Const) and _is_power_of_two(node.left.value):
                return DatapathComponent(node.node_id, "wire", str(node), 0, 0)
            return DatapathComponent(node.node_id, "mac", str(node), 0, 0,
                                     uses_mac=True)
        width = _effective_width(left_mask | right_mask)
        width = max(1, min(32, width))
        if op in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.ANDN):
            luts, depth = estimate_word_operator_luts(width, "and", self.lut_inputs)
            return DatapathComponent(node.node_id, "logic", str(node), luts, depth,
                                     width=width)
        if op in (OpKind.ADD, OpKind.SUB):
            luts, depth = estimate_word_operator_luts(width, "add", self.lut_inputs)
            return DatapathComponent(node.node_id, "add", str(node), luts, depth,
                                     width=width)
        if op in (OpKind.CMP_SIGN, OpKind.CMP_SIGN_U):
            luts, depth = estimate_word_operator_luts(width, "compare", self.lut_inputs)
            return DatapathComponent(node.node_id, "compare", str(node), luts, depth,
                                     width=width)
        raise ValueError(f"unhandled binary op {op}")

    # ---------------------------------------------------------------- timing
    def _critical_path(self, roots: List[Node], address_only: Set[int]) -> int:
        def level(node: Node) -> int:
            if node.node_id in self._level_cache:
                return self._level_cache[node.node_id]
            component = self._components.get(node.node_id)
            own = component.levels if component is not None else 0
            # The MAC occupies a full pipeline stage; model it as a deep node.
            if component is not None and component.uses_mac:
                own = 8
            children: List[Node] = []
            if isinstance(node, BinExpr):
                children = [node.left, node.right]
            elif isinstance(node, UnExpr):
                children = [node.operand]
            elif isinstance(node, Mux):
                children = [node.condition, node.if_true, node.if_false]
            elif isinstance(node, Condition):
                children = [node.value]
            result = own + max((level(child) for child in children
                                if child.node_id not in address_only), default=0)
            self._level_cache[node.node_id] = result
            return result

        return max((level(root) for root in roots), default=0)

    # ---------------------------------------------------------------- control
    def _synthesize_control(self, initiation_interval: int,
                            memory_accesses: int) -> ControlUnit:
        """Synthesise the loop sequencer FSM through the ROCM + LUT mapper."""
        num_states = max(2, initiation_interval + 2)  # issue states + test/writeback
        state_bits = max(1, math.ceil(math.log2(num_states)))
        total_luts = 0
        depth = 0
        original_literals = 0
        minimized_literals = 0
        # One next-state function per state bit: state' = state + 1 (mod N),
        # qualified by a "run" input (variable index state_bits).
        num_vars = state_bits + 1
        for bit in range(state_bits):
            minterms = []
            for state in range(num_states):
                next_state = (state + 1) % num_states
                if (next_state >> bit) & 1:
                    minterms.append(state | (1 << state_bits))  # run = 1
                if (state >> bit) & 1:
                    minterms.append(state)  # run = 0 holds the state
            cover = minterms_to_cover(num_vars, sorted(set(minterms)))
            result = minimize_cover(num_vars, cover)
            mapped = map_cover_to_luts(result.cover, num_vars, f"state{bit}",
                                       self.lut_inputs)
            total_luts += mapped.lut_count
            depth = max(depth, mapped.depth)
            original_literals += result.original_literals
            minimized_literals += result.minimized_literals
        return ControlUnit(
            num_states=num_states,
            state_bits=state_bits,
            luts=total_luts,
            depth=depth,
            minimized_literals=minimized_literals,
            original_literals=original_literals,
        )


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def synthesize_kernel(kernel: HardwareKernel, lut_inputs: int = 3,
                      memory_ports: int = 1) -> SynthesisResult:
    """Synthesise ``kernel`` onto the WCLA (convenience wrapper)."""
    return DatapathSynthesizer(kernel, lut_inputs=lut_inputs,
                               memory_ports=memory_ports).synthesize()
