"""Technology mapping onto the simple fabric's 3-input LUTs.

The warp configurable logic architecture's fabric is built from small
look-up tables (the companion DATE'04 fabric paper uses 3-input LUTs
arranged in combinational-logic blocks).  This module covers a minimised
sum-of-products cover with K-input LUTs:

* each product term (cube) becomes a tree of AND LUTs over its literals,
* the products are combined by a tree of OR LUTs,
* single-literal functions map to zero LUTs (they are just wires, possibly
  inverted inside the consuming LUT).

The mapper reports both the LUT count and the LUT depth, which the
placement/routing timing model turns into nanoseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class LutNode:
    """One mapped LUT: a K-input gate in the covered network."""

    name: str
    function: str  # "and", "or"
    inputs: List[str] = field(default_factory=list)
    level: int = 0


@dataclass
class MappedNetwork:
    """Result of technology mapping one boolean function."""

    output: str
    luts: List[LutNode] = field(default_factory=list)
    depth: int = 0

    @property
    def lut_count(self) -> int:
        return len(self.luts)


def _tree_reduce(signals: List[str], function: str, k: int, prefix: str,
                 luts: List[LutNode], levels: Dict[str, int]) -> str:
    """Reduce ``signals`` with a balanced tree of K-input LUTs."""
    if len(signals) == 1:
        return signals[0]
    counter = 0
    current = list(signals)
    while len(current) > 1:
        next_level: List[str] = []
        for start in range(0, len(current), k):
            group = current[start:start + k]
            if len(group) == 1:
                next_level.append(group[0])
                continue
            name = f"{prefix}_{function}{counter}"
            counter += 1
            level = 1 + max(levels.get(signal, 0) for signal in group)
            luts.append(LutNode(name=name, function=function, inputs=list(group),
                                level=level))
            levels[name] = level
            next_level.append(name)
        current = next_level
    return current[0]


def map_cover_to_luts(cover: Sequence[str], num_vars: int, output_name: str,
                      lut_inputs: int = 3) -> MappedNetwork:
    """Map a sum-of-products cover onto K-input LUTs.

    Variables are named ``x0 .. x{num_vars-1}``; inverted literals are free
    (absorbed into the LUT truth tables), so a literal contributes one
    signal regardless of polarity.
    """
    if lut_inputs < 2:
        raise ValueError("LUTs need at least two inputs")
    luts: List[LutNode] = []
    levels: Dict[str, int] = {}
    product_signals: List[str] = []

    for cube_index, cube in enumerate(cover):
        literals = [f"x{i}" for i, literal in enumerate(cube) if literal != "-"]
        if not literals:
            # A cube with no literals is the constant-1 function.
            return MappedNetwork(output="const1", luts=[], depth=0)
        if len(literals) == 1:
            product_signals.append(literals[0])
            continue
        signal = _tree_reduce(literals, "and", lut_inputs,
                              f"{output_name}_p{cube_index}", luts, levels)
        product_signals.append(signal)

    if not product_signals:
        return MappedNetwork(output="const0", luts=[], depth=0)
    output = _tree_reduce(product_signals, "or", lut_inputs,
                          f"{output_name}_sum", luts, levels)
    depth = max((lut.level for lut in luts), default=0)
    return MappedNetwork(output=output, luts=luts, depth=depth)


def estimate_word_operator_luts(width: int, operator: str,
                                lut_inputs: int = 3) -> Tuple[int, int]:
    """LUT count and depth estimate for one ``width``-bit word operator.

    These closed-form estimates stand in for bit-blasting the wide datapath
    operators (adders, logic, multiplexers) through the cover-based mapper,
    which would be prohibitively slow on-chip — the same shortcut the lean
    on-chip tools take by recognising datapath components directly.
    """
    if width <= 0:
        return 0, 0
    if operator in ("and", "or", "xor", "andn"):
        return width, 1
    if operator == "mux":
        return width, 1
    if operator in ("add", "sub", "compare"):
        # One LUT per sum bit plus carry logic; the simple fabric's CLBs chain
        # their carries through dedicated fast-carry wiring (as in the
        # companion fabric paper), so the logic depth grows with 8-bit carry
        # blocks rather than bit-by-bit ripple.
        carry_blocks = math.ceil(width / (lut_inputs - 1))
        return width + carry_blocks, math.ceil(width / 8) + 2
    if operator == "reduce":  # wide OR/AND reduction (zero/sign detect)
        count = 0
        remaining = width
        depth = 0
        while remaining > 1:
            groups = math.ceil(remaining / lut_inputs)
            count += groups
            remaining = groups
            depth += 1
        return count, depth
    raise ValueError(f"unknown word operator {operator!r}")
