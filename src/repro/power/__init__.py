"""Power and energy models (Figure 5 of the paper).

Spartan3/MicroBlaze power constants (the XPower stand-in), the UMC 0.18 µm
WCLA power model, ARM hard-core power densities, and the Figure-5 energy
equation used to produce Figure 7.
"""

from .constants import (
    ARM_POWER,
    ArmPower,
    MICROBLAZE_POWER,
    MicroBlazePower,
    WCLA_POWER,
    WclaPower,
)
from .energy import EnergyBreakdown, arm_energy, microblaze_energy, warp_energy
from .xpower import ComponentPower, PowerReport, estimate_system_power

__all__ = [
    "ARM_POWER",
    "ArmPower",
    "MICROBLAZE_POWER",
    "MicroBlazePower",
    "WCLA_POWER",
    "WclaPower",
    "EnergyBreakdown",
    "arm_energy",
    "microblaze_energy",
    "warp_energy",
    "ComponentPower",
    "PowerReport",
    "estimate_system_power",
]
