"""Power-model constants.

The paper obtains its power numbers from three sources: the Xilinx XPower
estimator for the MicroBlaze system on the Spartan3 (dynamic and static
power), a Synopsys Design Compiler / UMC 0.18 µm characterisation of the
WCLA, and datasheet/SimpleScalar-derived figures for the ARM hard cores.
None of those tools are available here, so this module collects documented
constants of the right era and magnitude; every figure below is the single
place that quantity is defined, and the energy results in ``EXPERIMENTS.md``
are produced by running the flow with these values (nothing downstream
hard-codes a paper result).

Sources / reasoning for the chosen values:

* Spartan3 quiescent (static) power for a small device is tens of mW; we
  use 90 mW for the XC3S400-class part the MicroBlaze system occupies.
* The MicroBlaze core plus BRAM/LMB/OPB dynamic power at 85 MHz reported by
  XPower-era estimates is on the order of 0.7-1.2 mW/MHz; we use 0.85 mW/MHz
  when the pipeline is busy and 0.25 mW/MHz when it only waits (clock tree
  and BRAM standby keep toggling while the WCLA computes).
* The WCLA characterised in UMC 0.18 µm consumes a few tens of mW when
  active: a fixed DADG/register/controller part plus a LUT-count dependent
  fabric part and the MAC when used.
* ARM power densities follow the published typical figures for the cores at
  the paper's clock rates (ARM7TDMI ≈ 0.45 mW/MHz, ARM926 ≈ 0.7 mW/MHz
  including caches, ARM1020 ≈ 0.95 mW/MHz, ARM1136 ≈ 1.4 mW/MHz including
  its memory system at 550 MHz), plus a small system (memory) adder.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MicroBlazePower:
    """Spartan3 MicroBlaze system power (XPower stand-in)."""

    #: Dynamic power density while executing instructions (mW per MHz).
    active_mw_per_mhz: float = 0.85
    #: Dynamic power density while idle/waiting for the WCLA (mW per MHz).
    idle_mw_per_mhz: float = 0.25
    #: Spartan3 static (quiescent) power in mW, charged for the whole run.
    static_mw: float = 85.0

    def active_mw(self, clock_mhz: float) -> float:
        return self.active_mw_per_mhz * clock_mhz

    def idle_mw(self, clock_mhz: float) -> float:
        return self.idle_mw_per_mhz * clock_mhz


@dataclass(frozen=True)
class WclaPower:
    """WCLA power from the UMC 0.18 µm characterisation stand-in."""

    #: Fixed active power of DADG + loop control + registers (mW).
    base_active_mw: float = 18.0
    #: Additional active power per occupied LUT (mW).
    per_lut_mw: float = 0.10
    #: Additional active power when the 32-bit MAC is exercised (mW).
    mac_active_mw: float = 14.0
    #: Static power of the WCLA block (mW), charged while configured.
    static_mw: float = 6.0

    def active_mw(self, luts_used: int, uses_mac: bool) -> float:
        power = self.base_active_mw + self.per_lut_mw * luts_used
        if uses_mac:
            power += self.mac_active_mw
        return power


@dataclass(frozen=True)
class ArmPower:
    """One ARM hard core's power figures."""

    name: str
    clock_mhz: float
    core_mw_per_mhz: float
    system_static_mw: float

    @property
    def active_mw(self) -> float:
        return self.core_mw_per_mhz * self.clock_mhz + self.system_static_mw


#: Default component models used by the experiments.
MICROBLAZE_POWER = MicroBlazePower()
WCLA_POWER = WclaPower()

ARM_POWER = {
    "ARM7": ArmPower("ARM7", clock_mhz=100.0, core_mw_per_mhz=0.45, system_static_mw=15.0),
    "ARM9": ArmPower("ARM9", clock_mhz=250.0, core_mw_per_mhz=0.70, system_static_mw=25.0),
    "ARM10": ArmPower("ARM10", clock_mhz=325.0, core_mw_per_mhz=0.95, system_static_mw=35.0),
    "ARM11": ArmPower("ARM11", clock_mhz=550.0, core_mw_per_mhz=1.40, system_static_mw=60.0),
}
