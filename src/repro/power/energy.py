"""The Figure-5 energy equation and per-platform energy accounting.

Figure 5 of the paper defines the energy of a warp-processed execution as

.. math::

    E_{total} = E_{MB} + E_{HW} + E_{static}

with

.. math::

    E_{MB} = P_{idleMB} \\cdot t_{idle} + P_{activeMB} \\cdot t_{active}

    E_{HW} = P_{HW} \\cdot t_{activeHW}

    E_{static} = P_{static} \\cdot t_{total}

The same accounting degenerates naturally to the software-only MicroBlaze
case (no idle time, no hardware term) and, with the ARM constants, to the
hard-core comparison points of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import ARM_POWER, MICROBLAZE_POWER, WCLA_POWER, ArmPower, MicroBlazePower, WclaPower


@dataclass
class EnergyBreakdown:
    """Energy of one execution, split the way Figure 5 splits it."""

    label: str
    microblaze_active_j: float = 0.0
    microblaze_idle_j: float = 0.0
    hardware_j: float = 0.0
    static_j: float = 0.0

    @property
    def total_j(self) -> float:
        return (self.microblaze_active_j + self.microblaze_idle_j
                + self.hardware_j + self.static_j)

    @property
    def total_mj(self) -> float:
        return self.total_j * 1e3

    def normalized_to(self, reference: "EnergyBreakdown") -> float:
        if reference.total_j == 0:
            return 0.0
        return self.total_j / reference.total_j


def microblaze_energy(active_seconds: float, clock_mhz: float,
                      idle_seconds: float = 0.0,
                      power: MicroBlazePower = MICROBLAZE_POWER,
                      label: str = "MicroBlaze") -> EnergyBreakdown:
    """Energy of a MicroBlaze running for ``active_seconds`` (plus idle time).

    The static term covers the whole span (active + idle), as in Figure 5.
    """
    total_seconds = active_seconds + idle_seconds
    return EnergyBreakdown(
        label=label,
        microblaze_active_j=power.active_mw(clock_mhz) * 1e-3 * active_seconds,
        microblaze_idle_j=power.idle_mw(clock_mhz) * 1e-3 * idle_seconds,
        static_j=power.static_mw * 1e-3 * total_seconds,
    )


def warp_energy(mb_active_seconds: float, hw_seconds: float, clock_mhz: float,
                wcla_luts: int, uses_mac: bool,
                mb_power: MicroBlazePower = MICROBLAZE_POWER,
                wcla_power: WclaPower = WCLA_POWER,
                label: str = "MicroBlaze (Warp)") -> EnergyBreakdown:
    """Energy of a warp-processed run per the Figure-5 equation.

    While the WCLA executes the kernel the MicroBlaze waits (idle power);
    while the MicroBlaze executes the rest of the application the WCLA is
    quiescent (its static power is folded into the hardware term).
    """
    total_seconds = mb_active_seconds + hw_seconds
    hardware_j = (wcla_power.active_mw(wcla_luts, uses_mac) * 1e-3 * hw_seconds
                  + wcla_power.static_mw * 1e-3 * total_seconds)
    return EnergyBreakdown(
        label=label,
        microblaze_active_j=mb_power.active_mw(clock_mhz) * 1e-3 * mb_active_seconds,
        microblaze_idle_j=mb_power.idle_mw(clock_mhz) * 1e-3 * hw_seconds,
        hardware_j=hardware_j,
        static_j=mb_power.static_mw * 1e-3 * total_seconds,
    )


def arm_energy(execution_seconds: float, arm: ArmPower,
               label: str | None = None) -> EnergyBreakdown:
    """Energy of an ARM hard core executing for ``execution_seconds``."""
    return EnergyBreakdown(
        label=label or arm.name,
        microblaze_active_j=arm.active_mw * 1e-3 * execution_seconds,
    )
