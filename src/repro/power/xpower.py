"""XPower-style component power report for a MicroBlaze system.

The paper uses the Xilinx XPower estimator to obtain the dynamic and static
power of the MicroBlaze processor and its system components on the Spartan3.
This module reproduces the *shape* of such a report: per-component dynamic
power estimated from activity counters collected during simulation (clock
tree, processor core, BRAMs, busses, peripherals) plus device static power.
It exists mainly for the examples and ablation studies; the headline energy
results use the aggregate constants of :mod:`repro.power.constants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..microblaze.system import ExecutionResult
from .constants import MICROBLAZE_POWER, MicroBlazePower


@dataclass
class ComponentPower:
    name: str
    dynamic_mw: float

    def __str__(self) -> str:
        return f"{self.name:<18s} {self.dynamic_mw:7.1f} mW"


@dataclass
class PowerReport:
    """Per-component dynamic power plus device static power."""

    components: List[ComponentPower] = field(default_factory=list)
    static_mw: float = 0.0

    @property
    def dynamic_mw(self) -> float:
        return sum(component.dynamic_mw for component in self.components)

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw

    def render(self) -> str:
        lines = [str(component) for component in self.components]
        lines.append(f"{'static (device)':<18s} {self.static_mw:7.1f} mW")
        lines.append(f"{'total':<18s} {self.total_mw:7.1f} mW")
        return "\n".join(lines)


def estimate_system_power(result: ExecutionResult,
                          power: MicroBlazePower = MICROBLAZE_POWER) -> PowerReport:
    """Estimate per-component power from one run's activity statistics.

    The split between clock tree, core logic, memories and busses follows
    typical XPower breakdowns for BRAM-resident MicroBlaze designs (roughly
    30 % clock, 40 % core, 20 % memory, 10 % bus/peripheral), scaled by how
    busy each resource actually was during the simulated run.
    """
    clock_mhz = result.config.clock_mhz
    total_active_mw = power.active_mw(clock_mhz)
    cycles = max(1, result.stats.cycles)
    memory_activity = (result.stats.loads + result.stats.stores) / cycles
    bus_activity = (result.stats.opb_reads + result.stats.opb_writes) / cycles

    components = [
        ComponentPower("clock tree", 0.30 * total_active_mw),
        ComponentPower("MicroBlaze core", 0.40 * total_active_mw),
        ComponentPower("BRAM + LMB", 0.20 * total_active_mw * min(1.0, 2.0 * memory_activity + 0.3)),
        ComponentPower("OPB + peripherals", 0.10 * total_active_mw * min(1.0, 10.0 * bus_activity + 0.2)),
    ]
    return PowerReport(components=components, static_mw=power.static_mw)
