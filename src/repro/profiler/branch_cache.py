"""Frequent-loop-detection branch cache.

The warp processor's profiler (Figure 2) is based on the non-intrusive
frequent loop detector of Gordon-Ross and Vahid (CASES 2003): it snoops the
instruction-side local memory bus and, whenever a *backward branch* is
taken, updates a small cache of saturating counters indexed by the branch's
target address.  Because loops execute their backward branch once per
iteration, the hottest cache entries identify the most frequently executed
loops without instrumenting the program at all.

The cache is modelled faithfully enough to study its behaviour: it has a
configurable number of entries and associativity, uses FIFO replacement
within a set, and saturates its counters, so a profile can be perturbed by
conflict evictions exactly the way a real small cache would be.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class BranchCacheEntry:
    """One entry of the profiler cache."""

    target_address: int
    branch_address: int
    count: int = 0


class BranchFrequencyCache:
    """Small set-associative cache of backward-branch frequencies."""

    def __init__(self, num_entries: int = 16, associativity: int = 4,
                 counter_bits: int = 32):
        if num_entries <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        if num_entries % associativity:
            raise ValueError("num_entries must be a multiple of associativity")
        self.num_entries = num_entries
        self.associativity = associativity
        self.num_sets = num_entries // associativity
        self.counter_max = (1 << counter_bits) - 1
        self.sets: List[List[BranchCacheEntry]] = [[] for _ in range(self.num_sets)]
        self.evictions = 0
        self.updates = 0

    def _set_index(self, target_address: int) -> int:
        return (target_address >> 2) % self.num_sets

    def record(self, branch_address: int, target_address: int) -> None:
        """Record one taken backward branch."""
        self.updates += 1
        bucket = self.sets[self._set_index(target_address)]
        for entry in bucket:
            if entry.target_address == target_address:
                entry.count = min(entry.count + 1, self.counter_max)
                entry.branch_address = branch_address
                return
        entry = BranchCacheEntry(target_address=target_address,
                                 branch_address=branch_address, count=1)
        if len(bucket) >= self.associativity:
            bucket.pop(0)  # FIFO replacement
            self.evictions += 1
        bucket.append(entry)

    def entries(self) -> List[BranchCacheEntry]:
        """All resident entries, hottest first."""
        resident = [entry for bucket in self.sets for entry in bucket]
        return sorted(resident, key=lambda e: e.count, reverse=True)

    def hottest(self) -> Optional[BranchCacheEntry]:
        """The most frequently executed backward branch currently resident."""
        resident = self.entries()
        return resident[0] if resident else None

    def total_count(self) -> int:
        return sum(entry.count for bucket in self.sets for entry in bucket)

    def clear(self) -> None:
        self.sets = [[] for _ in range(self.num_sets)]
        self.evictions = 0
        self.updates = 0
