"""Non-intrusive on-chip profiler (Figure 2 of the paper).

Watches taken backward branches on the instruction stream, accumulates
their frequencies in a small hardware-style cache, and reports the critical
regions that the dynamic partitioning module considers for hardware
implementation.
"""

from .branch_cache import BranchCacheEntry, BranchFrequencyCache
from .profiler import CriticalRegion, OnChipProfiler

__all__ = [
    "BranchCacheEntry",
    "BranchFrequencyCache",
    "CriticalRegion",
    "OnChipProfiler",
]
