"""The non-intrusive on-chip profiler of the warp processor.

The profiler observes the simulated MicroBlaze's execution stream (the
stand-in for snooping the instruction-side local memory bus) and feeds
taken backward branches into the :class:`BranchFrequencyCache`.  At the end
of a profiling window it reports the critical regions — candidate loops —
ranked by backward-branch frequency, from which the dynamic partitioning
module selects the single most critical region to implement in hardware,
exactly as in Section 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..microblaze.trace import TraceEvent
from .branch_cache import BranchFrequencyCache


@dataclass(frozen=True)
class CriticalRegion:
    """A candidate loop identified by the profiler.

    ``start_address`` is the backward branch's target (the loop header) and
    ``end_address`` the address of the backward branch itself, so the loop
    body occupies the closed byte range ``[start_address, end_address]``.
    """

    start_address: int
    end_address: int
    frequency: int
    relative_weight: float = 0.0

    @property
    def size_bytes(self) -> int:
        return self.end_address - self.start_address + 4

    @property
    def num_instructions(self) -> int:
        return self.size_bytes // 4

    def contains(self, address: int) -> bool:
        return self.start_address <= address <= self.end_address

    def __str__(self) -> str:
        return (f"loop [{self.start_address:#06x}, {self.end_address:#06x}] "
                f"({self.num_instructions} instructions, "
                f"{self.frequency} iterations observed)")


class OnChipProfiler:
    """Branch observer implementing the warp processor's profiler.

    The hardware profiler snoops the instruction-side local memory bus and
    reacts only to taken backward branches, so the simulated profiler
    subscribes through the CPU's zero-allocation branch-hook protocol
    (:class:`~repro.microblaze.trace.BranchObserver`): branch handlers of
    the execution engine call :meth:`on_branch` with three scalars and no
    :class:`~repro.microblaze.trace.TraceEvent` is ever allocated for it.
    :meth:`on_instruction` remains available for feeding the profiler from
    a pre-recorded event trace.
    """

    def __init__(self, cache: Optional[BranchFrequencyCache] = None):
        self.cache = cache if cache is not None else BranchFrequencyCache()
        self.total_branches = 0
        self.backward_taken = 0
        self.instructions_observed = 0
        #: Basic-block edge profile: ``(branch pc, taken target) -> count``
        #: over *every* taken branch (forward and backward, any engine —
        #: the branch-hook protocol delivers all of them).  Unlike the
        #: bounded :class:`BranchFrequencyCache`, which models the
        #: hardware profiler's backward-branch table, this is host-side
        #: groundwork for path-sensitive partitioning: edge weights over
        #: the control-flow graph let the partitioner score *paths*
        #: through a region rather than single loop headers.  Cost: one
        #: small tuple key and one dict upsert per taken branch —
        #: comparable to the branch cache's record() that backward
        #: branches already pay.
        self.edge_counts: dict = {}

    # ---------------------------------------------------------- branch observer
    def on_branch(self, pc: int, target: Optional[int], taken: bool) -> None:
        """One branch as observed on the instruction bus (scalar fast path)."""
        self.total_branches += 1
        if taken and target is not None:
            edge = (pc, target)
            counts = self.edge_counts
            counts[edge] = counts.get(edge, 0) + 1
            if target < pc:
                self.backward_taken += 1
                self.cache.record(pc, target)

    def on_run_end(self, instructions: int) -> None:
        """Called by the CPU with the instruction count of a finished run."""
        self.instructions_observed += instructions

    # ---------------------------------------------------------- trace listener
    def on_instruction(self, event: TraceEvent) -> None:
        """Feed the profiler from a recorded full-instruction trace."""
        self.instructions_observed += 1
        if not event.is_branch:
            return
        self.total_branches += 1
        if event.branch_taken and event.branch_target is not None:
            edge = (event.pc, event.branch_target)
            self.edge_counts[edge] = self.edge_counts.get(edge, 0) + 1
            if event.branch_target < event.pc:
                self.backward_taken += 1
                self.cache.record(event.pc, event.branch_target)

    # ------------------------------------------------------------------ results
    def critical_regions(self, top: int = 8) -> List[CriticalRegion]:
        """The hottest candidate loops, most frequent first."""
        total = self.cache.total_count() or 1
        regions = []
        for entry in self.cache.entries()[:top]:
            regions.append(
                CriticalRegion(
                    start_address=entry.target_address,
                    end_address=entry.branch_address,
                    frequency=entry.count,
                    relative_weight=entry.count / total,
                )
            )
        return regions

    def most_critical_region(self) -> Optional[CriticalRegion]:
        """The single most critical region (what the DPM partitions)."""
        regions = self.critical_regions(top=1)
        return regions[0] if regions else None

    def summary(self) -> str:
        region = self.most_critical_region()
        lines = [
            f"profiled {self.instructions_observed} instructions, "
            f"{self.backward_taken} taken backward branches",
        ]
        if region is not None:
            lines.append(f"most critical region: {region}")
        return "\n".join(lines)
