"""The warp configurable logic architecture (WCLA) and its simple fabric.

Figure 3 of the paper shows the WCLA: a data address generator (DADG) with
loop control hardware (LCH), three registers (Reg0, Reg1, Reg2) that source
and sink the configurable logic, a 32-bit multiplier-accumulator (MAC), and
a simplified configurable logic fabric used to implement the partitioned
critical regions.  The fabric was co-designed with lean synthesis,
technology mapping, placement and routing algorithms (the companion DATE'04
and DAC'04 papers) so that the whole CAD flow can run on a small embedded
processor.

This module captures the architecture parameters and the physical timing
constants used by the placement/routing and clock-estimation models.  The
delay values follow the UMC 0.18 µm characterisation the paper reports for
the WCLA (synthesised with Synopsys Design Compiler) and the speed grade of
the era's low-cost FPGAs (the paper notes the Spartan3's non-processor
logic can run at up to 250 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class FabricParameters:
    """Geometry and timing of the simple configurable logic fabric."""

    #: Number of combinational-logic-block rows and columns.
    rows: int = 24
    columns: int = 24
    #: LUTs per combinational logic block (the simple fabric uses small CLBs).
    luts_per_clb: int = 2
    #: LUT input count (3-input LUTs in the simple fabric).
    lut_inputs: int = 3
    #: Routing channel capacity (wires per channel segment).
    channel_width: int = 8
    #: Combinational delay through one LUT (ns).
    lut_delay_ns: float = 0.9
    #: Routing delay per switch-matrix hop (ns).
    hop_delay_ns: float = 0.5
    #: Fixed connection-block delay added per routed net (ns).
    connection_delay_ns: float = 0.6

    @property
    def total_clbs(self) -> int:
        return self.rows * self.columns

    @property
    def total_luts(self) -> int:
        return self.total_clbs * self.luts_per_clb


@dataclass(frozen=True)
class WclaParameters:
    """The full WCLA: fabric plus the dedicated datapath resources."""

    fabric: FabricParameters = field(default_factory=FabricParameters)
    #: Number of data registers between the fabric and the memory interface.
    num_registers: int = 3
    #: Latency of the 32-bit multiplier-accumulator (ns, registered).
    mac_delay_ns: float = 5.2
    #: Access time of the dual-ported data BRAM through the DADG (ns).
    bram_access_ns: float = 3.4
    #: Register clock-to-out plus setup overhead per cycle (ns).
    register_overhead_ns: float = 1.0
    #: The DADG can issue this many memory accesses per cycle (one port of
    #: the dual-ported data BRAM is reserved for the MicroBlaze).
    memory_ports: int = 1
    #: Upper clock bound of the surrounding FPGA fabric (MHz); the paper
    #: quotes 250 MHz for non-processor Spartan3 logic.
    max_clock_mhz: float = 250.0
    #: Number of pipeline stages spent filling/draining per kernel invocation
    #: (DADG address setup, register load, result write-back).
    invocation_pipeline_overhead: int = 4

    @property
    def min_period_ns(self) -> float:
        return 1e3 / self.max_clock_mhz


#: Default WCLA used throughout the experiments.
DEFAULT_WCLA = WclaParameters()


@dataclass
class AreaReport:
    """Post-placement area accounting for one kernel's configuration."""

    luts_used: int
    clbs_used: int
    clbs_available: int
    mac_used: bool
    registers_used: int

    @property
    def utilization(self) -> float:
        if self.clbs_available == 0:
            return 0.0
        return self.clbs_used / self.clbs_available

    @property
    def fits(self) -> bool:
        return self.clbs_used <= self.clbs_available
