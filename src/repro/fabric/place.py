"""Greedy placement for the simple configurable logic fabric.

The on-chip placement algorithm of the warp processor has to run in very
little memory and time, so it is a constructive placer rather than an
annealer: components are placed one after another in decreasing
connectivity order, each at the free location that minimises the
half-perimeter wirelength (HPWL) of its already-placed neighbours, followed
by a bounded pass of improving pairwise swaps.

The placement operates on a *component netlist* derived from the synthesis
result: each datapath component occupies a contiguous group of CLBs sized
by its LUT count, the control unit is one more component, and the fixed
WCLA resources (the three registers, the MAC and the DADG) occupy dedicated
sites on the fabric's edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..decompile.expr import BinExpr, Condition, Mux, Node, UnExpr, walk
from ..synthesis.datapath import SynthesisResult
from .architecture import AreaReport, FabricParameters, WclaParameters


@dataclass
class PlacedComponent:
    """One placeable component and, after placement, its CLB location."""

    name: str
    luts: int
    clbs: int
    fixed: bool = False
    location: Optional[Tuple[int, int]] = None  # (row, column) of its anchor


@dataclass
class Net:
    """A two-point connection between components."""

    driver: str
    sink: str

    def endpoints(self) -> Tuple[str, str]:
        return self.driver, self.sink


@dataclass
class PlacementResult:
    """Outcome of placing one kernel's netlist."""

    components: Dict[str, PlacedComponent]
    nets: List[Net]
    total_wirelength: int
    area: AreaReport

    def component_location(self, name: str) -> Tuple[int, int]:
        location = self.components[name].location
        if location is None:
            raise ValueError(f"component {name!r} was not placed")
        return location


def build_component_netlist(synthesis: SynthesisResult,
                            fabric: FabricParameters) -> Tuple[List[PlacedComponent], List[Net]]:
    """Derive placeable components and connecting nets from a synthesis result."""
    components: List[PlacedComponent] = []
    nets: List[Net] = []
    by_node: Dict[int, str] = {}

    # Fixed WCLA resources sit on the fabric edge (row -1 conceptually, but we
    # model them as zero-area anchors at fixed columns of row 0).
    for index, name in enumerate(("reg0", "reg1", "reg2", "dadg", "mac")):
        components.append(PlacedComponent(name=name, luts=0, clbs=0, fixed=True,
                                          location=(0, index)))

    for component in synthesis.components:
        if component.luts <= 0 and not component.uses_mac:
            continue
        name = f"n{component.node_id}_{component.kind}"
        clbs = max(1, math.ceil(component.luts / fabric.luts_per_clb))
        if component.uses_mac:
            # MAC-bound operations use the dedicated MAC, not fabric CLBs.
            by_node[component.node_id] = "mac"
            continue
        components.append(PlacedComponent(name=name, luts=component.luts, clbs=clbs))
        by_node[component.node_id] = name

    if synthesis.control is not None and synthesis.control.luts > 0:
        clbs = max(1, math.ceil(synthesis.control.luts / fabric.luts_per_clb))
        components.append(PlacedComponent(name="control", luts=synthesis.control.luts,
                                          clbs=clbs))

    # Nets follow the dataflow edges between bound components; operands that
    # are live-in registers come from reg0-2, loads come from the DADG.
    def component_of(node: Node) -> Optional[str]:
        kind = node.__class__.__name__
        if kind == "LiveIn":
            return "reg0"
        if kind == "Load":
            return "dadg"
        return by_node.get(node.node_id)

    seen_nodes: Set[int] = set()
    for root in synthesis.kernel.body.roots():
        for node in walk(root):
            if node.node_id in seen_nodes:
                continue
            seen_nodes.add(node.node_id)
            sink = by_node.get(node.node_id)
            if sink is None:
                continue
            children: Sequence[Node] = ()
            if isinstance(node, BinExpr):
                children = (node.left, node.right)
            elif isinstance(node, UnExpr):
                children = (node.operand,)
            elif isinstance(node, Mux):
                children = (node.condition, node.if_true, node.if_false)
            elif isinstance(node, Condition):
                children = (node.value,)
            for child in children:
                driver = component_of(child)
                if driver is not None and driver != sink:
                    nets.append(Net(driver=driver, sink=sink))
    # Results leave through the output registers.
    for component in components:
        if not component.fixed and component.name != "control":
            nets.append(Net(driver=component.name, sink="reg1"))
    if any(c.name == "control" for c in components):
        nets.append(Net(driver="control", sink="dadg"))
    return components, nets


class GreedyPlacer:
    """Constructive placer with a bounded improvement pass."""

    def __init__(self, fabric: FabricParameters):
        self.fabric = fabric

    # ---------------------------------------------------------------- helpers
    def _free_sites(self, occupied: Set[Tuple[int, int]]) -> List[Tuple[int, int]]:
        sites = []
        for row in range(1, self.fabric.rows):
            for column in range(self.fabric.columns):
                if (row, column) not in occupied:
                    sites.append((row, column))
        return sites

    @staticmethod
    def _distance(a: Tuple[int, int], b: Tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def _wirelength(self, components: Dict[str, PlacedComponent],
                    nets: Sequence[Net]) -> int:
        total = 0
        for net in nets:
            driver = components[net.driver].location
            sink = components[net.sink].location
            if driver is not None and sink is not None:
                total += self._distance(driver, sink)
        return total

    # ------------------------------------------------------------------ place
    def place(self, components: Sequence[PlacedComponent],
              nets: Sequence[Net]) -> PlacementResult:
        by_name = {component.name: component for component in components}
        occupied: Set[Tuple[int, int]] = set()
        for component in components:
            if component.fixed and component.location is not None:
                occupied.add(component.location)

        # Connectivity-ordered constructive placement.
        connectivity: Dict[str, int] = {name: 0 for name in by_name}
        for net in nets:
            connectivity[net.driver] = connectivity.get(net.driver, 0) + 1
            connectivity[net.sink] = connectivity.get(net.sink, 0) + 1
        movable = [c for c in components if not c.fixed]
        movable.sort(key=lambda c: connectivity.get(c.name, 0), reverse=True)

        for component in movable:
            best_site, best_cost = None, None
            free = self._free_sites(occupied)
            if not free:
                raise FabricCapacityError(
                    f"fabric out of CLB sites while placing {component.name!r}"
                )
            neighbours = [
                by_name[other].location
                for net in nets
                for other in net.endpoints()
                if other != component.name
                and component.name in net.endpoints()
                and by_name[other].location is not None
            ]
            for site in free:
                if neighbours:
                    cost = sum(self._distance(site, n) for n in neighbours)
                else:
                    cost = site[0] + site[1]
                if best_cost is None or cost < best_cost:
                    best_site, best_cost = site, cost
            component.location = best_site
            occupied.add(best_site)
            # Large components occupy additional adjacent sites.
            extra_needed = component.clbs - 1
            for site in self._free_sites(occupied):
                if extra_needed <= 0:
                    break
                if self._distance(site, best_site) <= 2:
                    occupied.add(site)
                    extra_needed -= 1

        # Improvement pass: pairwise swaps that reduce total wirelength.
        improved = True
        passes = 0
        while improved and passes < 3:
            improved = False
            passes += 1
            for i in range(len(movable)):
                for j in range(i + 1, len(movable)):
                    a, b = movable[i], movable[j]
                    before = self._wirelength(by_name, nets)
                    a.location, b.location = b.location, a.location
                    after = self._wirelength(by_name, nets)
                    if after >= before:
                        a.location, b.location = b.location, a.location
                    else:
                        improved = True

        clbs_used = sum(c.clbs for c in movable)
        area = AreaReport(
            luts_used=sum(c.luts for c in movable),
            clbs_used=clbs_used,
            clbs_available=(self.fabric.rows - 1) * self.fabric.columns,
            mac_used=any(n.driver == "mac" or n.sink == "mac" for n in nets),
            registers_used=3,
        )
        return PlacementResult(
            components=by_name,
            nets=list(nets),
            total_wirelength=self._wirelength(by_name, nets),
            area=area,
        )


class FabricCapacityError(Exception):
    """Raised when a kernel does not fit the configurable logic fabric."""


def place_kernel(synthesis: SynthesisResult,
                 wcla: WclaParameters) -> PlacementResult:
    """Build the component netlist for ``synthesis`` and place it."""
    components, nets = build_component_netlist(synthesis, wcla.fabric)
    return GreedyPlacer(wcla.fabric).place(components, nets)
