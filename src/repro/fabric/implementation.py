"""Hardware implementation: clock estimation and per-kernel configuration.

This module combines the synthesis, placement, and routing results of one
kernel into a :class:`HardwareImplementation`: the achievable clock
frequency, the initiation interval, pipeline depth, area and a cycle model
for executing ``n`` iterations.  It also produces the configuration
"bitstream" (a symbolic record of LUT/switch programming) that the dynamic
partitioning module loads into the WCLA, standing in for the binary
bitstream the real tools would emit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..decompile.kernel import HardwareKernel
from ..synthesis.datapath import SynthesisResult
from .architecture import AreaReport, WclaParameters
from .place import PlacementResult
from .route import RoutingResult


@dataclass
class TimingReport:
    """Where the clock period of a kernel's implementation comes from."""

    period_ns: float
    fabric_floor_ns: float
    memory_path_ns: float
    mac_path_ns: float
    logic_recurrence_ns: float
    lut_levels: int
    average_net_hops: float

    @property
    def clock_mhz(self) -> float:
        return 1e3 / self.period_ns

    def limiting_factor(self) -> str:
        candidates = {
            "fabric floor": self.fabric_floor_ns,
            "memory access": self.memory_path_ns,
            "MAC": self.mac_path_ns,
            "logic recurrence": self.logic_recurrence_ns,
        }
        return max(candidates, key=candidates.get)


@dataclass
class ConfigurationBitstream:
    """Symbolic configuration of the WCLA for one kernel."""

    kernel_start_address: int
    lut_configuration_bits: int
    routing_configuration_bits: int
    dadg_descriptors: int
    uses_mac: bool

    @property
    def total_bits(self) -> int:
        return self.lut_configuration_bits + self.routing_configuration_bits \
            + 64 * self.dadg_descriptors + 32


@dataclass
class HardwareImplementation:
    """A critical region implemented on the WCLA."""

    kernel: HardwareKernel
    synthesis: SynthesisResult
    placement: PlacementResult
    routing: RoutingResult
    timing: TimingReport
    wcla: WclaParameters
    bitstream: ConfigurationBitstream

    # -------------------------------------------------------------- timing API
    @property
    def clock_mhz(self) -> float:
        return self.timing.clock_mhz

    @property
    def initiation_interval(self) -> int:
        return self.synthesis.initiation_interval

    @property
    def pipeline_fill_cycles(self) -> int:
        return self.wcla.invocation_pipeline_overhead + max(
            1, math.ceil(self.timing.lut_levels / 6)
        )

    @property
    def area(self) -> AreaReport:
        return self.placement.area

    def cycles_for_iterations(self, iterations: int) -> int:
        """WCLA clock cycles needed to execute ``iterations`` loop iterations."""
        if iterations <= 0:
            return 0
        return self.pipeline_fill_cycles + iterations * self.initiation_interval

    def seconds_for_iterations(self, iterations: int) -> float:
        return self.cycles_for_iterations(iterations) / (self.clock_mhz * 1e6)

    def summary(self) -> str:
        return (
            f"HW kernel @ {self.kernel.region.start_address:#06x}: "
            f"{self.clock_mhz:.0f} MHz (limited by {self.timing.limiting_factor()}), "
            f"II={self.initiation_interval}, "
            f"{self.synthesis.total_luts} LUTs in {self.area.clbs_used} CLBs, "
            f"MAC={'yes' if self.synthesis.mac_operations else 'no'}"
        )


def estimate_timing(synthesis: SynthesisResult, routing: RoutingResult,
                    wcla: WclaParameters) -> TimingReport:
    """Estimate the achievable clock for one synthesised, routed kernel."""
    fabric = wcla.fabric
    average_hops = routing.average_hops
    per_level_ns = fabric.lut_delay_ns + fabric.connection_delay_ns \
        + average_hops * fabric.hop_delay_ns / max(1, synthesis.critical_path_levels or 1)
    logic_path_ns = synthesis.critical_path_levels * per_level_ns
    # The loop body has `initiation_interval` cycles available per iteration,
    # so the combinational logic can be spread across that many stages; the
    # recurrence therefore constrains the period to path / II.
    logic_recurrence_ns = logic_path_ns / max(1, synthesis.initiation_interval)
    memory_path_ns = wcla.bram_access_ns + wcla.register_overhead_ns
    mac_path_ns = (wcla.mac_delay_ns + wcla.register_overhead_ns
                   if synthesis.mac_operations else 0.0)
    fabric_floor_ns = wcla.min_period_ns
    # Congestion that the router could not resolve slows the interconnect.
    congestion_penalty = 1.0 + 0.1 * routing.overflowed_segments
    period_ns = max(fabric_floor_ns, memory_path_ns, mac_path_ns,
                    logic_recurrence_ns) * congestion_penalty
    return TimingReport(
        period_ns=period_ns,
        fabric_floor_ns=fabric_floor_ns,
        memory_path_ns=memory_path_ns,
        mac_path_ns=mac_path_ns,
        logic_recurrence_ns=logic_recurrence_ns,
        lut_levels=synthesis.critical_path_levels,
        average_net_hops=average_hops,
    )


def build_bitstream(kernel: HardwareKernel, synthesis: SynthesisResult,
                    placement: PlacementResult, routing: RoutingResult,
                    wcla: WclaParameters) -> ConfigurationBitstream:
    """Derive the symbolic configuration record for the WCLA."""
    lut_bits = synthesis.total_luts * (1 << wcla.fabric.lut_inputs)
    routing_bits = routing.total_segments_used * 8
    return ConfigurationBitstream(
        kernel_start_address=kernel.region.start_address,
        lut_configuration_bits=lut_bits,
        routing_configuration_bits=routing_bits,
        dadg_descriptors=len(kernel.memory_accesses),
        uses_mac=synthesis.mac_operations > 0,
    )


def implement_kernel(kernel: HardwareKernel, synthesis: SynthesisResult,
                     placement: PlacementResult, routing: RoutingResult,
                     wcla: WclaParameters) -> HardwareImplementation:
    """Assemble the full hardware implementation record."""
    timing = estimate_timing(synthesis, routing, wcla)
    bitstream = build_bitstream(kernel, synthesis, placement, routing, wcla)
    return HardwareImplementation(
        kernel=kernel,
        synthesis=synthesis,
        placement=placement,
        routing=routing,
        timing=timing,
        wcla=wcla,
        bitstream=bitstream,
    )
