"""Cycle-counted functional execution of hardware kernels.

Two pieces live here:

* :class:`WclaExecutionEngine` — evaluates the decompiled kernel's dataflow
  graph against the data block RAM, iteration by iteration, exactly as the
  configured WCLA would, and converts the iteration count into WCLA clock
  cycles using the implementation's initiation interval and pipeline depth.
* :class:`WclaPeripheral` — the on-chip-peripheral-bus face of the WCLA
  (Figure 2): the patched application writes the kernel's live-in registers
  into the peripheral's register file, pokes the start register, reads the
  live-out registers back, and continues after the loop.  The peripheral
  accumulates the hardware cycles and invocation counts that the warp
  execution model and the energy model consume.

Because the engine executes the *decompiled* dataflow graph rather than the
original instructions, a matching checksum between the software-only run
and the warp-processed run is genuine evidence that decompilation,
synthesis and binary patching preserved the application's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..decompile.expr import compile_node
from ..microblaze.memory import BlockRAM
from .implementation import HardwareImplementation


class HardwareExecutionError(Exception):
    """Raised when a hardware kernel fails to terminate within its budget."""


@dataclass
class KernelInvocation:
    """Statistics of one hardware invocation of the kernel."""

    iterations: int
    hw_cycles: int


class WclaExecutionEngine:
    """Functionally executes one kernel's dataflow graph.

    The decompiled dataflow DAG is compiled once, at engine construction,
    into operator-specialized closures (:func:`repro.decompile.expr.compile_node`)
    — the datapath analogue of the threaded-code CPU engine.  Each
    iteration then evaluates the compiled register updates, stores and
    continue condition without any per-node type or operator dispatch.
    """

    def __init__(self, implementation: HardwareImplementation,
                 max_iterations_per_invocation: int = 5_000_000):
        self.implementation = implementation
        self.kernel = implementation.kernel
        self.body = implementation.kernel.body
        self.max_iterations = max_iterations_per_invocation
        # Compile the whole body against one shared memo cache so that
        # sub-terms shared between register updates, store addresses and
        # the continue condition compile to a single closure each.
        memo: Dict[int, Callable] = {}
        body = self.body
        self._register_updates = tuple(
            (register, compile_node(expr, memo))
            for register, expr in body.register_updates.items()
        )
        self._stores = tuple(
            (None if store.guard is None else compile_node(store.guard, memo),
             compile_node(store.address, memo),
             compile_node(store.value, memo),
             store.width)
            for store in body.stores
        )
        self._continue = compile_node(body.continue_condition, memo)

    def execute(
        self,
        live_in: Dict[int, int],
        memory_read: Callable[[int, int], int],
        memory_write: Callable[[int, int, int], None],
    ) -> Tuple[Dict[int, int], KernelInvocation]:
        """Run the kernel until its continue condition fails.

        ``live_in`` maps architectural register numbers to their values at
        loop entry; the returned dictionary holds the values of every
        register the loop writes, as of loop exit.
        """
        state = dict(live_in)
        iterations = 0
        register_updates = self._register_updates
        stores = self._stores
        continue_fn = self._continue
        max_iterations = self.max_iterations
        while True:
            iterations += 1
            if iterations > max_iterations:
                raise HardwareExecutionError(
                    f"kernel at {self.kernel.region.start_address:#x} exceeded "
                    f"{self.max_iterations} iterations"
                )
            loads_cache: Dict[int, int] = {}
            # Evaluate every register update and store against the state at
            # the start of the iteration, then commit (registered semantics).
            new_values = {
                register: fn(state, memory_read, loads_cache)
                for register, fn in register_updates
            }
            for guard_fn, address_fn, value_fn, width in stores:
                if guard_fn is not None:
                    if not guard_fn(state, memory_read, loads_cache):
                        continue
                address = address_fn(state, memory_read, loads_cache)
                value = value_fn(state, memory_read, loads_cache)
                memory_write(address, value, width)
            keep_running = continue_fn(state, memory_read, loads_cache)
            state.update(new_values)
            if not keep_running:
                break
        invocation = KernelInvocation(
            iterations=iterations,
            hw_cycles=self.implementation.cycles_for_iterations(iterations),
        )
        live_out = {register: state[register]
                    for register, _ in register_updates}
        return live_out, invocation


class WclaPeripheral:
    """The WCLA as a memory-mapped peripheral on the on-chip peripheral bus.

    Register map (word offsets within the peripheral window):

    ========  ====================================================
    offset    contents
    ========  ====================================================
    0x00-0x7C the 32-entry register file mirroring MicroBlaze
              architectural registers (live-in written by the
              invocation stub, live-out read back by it)
    0x80      control: writing 1 starts the configured kernel
    0x84      status: reads 1 once the kernel has completed
    0x88      total hardware cycles consumed so far (low 32 bits)
    0x8C      number of kernel invocations so far
    ========  ====================================================
    """

    CONTROL_OFFSET = 0x80
    STATUS_OFFSET = 0x84
    CYCLES_OFFSET = 0x88
    INVOCATIONS_OFFSET = 0x8C
    WINDOW_SIZE = 0x100

    def __init__(self, base_address: int, implementation: HardwareImplementation,
                 data_bram: BlockRAM, name: str = "wcla"):
        self.base_address = base_address
        self.window_size = self.WINDOW_SIZE
        self.name = name
        self.implementation = implementation
        self.data_bram = data_bram
        self.engine = WclaExecutionEngine(implementation)
        self.register_file = [0] * 32
        self.done = True
        self.invocations = 0
        self.total_hw_cycles = 0
        self.total_iterations = 0

    # ------------------------------------------------------------------- bus API
    def read(self, offset: int) -> int:
        if offset < 0x80:
            return self.register_file[(offset // 4) % 32]
        if offset == self.STATUS_OFFSET:
            return 1 if self.done else 0
        if offset == self.CYCLES_OFFSET:
            return self.total_hw_cycles & 0xFFFFFFFF
        if offset == self.INVOCATIONS_OFFSET:
            return self.invocations & 0xFFFFFFFF
        return 0

    def write(self, offset: int, value: int) -> None:
        if offset < 0x80:
            self.register_file[(offset // 4) % 32] = value & 0xFFFFFFFF
            return
        if offset == self.CONTROL_OFFSET and value & 1:
            self._run_kernel()

    def tick(self, cycles: int) -> None:  # pragma: no cover - time handled analytically
        return None

    # ------------------------------------------------------------ checkpointing
    def snapshot_state(self) -> Dict:
        """Device state for the system checkpoint (configuration — the
        implementation and its compiled dataflow closures — is rebuilt by
        whoever reconstructs the peripheral, not carried in the blob)."""
        return {
            "register_file": list(self.register_file),
            "done": self.done,
            "invocations": self.invocations,
            "total_hw_cycles": self.total_hw_cycles,
            "total_iterations": self.total_iterations,
        }

    def restore_state(self, state: Dict) -> None:
        self.register_file[:] = state["register_file"]
        self.done = state["done"]
        self.invocations = state["invocations"]
        self.total_hw_cycles = state["total_hw_cycles"]
        self.total_iterations = state["total_iterations"]

    # ------------------------------------------------------------------- engine
    def _memory_read(self, address: int, width: int) -> int:
        return self.data_bram.load_port_b(address, width)

    def _memory_write(self, address: int, value: int, width: int) -> None:
        self.data_bram.store_port_b(address, value, width)

    def _run_kernel(self) -> None:
        kernel = self.implementation.kernel
        live_in = {register: self.register_file[register]
                   for register in kernel.live_in_registers}
        live_out, invocation = self.engine.execute(
            live_in, self._memory_read, self._memory_write
        )
        for register, value in live_out.items():
            self.register_file[register] = value & 0xFFFFFFFF
        self.invocations += 1
        self.total_iterations += invocation.iterations
        self.total_hw_cycles += invocation.hw_cycles
        self.done = True

    # ------------------------------------------------------------------ results
    @property
    def total_hw_seconds(self) -> float:
        return self.total_hw_cycles / (self.implementation.clock_mhz * 1e6)
