"""Negotiated-congestion routing for the simple fabric ("Pathfinder-lite").

The companion DAC'04 paper describes the just-in-time FPGA router the warp
processor runs on chip: a lean variant of negotiated-congestion routing on
the simple fabric's channel graph.  This module implements the same idea at
the granularity the rest of the flow needs: every placed net is routed as
an L-shaped path over horizontal and vertical channel segments; channel
occupancy is tracked; congested segments acquire history costs and the
offending nets are ripped up and re-routed for a bounded number of
iterations.  The result is a per-net hop count (which feeds the clock
estimate) and a congestion report (which can force a slower clock when the
channels are over capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .architecture import FabricParameters, WclaParameters
from .place import Net, PlacementResult

Segment = Tuple[str, int, int]  # ("h" | "v", row-or-col index, position)


@dataclass
class RoutedNet:
    """One routed net with its channel segments."""

    net: Net
    segments: List[Segment] = field(default_factory=list)

    @property
    def hops(self) -> int:
        return len(self.segments)


@dataclass
class RoutingResult:
    """Outcome of routing a placed kernel."""

    routed_nets: List[RoutedNet]
    iterations: int
    max_channel_occupancy: int
    channel_capacity: int
    overflowed_segments: int
    total_segments_used: int

    @property
    def congested(self) -> bool:
        return self.overflowed_segments > 0

    @property
    def average_hops(self) -> float:
        if not self.routed_nets:
            return 0.0
        return sum(net.hops for net in self.routed_nets) / len(self.routed_nets)

    @property
    def max_hops(self) -> int:
        return max((net.hops for net in self.routed_nets), default=0)


class PathfinderLiteRouter:
    """Routes two-point nets over the fabric's channel grid."""

    def __init__(self, fabric: FabricParameters, max_iterations: int = 4):
        self.fabric = fabric
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------ paths
    def _l_path(self, source: Tuple[int, int], sink: Tuple[int, int],
                corner_first: bool) -> List[Segment]:
        """An L-shaped path: horizontal then vertical, or vice versa."""
        segments: List[Segment] = []
        (r0, c0), (r1, c1) = source, sink
        if corner_first:
            # Horizontal leg along the source row, then vertical along sink column.
            for column in range(min(c0, c1), max(c0, c1)):
                segments.append(("h", r0, column))
            for row in range(min(r0, r1), max(r0, r1)):
                segments.append(("v", c1, row))
        else:
            for row in range(min(r0, r1), max(r0, r1)):
                segments.append(("v", c0, row))
            for column in range(min(c0, c1), max(c0, c1)):
                segments.append(("h", r1, column))
        return segments

    def _path_cost(self, segments: Sequence[Segment], occupancy: Dict[Segment, int],
                   history: Dict[Segment, float]) -> float:
        capacity = self.fabric.channel_width
        cost = 0.0
        for segment in segments:
            load = occupancy.get(segment, 0)
            congestion_penalty = max(0, load + 1 - capacity) * 10.0
            cost += 1.0 + history.get(segment, 0.0) + congestion_penalty
        return cost

    # ------------------------------------------------------------------ route
    def route(self, placement: PlacementResult) -> RoutingResult:
        nets = placement.nets
        locations = {name: component.location
                     for name, component in placement.components.items()}
        occupancy: Dict[Segment, int] = {}
        history: Dict[Segment, float] = {}
        routed: Dict[int, RoutedNet] = {}
        iterations_done = 0

        for iteration in range(self.max_iterations):
            iterations_done = iteration + 1
            occupancy.clear()
            routed.clear()
            for index, net in enumerate(nets):
                source = locations[net.driver]
                sink = locations[net.sink]
                if source is None or sink is None or source == sink:
                    routed[index] = RoutedNet(net=net, segments=[])
                    continue
                option_a = self._l_path(source, sink, corner_first=True)
                option_b = self._l_path(source, sink, corner_first=False)
                cost_a = self._path_cost(option_a, occupancy, history)
                cost_b = self._path_cost(option_b, occupancy, history)
                chosen = option_a if cost_a <= cost_b else option_b
                for segment in chosen:
                    occupancy[segment] = occupancy.get(segment, 0) + 1
                routed[index] = RoutedNet(net=net, segments=chosen)
            overflowed = [segment for segment, load in occupancy.items()
                          if load > self.fabric.channel_width]
            if not overflowed:
                break
            for segment in overflowed:
                history[segment] = history.get(segment, 0.0) + 2.0

        overflowed_segments = sum(1 for load in occupancy.values()
                                  if load > self.fabric.channel_width)
        return RoutingResult(
            routed_nets=list(routed.values()),
            iterations=iterations_done,
            max_channel_occupancy=max(occupancy.values(), default=0),
            channel_capacity=self.fabric.channel_width,
            overflowed_segments=overflowed_segments,
            total_segments_used=len(occupancy),
        )


def route_kernel(placement: PlacementResult, wcla: WclaParameters) -> RoutingResult:
    """Route a placed kernel on the WCLA's fabric."""
    return PathfinderLiteRouter(wcla.fabric).route(placement)
