"""Warp configurable logic architecture (WCLA), placement, routing, timing.

Models Figure 3 of the paper: the data address generator with loop-control
hardware, the three interface registers, the 32-bit MAC, and the simple
configurable logic fabric together with the lean placement
(:mod:`~repro.fabric.place`) and negotiated-congestion routing
(:mod:`~repro.fabric.route`) algorithms that configure it, the clock/area
estimation (:mod:`~repro.fabric.implementation`), and the cycle-counted
functional execution engine and OPB peripheral
(:mod:`~repro.fabric.hw_exec`).
"""

from .architecture import AreaReport, DEFAULT_WCLA, FabricParameters, WclaParameters
from .hw_exec import (
    HardwareExecutionError,
    KernelInvocation,
    WclaExecutionEngine,
    WclaPeripheral,
)
from .implementation import (
    ConfigurationBitstream,
    HardwareImplementation,
    TimingReport,
    build_bitstream,
    estimate_timing,
    implement_kernel,
)
from .place import (
    FabricCapacityError,
    GreedyPlacer,
    Net,
    PlacedComponent,
    PlacementResult,
    build_component_netlist,
    place_kernel,
)
from .route import PathfinderLiteRouter, RoutedNet, RoutingResult, route_kernel

__all__ = [
    "AreaReport",
    "DEFAULT_WCLA",
    "FabricParameters",
    "WclaParameters",
    "HardwareExecutionError",
    "KernelInvocation",
    "WclaExecutionEngine",
    "WclaPeripheral",
    "ConfigurationBitstream",
    "HardwareImplementation",
    "TimingReport",
    "build_bitstream",
    "estimate_timing",
    "implement_kernel",
    "FabricCapacityError",
    "GreedyPlacer",
    "Net",
    "PlacedComponent",
    "PlacementResult",
    "build_component_netlist",
    "place_kernel",
    "PathfinderLiteRouter",
    "RoutedNet",
    "RoutingResult",
    "route_kernel",
]
