"""The MicroBlaze-based warp processor (Figure 2 of the paper).

A warp processor is a normal MicroBlaze system plus the on-chip profiler,
the dynamic partitioning module and the warp configurable logic
architecture.  Execution proceeds exactly as the paper describes:

1. the application runs on the MicroBlaze alone while the profiler watches
   backward branches;
2. the DPM picks the single most critical region, decompiles it from the
   binary, synthesises/places/routes it onto the WCLA, and patches the
   binary;
3. the application keeps running — now the patched binary ships the kernel
   to hardware each time it reaches the loop.

:class:`WarpProcessor` performs those phases and reports both functional
results (checksums must match the software-only run) and the performance
breakdown (MicroBlaze cycles, WCLA cycles at the WCLA's own clock,
per-invocation communication overhead), from which the experiment harness
derives Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..fabric.architecture import DEFAULT_WCLA, WclaParameters
from ..fabric.hw_exec import WclaPeripheral
from ..isa.program import Program
from ..microblaze.config import MicroBlazeConfig, PAPER_CONFIG
from ..microblaze.opb import OPB_BASE_ADDRESS
from ..microblaze.system import ExecutionResult, MicroBlazeSystem
from ..partition.dpm import DynamicPartitioningModule, PartitioningOutcome
from ..profiler.branch_cache import BranchFrequencyCache
from ..profiler.profiler import OnChipProfiler


@dataclass
class WarpRunResult:
    """Outcome of running one program on a warp processor."""

    program_name: str
    config: MicroBlazeConfig
    software_result: ExecutionResult
    partitioning: PartitioningOutcome
    warp_mb_result: Optional[ExecutionResult] = None
    hw_cycles: int = 0
    hw_clock_mhz: float = 0.0
    hw_invocations: int = 0
    hw_iterations: int = 0

    # ------------------------------------------------------------------- times
    @property
    def software_seconds(self) -> float:
        return self.software_result.time_seconds

    @property
    def hw_seconds(self) -> float:
        if self.hw_clock_mhz <= 0:
            return 0.0
        return self.hw_cycles / (self.hw_clock_mhz * 1e6)

    @property
    def microblaze_seconds(self) -> float:
        """Time the MicroBlaze itself is busy in the warp-processed run."""
        if self.warp_mb_result is None:
            return self.software_seconds
        return self.warp_mb_result.time_seconds

    @property
    def warp_seconds(self) -> float:
        """Total warp-processed execution time (MicroBlaze + WCLA)."""
        if not self.partitioning.success or self.warp_mb_result is None:
            return self.software_seconds
        return self.microblaze_seconds + self.hw_seconds

    @property
    def speedup(self) -> float:
        warp = self.warp_seconds
        return self.software_seconds / warp if warp > 0 else 1.0

    @property
    def kernel_time_fraction(self) -> float:
        """Fraction of the software run eliminated by hardware execution."""
        if not self.partitioning.success or self.warp_mb_result is None:
            return 0.0
        removed = self.software_result.cycles - self.warp_mb_result.cycles
        return max(0.0, removed / self.software_result.cycles)

    @property
    def checksums_match(self) -> bool:
        if self.warp_mb_result is None:
            return True
        return self.software_result.return_value == self.warp_mb_result.return_value

    def summary(self) -> str:
        lines = [
            f"{self.program_name}: software {self.software_seconds * 1e3:.3f} ms, "
            f"warp {self.warp_seconds * 1e3:.3f} ms, speedup {self.speedup:.2f}x",
        ]
        if self.partitioning.success:
            lines.append(
                f"  kernel on WCLA @ {self.hw_clock_mhz:.0f} MHz: "
                f"{self.hw_invocations} invocations, {self.hw_iterations} iterations, "
                f"{self.hw_cycles} HW cycles"
            )
            lines.append(f"  checksums match: {self.checksums_match}")
        else:
            lines.append(f"  ran in software only ({self.partitioning.reason})")
        return "\n".join(lines)


class WarpProcessor:
    """Single-processor MicroBlaze-based warp processing system."""

    def __init__(
        self,
        config: MicroBlazeConfig = PAPER_CONFIG,
        wcla: WclaParameters = DEFAULT_WCLA,
        wcla_base_address: int = OPB_BASE_ADDRESS,
        profiler_cache_entries: int = 16,
        engine: Optional[str] = None,
        artifact_cache=None,
        stage_names=None,
        dpm: Optional[DynamicPartitioningModule] = None,
    ):
        self.config = config
        self.profiler_cache_entries = profiler_cache_entries
        self.engine = engine
        if dpm is not None:
            if wcla is not DEFAULT_WCLA or wcla_base_address != OPB_BASE_ADDRESS \
                    or artifact_cache is not None or stage_names is not None:
                raise ValueError(
                    "pass either a prebuilt dpm or the wcla/"
                    "wcla_base_address/artifact_cache/stage_names it would "
                    "be built from, not both")
            # A shared DPM (e.g. the one a MultiProcessorWarpSystem serves
            # all its cores with): the processor adopts its flow, WCLA and
            # cache wholesale.
            self.dpm = dpm
            self.wcla = dpm.wcla
            self.wcla_base_address = dpm.wcla_base_address
        else:
            self.wcla = wcla
            self.wcla_base_address = wcla_base_address
            # The optional content-addressed CAD cache (see repro.cad) lets
            # repeated partitionings of the same kernel skip
            # synthesis/place/route stage by stage; the warp service's
            # workers pass their per-process instance here.  ``stage_names``
            # swaps registered flow passes (e.g. "route-greedy").
            self.dpm = DynamicPartitioningModule(wcla=wcla,
                                                 wcla_base_address=wcla_base_address,
                                                 artifact_cache=artifact_cache,
                                                 stage_names=stage_names)

    # ----------------------------------------------------------------- phases
    def profile(self, program: Program,
                max_instructions: int = 50_000_000) -> tuple[ExecutionResult, OnChipProfiler]:
        """Phase 1: run the program on the MicroBlaze alone while profiling.

        The profiler subscribes through the branch-hook protocol, so this
        run stays on the threaded-code engine: branch handlers feed the
        profiler scalars directly and no trace events are allocated.
        """
        profiler = OnChipProfiler(
            BranchFrequencyCache(num_entries=self.profiler_cache_entries)
        )
        system = MicroBlazeSystem(config=self.config, engine=self.engine)
        result = system.run(program, listeners=[profiler],
                            max_instructions=max_instructions)
        return result, profiler

    def run(self, program: Program,
            max_instructions: int = 50_000_000) -> WarpRunResult:
        """Run the full warp-processing flow on ``program``."""
        software_result, profiler = self.profile(program, max_instructions)
        region = profiler.most_critical_region()

        patched = program.copy()
        outcome = self.dpm.partition(patched, region)
        result = WarpRunResult(
            program_name=program.name,
            config=self.config,
            software_result=software_result,
            partitioning=outcome,
        )
        if not outcome.success:
            return result

        system = MicroBlazeSystem(config=self.config, engine=self.engine)
        system.load(patched)
        peripheral = WclaPeripheral(self.wcla_base_address, outcome.implementation,
                                    system.data_bram)
        system.attach_peripheral(peripheral)
        warp_mb_result = system.run(max_instructions=max_instructions)

        result.warp_mb_result = warp_mb_result
        result.hw_cycles = peripheral.total_hw_cycles
        result.hw_clock_mhz = outcome.implementation.clock_mhz
        result.hw_invocations = peripheral.invocations
        result.hw_iterations = peripheral.total_iterations
        return result
