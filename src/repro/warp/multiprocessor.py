"""Multi-processor warp processing (Figure 4 of the paper).

The paper argues that a multi-MicroBlaze warp system should not replicate
the expensive parts: each core gets its own lightweight profiler, but a
*single* dynamic partitioning module serves all cores "in a round robin or
similar fashion", and the WCLA is extended with per-processor DADGs,
registers and MACs while the configurable logic itself is shared.

:class:`MultiProcessorWarpSystem` models exactly that arrangement on top of
the single-core flow: each core runs its own application through the full
warp pipeline; the shared DPM partitions the cores one after another (so a
core keeps running in software until the DPM gets to it); and the shared
fabric's capacity is checked against the sum of the per-kernel CLB usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..fabric.architecture import DEFAULT_WCLA, WclaParameters
from ..isa.program import Program
from ..microblaze.config import MicroBlazeConfig, PAPER_CONFIG
from ..partition.dpm import DynamicPartitioningModule
from .processor import WarpProcessor, WarpRunResult


@dataclass
class CorePartitioningSchedule:
    """When the shared DPM gets around to each core (round-robin order)."""

    core_index: int
    program_name: str
    dpm_start_seconds: float
    dpm_finish_seconds: float

    @property
    def dpm_service_seconds(self) -> float:
        return self.dpm_finish_seconds - self.dpm_start_seconds


@dataclass
class MultiProcessorResult:
    """Results of a multi-core warp run."""

    per_core: List[WarpRunResult]
    schedule: List[CorePartitioningSchedule]
    total_clbs_used: int
    fabric_clbs_available: int
    num_dpm_modules: int = 1

    @property
    def num_cores(self) -> int:
        return len(self.per_core)

    @property
    def fabric_fits_all_kernels(self) -> bool:
        return self.total_clbs_used <= self.fabric_clbs_available

    @property
    def average_speedup(self) -> float:
        if not self.per_core:
            return 1.0
        return sum(result.speedup for result in self.per_core) / len(self.per_core)

    @property
    def geometric_mean_speedup(self) -> float:
        if not self.per_core:
            return 1.0
        product = 1.0
        for result in self.per_core:
            product *= max(result.speedup, 1e-12)
        return product ** (1.0 / len(self.per_core))

    @property
    def total_dpm_service_seconds(self) -> float:
        return sum(item.dpm_service_seconds for item in self.schedule)

    @property
    def last_core_served_seconds(self) -> float:
        """How long the last core waits before its kernel moves to hardware."""
        if not self.schedule:
            return 0.0
        return max(item.dpm_finish_seconds for item in self.schedule)

    def software_phase_seconds(self, core_index: int) -> float:
        """How long core ``core_index`` keeps software-only timing.

        A core executes its original binary until the shared DPM has
        finished partitioning *its* kernel (``dpm_finish_seconds`` of its
        schedule entry); only then does the patched binary start shipping
        the kernel to hardware.  A core whose region was never partitioned
        runs in software for its whole execution.
        """
        for item in self.schedule:
            if item.core_index == core_index:
                return item.dpm_finish_seconds
        return self.per_core[core_index].software_seconds

    def summary(self) -> str:
        lines = [
            f"{self.num_cores}-core warp system "
            f"({self.num_dpm_modules} DPM, shared WCLA fabric)",
            f"  average speedup   : {self.average_speedup:.2f}x",
            f"  fabric usage      : {self.total_clbs_used}/{self.fabric_clbs_available} CLBs "
            f"({'fits' if self.fabric_fits_all_kernels else 'OVERSUBSCRIBED'})",
            f"  DPM busy for      : {self.total_dpm_service_seconds * 1e3:.1f} ms "
            f"(last core served after {self.last_core_served_seconds * 1e3:.1f} ms)",
        ]
        return "\n".join(lines)


class MultiProcessorWarpSystem:
    """Several MicroBlaze warp cores sharing one DPM and one fabric."""

    def __init__(self, num_cores: int,
                 config: MicroBlazeConfig = PAPER_CONFIG,
                 wcla: WclaParameters = DEFAULT_WCLA,
                 num_dpm_modules: int = 1,
                 engine: Optional[str] = None,
                 artifact_cache=None,
                 stage_names=None):
        if num_cores <= 0:
            raise ValueError("a warp system needs at least one core")
        if num_dpm_modules <= 0:
            raise ValueError("at least one DPM (or a software DPM task) is required")
        self.num_cores = num_cores
        self.config = config
        self.wcla = wcla
        self.num_dpm_modules = num_dpm_modules
        self.engine = engine
        #: Shared content-addressed CAD cache: the paper's single DPM
        #: serves every core, so cores running the same application reuse
        #: one set of CAD artifacts instead of re-synthesizing per core.
        self.artifact_cache = artifact_cache
        #: One shared DPM — and therefore one shared CAD flow (stages,
        #: tracing hooks, cache) — serving every core, exactly as the
        #: paper's single partitioning module does.
        self.dpm = DynamicPartitioningModule(wcla=wcla,
                                             artifact_cache=artifact_cache,
                                             stage_names=stage_names)

    def run(self, programs: Sequence[Program]) -> MultiProcessorResult:
        """Run one program per core through the warp flow.

        Programs are assigned to cores in order; if fewer programs than
        cores are supplied the extra cores stay idle.
        """
        if len(programs) > self.num_cores:
            raise ValueError("more programs than cores")
        per_core: List[WarpRunResult] = []
        schedule: List[CorePartitioningSchedule] = []
        total_clbs = 0
        dpm_free_at = [0.0] * self.num_dpm_modules

        for index, program in enumerate(programs):
            processor = WarpProcessor(config=self.config, engine=self.engine,
                                      dpm=self.dpm)
            result = processor.run(program)
            per_core.append(result)
            if result.partitioning.success:
                total_clbs += result.partitioning.placement.area.clbs_used
                # Round-robin service by the shared DPM(s): the next free DPM
                # takes this core's kernel.
                dpm_index = min(range(self.num_dpm_modules), key=lambda i: dpm_free_at[i])
                start = dpm_free_at[dpm_index]
                finish = start + result.partitioning.dpm_seconds
                dpm_free_at[dpm_index] = finish
                schedule.append(CorePartitioningSchedule(
                    core_index=index,
                    program_name=program.name,
                    dpm_start_seconds=start,
                    dpm_finish_seconds=finish,
                ))

        fabric_clbs = (self.wcla.fabric.rows - 1) * self.wcla.fabric.columns
        return MultiProcessorResult(
            per_core=per_core,
            schedule=schedule,
            total_clbs_used=total_clbs,
            fabric_clbs_available=fabric_clbs,
            num_dpm_modules=self.num_dpm_modules,
        )
