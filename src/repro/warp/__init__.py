"""Warp processors: single-core (Figure 2) and multi-core (Figure 4)."""

from .multiprocessor import (
    CorePartitioningSchedule,
    MultiProcessorResult,
    MultiProcessorWarpSystem,
)
from .processor import WarpProcessor, WarpRunResult

__all__ = [
    "CorePartitioningSchedule",
    "MultiProcessorResult",
    "MultiProcessorWarpSystem",
    "WarpProcessor",
    "WarpRunResult",
]
