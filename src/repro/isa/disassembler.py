"""Disassembler for MicroBlaze-like binaries.

The disassembler is primarily a debugging and reporting aid: the examples
print disassembled kernels next to the hardware the dynamic partitioning
module generated for them, and the tests use it to check that the binary
patching performed by the DPM leaves the rest of the application intact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .encoding import decode
from .instructions import Instruction
from .program import Program


def disassemble_word(word: int, address: Optional[int] = None) -> Instruction:
    """Decode a single machine word (thin wrapper over :func:`decode`)."""
    return decode(word, address=address)


def disassemble(words: Iterable[int], base_address: int = 0) -> List[Instruction]:
    """Decode an instruction-memory image into a list of instructions."""
    return [decode(word, address=base_address + 4 * i) for i, word in enumerate(words)]


def disassemble_bram(bram, start: int = 0,
                     count: Optional[int] = None) -> List[Instruction]:
    """Disassemble instruction-BRAM contents in place.

    Reads the word image through :meth:`BlockRAM.words
    <repro.microblaze.memory.BlockRAM.words>` — a single bulk unpack of the
    backing storage, the same path the dynamic partitioning module uses to
    read the executing binary — and decodes it with addresses starting at
    ``start``.
    """
    return disassemble(bram.words(start, count), base_address=start)


def format_instruction(instr: Instruction, labels: Optional[Dict[int, str]] = None) -> str:
    """Render one instruction as ``address:  mnemonic operands``.

    When ``labels`` maps addresses to names, PC-relative branch targets are
    annotated with the label they point at, which makes kernel listings in
    the examples much easier to follow.
    """
    address = instr.address if instr.address is not None else 0
    text = str(instr)
    if labels and instr.is_branch and instr.spec.fmt.value == "B":
        target = address + instr.imm
        if instr.mnemonic in ("brai", "bralid"):
            target = instr.imm
        name = labels.get(target)
        if name:
            text = f"{text}\t<{name}>"
    return f"{address:#06x}:  {text}"


def listing(program: Program) -> str:
    """Produce a full disassembly listing of ``program``'s text section."""
    labels = {sym.address: name for name, sym in program.symbols.items()
              if sym.section == "text"}
    lines: List[str] = []
    for index, word in enumerate(program.text):
        address = 4 * index
        if address in labels:
            lines.append(f"{labels[address]}:")
        instr = decode(word, address=address)
        lines.append("    " + format_instruction(instr, labels))
    return "\n".join(lines)
