"""Instruction set definition for the MicroBlaze-like soft processor core.

This module defines the subset of the Xilinx MicroBlaze instruction set used
throughout the reproduction: the instruction formats, the per-mnemonic
operation specifications (:class:`OpSpec`), and the :class:`Instruction`
container produced by the assembler, the compiler back end, and the binary
decoder.

The subset covers everything the Powerstone / EEMBC-style benchmark kernels
need and everything the paper's Section 2 configurability study exercises:

* integer arithmetic (``add``/``rsub`` families, with and without carry-keep),
* the optional hardware multiplier (``mul``, ``muli``) and divider (``idiv``),
* logical operations, single-bit shifts and the optional barrel shifter,
* compare instructions feeding conditional branches,
* conditional and unconditional branches with and without delay slots,
  subroutine call (``brlid``) and return (``rtsd``),
* byte/half/word loads and stores on the local memory bus,
* the ``imm`` prefix instruction that extends 16-bit immediates to 32 bits.

Encodings follow the published MicroBlaze major-opcode assignments so that
the binary-level decompilation performed by the dynamic partitioning module
operates on realistic machine words (see :mod:`repro.isa.encoding`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .registers import register_name


class InstrFormat(enum.Enum):
    """MicroBlaze instruction formats.

    ``TYPE_A`` instructions operate on three registers (``rd``, ``ra``,
    ``rb``) and carry an 11-bit function field in the low bits of the word.
    ``TYPE_B`` instructions replace ``rb`` with a 16-bit signed immediate.
    """

    TYPE_A = "A"
    TYPE_B = "B"


class InstrClass(enum.Enum):
    """Coarse behavioural classification used by the timing and power models.

    The classes mirror the groupings the paper discusses when describing the
    MicroBlaze three-stage pipeline: single-cycle ALU operations, the
    three-cycle multiplier, the iterative divider, one-to-three cycle
    branches, and the local-memory-bus loads and stores.
    """

    ALU = "alu"
    LOGICAL = "logical"
    SHIFT = "shift"
    BARREL_SHIFT = "barrel_shift"
    MULTIPLY = "multiply"
    DIVIDE = "divide"
    COMPARE = "compare"
    SEXT = "sext"
    LOAD = "load"
    STORE = "store"
    BRANCH_COND = "branch_cond"
    BRANCH_UNCOND = "branch_uncond"
    CALL = "call"
    RETURN = "return"
    IMM_PREFIX = "imm_prefix"


class HwUnit(enum.Enum):
    """Optional MicroBlaze hardware units selected by the processor config."""

    MULTIPLIER = "multiplier"
    DIVIDER = "divider"
    BARREL_SHIFTER = "barrel_shifter"


class Condition(enum.IntEnum):
    """Branch condition codes (encoded in the ``rd`` field of branches)."""

    EQ = 0
    NE = 1
    LT = 2
    LE = 3
    GT = 4
    GE = 5


#: Maps a conditional-branch mnemonic stem to its condition code.
CONDITION_BY_STEM: Dict[str, Condition] = {
    "beq": Condition.EQ,
    "bne": Condition.NE,
    "blt": Condition.LT,
    "ble": Condition.LE,
    "bgt": Condition.GT,
    "bge": Condition.GE,
}


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic.

    Attributes
    ----------
    mnemonic:
        Assembly mnemonic, lower case.
    fmt:
        Instruction format (:class:`InstrFormat`).
    klass:
        Behavioural class used by the timing model.
    opcode:
        6-bit major opcode.
    func:
        Value of the secondary function field for TYPE_A instructions that
        share a major opcode (0 when unused).
    operands:
        Operand signature as a tuple of field names in assembly order,
        e.g. ``("rd", "ra", "rb")`` for ``add`` or ``("ra", "imm")`` for
        ``beqi``.  Stores list ``rd`` first because MicroBlaze stores read
        the value to be stored from the ``rd`` field.
    requires:
        Optional hardware unit that must be present in the processor
        configuration for the instruction to be legal.
    delay_slot:
        True when the instruction executes the following instruction in a
        branch delay slot.
    reads / writes:
        Register fields read and written, used by dataflow analysis during
        decompilation.
    condition:
        For conditional branches, the condition tested against ``ra``.
    """

    mnemonic: str
    fmt: InstrFormat
    klass: InstrClass
    opcode: int
    func: int = 0
    operands: Tuple[str, ...] = ()
    requires: Optional[HwUnit] = None
    delay_slot: bool = False
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    condition: Optional[Condition] = None

    @property
    def is_branch(self) -> bool:
        return self.klass in (
            InstrClass.BRANCH_COND,
            InstrClass.BRANCH_UNCOND,
            InstrClass.CALL,
            InstrClass.RETURN,
        )

    @property
    def is_memory(self) -> bool:
        return self.klass in (InstrClass.LOAD, InstrClass.STORE)


def _spec(
    mnemonic: str,
    fmt: InstrFormat,
    klass: InstrClass,
    opcode: int,
    *,
    func: int = 0,
    operands: Sequence[str],
    requires: Optional[HwUnit] = None,
    delay_slot: bool = False,
    reads: Sequence[str] = (),
    writes: Sequence[str] = (),
    condition: Optional[Condition] = None,
) -> OpSpec:
    return OpSpec(
        mnemonic=mnemonic,
        fmt=fmt,
        klass=klass,
        opcode=opcode,
        func=func,
        operands=tuple(operands),
        requires=requires,
        delay_slot=delay_slot,
        reads=tuple(reads),
        writes=tuple(writes),
        condition=condition,
    )


def _build_opcode_table() -> Dict[str, OpSpec]:
    """Construct the full mnemonic -> :class:`OpSpec` table."""
    table: Dict[str, OpSpec] = {}

    def add(spec: OpSpec) -> None:
        if spec.mnemonic in table:
            raise ValueError(f"duplicate mnemonic {spec.mnemonic}")
        table[spec.mnemonic] = spec

    A, B = InstrFormat.TYPE_A, InstrFormat.TYPE_B
    RRR = ("rd", "ra", "rb")
    RRI = ("rd", "ra", "imm")

    # ----- integer add / subtract -------------------------------------------------
    add(_spec("add", A, InstrClass.ALU, 0x00, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("rsub", A, InstrClass.ALU, 0x01, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("addk", A, InstrClass.ALU, 0x04, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("rsubk", A, InstrClass.ALU, 0x05, func=0x000, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("cmp", A, InstrClass.COMPARE, 0x05, func=0x001, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("cmpu", A, InstrClass.COMPARE, 0x05, func=0x003, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("addi", B, InstrClass.ALU, 0x08, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("rsubi", B, InstrClass.ALU, 0x09, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("addik", B, InstrClass.ALU, 0x0C, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("rsubik", B, InstrClass.ALU, 0x0D, operands=RRI, reads=("ra",), writes=("rd",)))

    # ----- multiply / divide (optional hardware units) ---------------------------
    add(_spec("mul", A, InstrClass.MULTIPLY, 0x10, operands=RRR, requires=HwUnit.MULTIPLIER,
              reads=("ra", "rb"), writes=("rd",)))
    add(_spec("muli", B, InstrClass.MULTIPLY, 0x18, operands=RRI, requires=HwUnit.MULTIPLIER,
              reads=("ra",), writes=("rd",)))
    add(_spec("idiv", A, InstrClass.DIVIDE, 0x12, func=0x000, operands=RRR, requires=HwUnit.DIVIDER,
              reads=("ra", "rb"), writes=("rd",)))
    add(_spec("idivu", A, InstrClass.DIVIDE, 0x12, func=0x002, operands=RRR, requires=HwUnit.DIVIDER,
              reads=("ra", "rb"), writes=("rd",)))

    # ----- barrel shifter (optional) ----------------------------------------------
    add(_spec("bsrl", A, InstrClass.BARREL_SHIFT, 0x11, func=0x000, operands=RRR,
              requires=HwUnit.BARREL_SHIFTER, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("bsra", A, InstrClass.BARREL_SHIFT, 0x11, func=0x200, operands=RRR,
              requires=HwUnit.BARREL_SHIFTER, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("bsll", A, InstrClass.BARREL_SHIFT, 0x11, func=0x400, operands=RRR,
              requires=HwUnit.BARREL_SHIFTER, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("bsrli", B, InstrClass.BARREL_SHIFT, 0x19, func=0x000, operands=RRI,
              requires=HwUnit.BARREL_SHIFTER, reads=("ra",), writes=("rd",)))
    add(_spec("bsrai", B, InstrClass.BARREL_SHIFT, 0x19, func=0x200, operands=RRI,
              requires=HwUnit.BARREL_SHIFTER, reads=("ra",), writes=("rd",)))
    add(_spec("bslli", B, InstrClass.BARREL_SHIFT, 0x19, func=0x400, operands=RRI,
              requires=HwUnit.BARREL_SHIFTER, reads=("ra",), writes=("rd",)))

    # ----- logical ----------------------------------------------------------------
    add(_spec("or", A, InstrClass.LOGICAL, 0x20, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("and", A, InstrClass.LOGICAL, 0x21, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("xor", A, InstrClass.LOGICAL, 0x22, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("andn", A, InstrClass.LOGICAL, 0x23, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("ori", B, InstrClass.LOGICAL, 0x28, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("andi", B, InstrClass.LOGICAL, 0x29, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("xori", B, InstrClass.LOGICAL, 0x2A, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("andni", B, InstrClass.LOGICAL, 0x2B, operands=RRI, reads=("ra",), writes=("rd",)))

    # ----- single-bit shifts and sign extension (opcode 0x24 group) ---------------
    add(_spec("sra", A, InstrClass.SHIFT, 0x24, func=0x001, operands=("rd", "ra"),
              reads=("ra",), writes=("rd",)))
    add(_spec("src", A, InstrClass.SHIFT, 0x24, func=0x021, operands=("rd", "ra"),
              reads=("ra",), writes=("rd",)))
    add(_spec("srl", A, InstrClass.SHIFT, 0x24, func=0x041, operands=("rd", "ra"),
              reads=("ra",), writes=("rd",)))
    add(_spec("sext8", A, InstrClass.SEXT, 0x24, func=0x060, operands=("rd", "ra"),
              reads=("ra",), writes=("rd",)))
    add(_spec("sext16", A, InstrClass.SEXT, 0x24, func=0x061, operands=("rd", "ra"),
              reads=("ra",), writes=("rd",)))

    # ----- imm prefix ---------------------------------------------------------------
    add(_spec("imm", B, InstrClass.IMM_PREFIX, 0x2C, operands=("imm",)))

    # ----- unconditional branches ---------------------------------------------------
    # Register forms share opcode 0x26; the ra field encodes D (delay), A
    # (absolute) and L (link) bits exactly as the real MicroBlaze does.
    add(_spec("br", A, InstrClass.BRANCH_UNCOND, 0x26, func=0x00, operands=("rb",), reads=("rb",)))
    add(_spec("brd", A, InstrClass.BRANCH_UNCOND, 0x26, func=0x10, operands=("rb",), reads=("rb",),
              delay_slot=True))
    add(_spec("brld", A, InstrClass.CALL, 0x26, func=0x14, operands=("rd", "rb"),
              reads=("rb",), writes=("rd",), delay_slot=True))
    add(_spec("bra", A, InstrClass.BRANCH_UNCOND, 0x26, func=0x08, operands=("rb",), reads=("rb",)))
    add(_spec("brad", A, InstrClass.BRANCH_UNCOND, 0x26, func=0x18, operands=("rb",), reads=("rb",),
              delay_slot=True))
    add(_spec("brald", A, InstrClass.CALL, 0x26, func=0x1C, operands=("rd", "rb"),
              reads=("rb",), writes=("rd",), delay_slot=True))
    add(_spec("bri", B, InstrClass.BRANCH_UNCOND, 0x2E, func=0x00, operands=("imm",)))
    add(_spec("brid", B, InstrClass.BRANCH_UNCOND, 0x2E, func=0x10, operands=("imm",), delay_slot=True))
    add(_spec("brlid", B, InstrClass.CALL, 0x2E, func=0x14, operands=("rd", "imm"),
              writes=("rd",), delay_slot=True))
    add(_spec("brai", B, InstrClass.BRANCH_UNCOND, 0x2E, func=0x08, operands=("imm",)))
    add(_spec("bralid", B, InstrClass.CALL, 0x2E, func=0x1C, operands=("rd", "imm"),
              writes=("rd",), delay_slot=True))

    # ----- subroutine return --------------------------------------------------------
    add(_spec("rtsd", B, InstrClass.RETURN, 0x2D, operands=("ra", "imm"), reads=("ra",),
              delay_slot=True))

    # ----- conditional branches ------------------------------------------------------
    for stem, cond in CONDITION_BY_STEM.items():
        add(_spec(stem, A, InstrClass.BRANCH_COND, 0x27, func=int(cond), operands=("ra", "rb"),
                  reads=("ra", "rb"), condition=cond))
        add(_spec(stem + "d", A, InstrClass.BRANCH_COND, 0x27, func=0x10 | int(cond),
                  operands=("ra", "rb"), reads=("ra", "rb"), condition=cond, delay_slot=True))
        add(_spec(stem + "i", B, InstrClass.BRANCH_COND, 0x2F, func=int(cond), operands=("ra", "imm"),
                  reads=("ra",), condition=cond))
        add(_spec(stem + "id", B, InstrClass.BRANCH_COND, 0x2F, func=0x10 | int(cond),
                  operands=("ra", "imm"), reads=("ra",), condition=cond, delay_slot=True))

    # ----- loads and stores ----------------------------------------------------------
    add(_spec("lbu", A, InstrClass.LOAD, 0x30, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("lhu", A, InstrClass.LOAD, 0x31, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("lw", A, InstrClass.LOAD, 0x32, operands=RRR, reads=("ra", "rb"), writes=("rd",)))
    add(_spec("sb", A, InstrClass.STORE, 0x34, operands=RRR, reads=("rd", "ra", "rb")))
    add(_spec("sh", A, InstrClass.STORE, 0x35, operands=RRR, reads=("rd", "ra", "rb")))
    add(_spec("sw", A, InstrClass.STORE, 0x36, operands=RRR, reads=("rd", "ra", "rb")))
    add(_spec("lbui", B, InstrClass.LOAD, 0x38, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("lhui", B, InstrClass.LOAD, 0x39, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("lwi", B, InstrClass.LOAD, 0x3A, operands=RRI, reads=("ra",), writes=("rd",)))
    add(_spec("sbi", B, InstrClass.STORE, 0x3C, operands=RRI, reads=("rd", "ra")))
    add(_spec("shi", B, InstrClass.STORE, 0x3D, operands=RRI, reads=("rd", "ra")))
    add(_spec("swi", B, InstrClass.STORE, 0x3E, operands=RRI, reads=("rd", "ra")))

    return table


#: Mnemonic -> :class:`OpSpec` lookup table for the whole instruction set.
OPCODES: Dict[str, OpSpec] = _build_opcode_table()


@dataclass
class Instruction:
    """One decoded (or not-yet-encoded) machine instruction.

    The same class is used by the assembler, the compiler back end, the
    processor simulator and the binary decompiler.  Fields that an
    instruction does not use are left at zero; ``target`` optionally holds a
    symbolic label that the assembler resolves into ``imm`` during the
    second pass.
    """

    mnemonic: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    target: Optional[str] = None
    address: Optional[int] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.mnemonic not in OPCODES:
            raise ValueError(f"unknown mnemonic: {self.mnemonic!r}")

    # -- static metadata ---------------------------------------------------------
    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.mnemonic]

    @property
    def klass(self) -> InstrClass:
        return self.spec.klass

    @property
    def is_branch(self) -> bool:
        return self.spec.is_branch

    @property
    def is_conditional_branch(self) -> bool:
        return self.klass is InstrClass.BRANCH_COND

    @property
    def is_memory(self) -> bool:
        return self.spec.is_memory

    @property
    def has_delay_slot(self) -> bool:
        return self.spec.delay_slot

    @property
    def requires(self) -> Optional[HwUnit]:
        return self.spec.requires

    # -- dataflow helpers ----------------------------------------------------------
    def registers_read(self) -> Tuple[int, ...]:
        """Registers whose values this instruction consumes."""
        mapping = {"rd": self.rd, "ra": self.ra, "rb": self.rb}
        return tuple(mapping[f] for f in self.spec.reads)

    def registers_written(self) -> Tuple[int, ...]:
        """Registers this instruction defines (``r0`` writes are discarded)."""
        mapping = {"rd": self.rd, "ra": self.ra, "rb": self.rb}
        return tuple(mapping[f] for f in self.spec.writes if mapping[f] != 0)

    # -- pretty printing -------------------------------------------------------------
    def operand_strings(self) -> Tuple[str, ...]:
        parts = []
        for name in self.spec.operands:
            if name == "imm":
                if self.target is not None:
                    parts.append(self.target)
                else:
                    parts.append(str(self.imm))
            else:
                parts.append(register_name(getattr(self, name)))
        return tuple(parts)

    def __str__(self) -> str:
        operands = ", ".join(self.operand_strings())
        text = f"{self.mnemonic}\t{operands}" if operands else self.mnemonic
        if self.comment:
            text = f"{text}\t# {self.comment}"
        return text


def nop() -> Instruction:
    """Return the canonical MicroBlaze NOP (``or r0, r0, r0``)."""
    return Instruction("or", rd=0, ra=0, rb=0, comment="nop")


def is_backward_branch(instr: Instruction) -> bool:
    """True when ``instr`` is a PC-relative branch with a negative offset.

    The on-chip profiler of the warp processor (Section 3 of the paper)
    detects loops by watching for backward branches on the instruction
    memory bus; this helper encodes the same criterion at the ISA level.
    """
    if not instr.is_branch:
        return False
    if instr.spec.fmt is not InstrFormat.TYPE_B:
        return False
    return instr.imm < 0
