"""Program image container shared by the assembler, simulator and DPM.

A :class:`Program` bundles everything a MicroBlaze system needs to run an
application: the instruction-memory image (a list of 32-bit machine words
destined for the instruction block RAM), the initial data-memory image
(destined for the data block RAM), the symbol table produced by the
assembler, and a little metadata used by the experiment harness.

The warp processor's dynamic partitioning module treats the instruction
image exactly the way the paper describes — as an opaque binary accessed
through the dual-ported instruction BRAM — so :class:`Program` deliberately
exposes the raw words rather than decoded instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .encoding import decode_program
from .instructions import Instruction


class SymbolError(KeyError):
    """Raised when a requested symbol is not present in the program."""


@dataclass
class Symbol:
    """A named address in either the text or the data section."""

    name: str
    address: int
    section: str  # "text" or "data"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Symbol({self.name!r}, {self.address:#x}, {self.section})"


@dataclass
class Program:
    """An assembled application image.

    Attributes
    ----------
    name:
        Human readable program name (benchmark name for the apps suite).
    text:
        Instruction-memory image as a list of 32-bit words; word ``i`` sits
        at byte address ``4 * i``.
    data:
        Initial data-memory image as a mutable ``bytearray``.
    symbols:
        Mapping of label name to :class:`Symbol`.
    entry_point:
        Byte address of the first instruction to execute.
    data_size:
        Size in bytes of the data block RAM required by the program (at
        least ``len(data)``; programs may reserve zero-initialised space and
        a stack region beyond the initialised image).
    source:
        Optional assembly source the image was produced from, kept to make
        debugging and the examples more readable.
    """

    name: str = "program"
    text: List[int] = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    entry_point: int = 0
    data_size: int = 0
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if self.data_size < len(self.data):
            self.data_size = len(self.data)

    # ------------------------------------------------------------------ sizes
    @property
    def text_size(self) -> int:
        """Size of the instruction image in bytes."""
        return 4 * len(self.text)

    @property
    def num_instructions(self) -> int:
        return len(self.text)

    # -------------------------------------------------------------- symbols
    def symbol_address(self, name: str) -> int:
        """Return the byte address of symbol ``name``."""
        try:
            return self.symbols[name].address
        except KeyError as exc:
            raise SymbolError(f"unknown symbol {name!r} in program {self.name!r}") from exc

    def has_symbol(self, name: str) -> bool:
        return name in self.symbols

    def symbol_at(self, address: int, section: str = "text") -> Optional[str]:
        """Return the name of the symbol at ``address`` in ``section``, if any."""
        for sym in self.symbols.values():
            if sym.address == address and sym.section == section:
                return sym.name
        return None

    # ------------------------------------------------------------ inspection
    def decoded(self) -> List[Instruction]:
        """Decode the whole text section into :class:`Instruction` objects."""
        return decode_program(self.text)

    def word_at(self, address: int) -> int:
        """Return the instruction word at byte ``address``."""
        index = address // 4
        if address % 4 or not 0 <= index < len(self.text):
            raise IndexError(f"instruction address out of range: {address:#x}")
        return self.text[index]

    def patch_word(self, address: int, word: int) -> None:
        """Overwrite the instruction word at byte ``address``.

        This is the primitive the dynamic partitioning module uses to update
        the executing application's binary after hardware generation.
        """
        index = address // 4
        if address % 4 or not 0 <= index < len(self.text):
            raise IndexError(f"instruction address out of range: {address:#x}")
        if not 0 <= word <= 0xFFFFFFFF:
            raise ValueError(f"not a 32-bit word: {word:#x}")
        self.text[index] = word

    def copy(self) -> "Program":
        """Return a deep copy (used before binary patching so the original
        software-only image remains available for comparison runs)."""
        return Program(
            name=self.name,
            text=list(self.text),
            data=bytearray(self.data),
            symbols=dict(self.symbols),
            entry_point=self.entry_point,
            data_size=self.data_size,
            source=self.source,
        )
