"""Binary encoding and decoding of MicroBlaze-like instructions.

The warp processor's dynamic partitioning module works directly on the
application *binary* stored in the instruction block RAM (Section 3 of the
paper): the decompiler reads machine words, rebuilds a control/data-flow
graph, and the binary updater patches words in place.  To make that flow
realistic this module implements a bit-level encoding closely modelled on
the published MicroBlaze format:

* 32-bit words, 6-bit major opcode in bits 31..26,
* TYPE_A: ``rd`` in bits 25..21, ``ra`` in bits 20..16, ``rb`` in bits
  15..11, an 11-bit function field in bits 10..0,
* TYPE_B: ``rd``/``ra`` as above and a 16-bit immediate in bits 15..0.

Instructions that share a major opcode are distinguished by a secondary
function value whose location depends on the opcode group (the low function
field, the ``rd`` field for conditional branches, the ``ra`` field for
unconditional branches, or bits 10..9 of the immediate for barrel-shift
immediates), mirroring the real instruction set.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .instructions import OPCODES, Instruction, InstrFormat, OpSpec
from .registers import to_signed

#: Opcodes whose secondary function value is stored in the ``rd`` field.
_FUNC_IN_RD = {0x27, 0x2F}
#: Opcodes whose secondary function value is stored in the ``ra`` field.
_FUNC_IN_RA = {0x26, 0x2E}
#: Opcodes whose secondary function value is OR-ed into the immediate field.
_FUNC_IN_IMM = {0x19}

_IMM_FUNC_MASK = 0x600
_IMM_VALUE_MASK = 0x1F


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or a word decoded."""


def _specs_by_opcode() -> Dict[int, List[OpSpec]]:
    index: Dict[int, List[OpSpec]] = {}
    for spec in OPCODES.values():
        index.setdefault(spec.opcode, []).append(spec)
    return index


_SPECS_BY_OPCODE = _specs_by_opcode()


def encode(instr: Instruction) -> int:
    """Encode ``instr`` into its 32-bit machine word.

    The immediate of a TYPE_B instruction must fit in 16 bits; values wider
    than that must be split by the assembler into an ``imm`` prefix followed
    by the instruction carrying the low half.
    """
    spec = instr.spec
    opcode = spec.opcode
    rd, ra, rb = instr.rd, instr.ra, instr.rb

    for reg, name in ((rd, "rd"), (ra, "ra"), (rb, "rb")):
        if not 0 <= reg < 32:
            raise EncodingError(f"{name} out of range in {instr}: {reg}")

    if opcode in _FUNC_IN_RD:
        rd = spec.func
    if opcode in _FUNC_IN_RA:
        ra = spec.func

    if spec.fmt is InstrFormat.TYPE_A:
        func = 0 if (opcode in _FUNC_IN_RD or opcode in _FUNC_IN_RA) else spec.func
        if not 0 <= func <= 0x7FF:
            raise EncodingError(f"function field out of range for {instr}")
        return (opcode << 26) | (rd << 21) | (ra << 16) | (rb << 11) | func

    # TYPE_B
    imm = instr.imm
    if spec.mnemonic == "imm":
        if not 0 <= imm <= 0xFFFF:
            raise EncodingError(f"imm prefix value out of range: {imm}")
        imm16 = imm
    elif opcode in _FUNC_IN_IMM:
        if not 0 <= imm <= 31:
            raise EncodingError(f"barrel shift amount out of range in {instr}")
        imm16 = spec.func | (imm & _IMM_VALUE_MASK)
    else:
        if not -0x8000 <= imm <= 0x7FFF:
            raise EncodingError(
                f"immediate {imm} of {instr} does not fit in a signed 16-bit "
                "field; an 'imm' prefix instruction is required"
            )
        imm16 = imm & 0xFFFF
    return (opcode << 26) | (rd << 21) | (ra << 16) | imm16


def decode(word: int, address: int | None = None) -> Instruction:
    """Decode a 32-bit machine word back into an :class:`Instruction`."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opcode = (word >> 26) & 0x3F
    rd = (word >> 21) & 0x1F
    ra = (word >> 16) & 0x1F
    rb = (word >> 11) & 0x1F
    func_low = word & 0x7FF
    imm16 = word & 0xFFFF

    candidates = _SPECS_BY_OPCODE.get(opcode)
    if not candidates:
        raise EncodingError(f"unknown opcode {opcode:#04x} in word {word:#010x}")

    if len(candidates) == 1:
        spec = candidates[0]
    else:
        if opcode in _FUNC_IN_RD:
            observed_func = rd
        elif opcode in _FUNC_IN_RA:
            observed_func = ra
        elif opcode in _FUNC_IN_IMM:
            observed_func = imm16 & _IMM_FUNC_MASK
        else:
            observed_func = func_low
        spec = next((s for s in candidates if s.func == observed_func), None)
        if spec is None:
            raise EncodingError(
                f"no instruction with opcode {opcode:#04x} and function "
                f"{observed_func:#x} (word {word:#010x})"
            )

    instr = Instruction(spec.mnemonic, address=address)
    # Register fields that were overlaid with the function value decode to 0.
    instr.rd = 0 if (opcode in _FUNC_IN_RD and "rd" not in spec.operands) else rd
    instr.ra = 0 if (opcode in _FUNC_IN_RA and "ra" not in spec.operands) else ra

    if spec.fmt is InstrFormat.TYPE_A:
        instr.rb = rb
    elif spec.mnemonic == "imm":
        instr.imm = imm16
    elif opcode in _FUNC_IN_IMM:
        instr.imm = imm16 & _IMM_VALUE_MASK
    else:
        instr.imm = to_signed(imm16, 16)
    return instr


def encode_program(instructions: List[Instruction]) -> List[int]:
    """Encode a list of instructions into machine words (one word each)."""
    return [encode(instr) for instr in instructions]


def decode_program(words: List[int], base_address: int = 0) -> List[Instruction]:
    """Decode a list of machine words into instructions with addresses."""
    return [decode(word, address=base_address + 4 * i) for i, word in enumerate(words)]


def roundtrips(instr: Instruction) -> bool:
    """Return True when encode/decode preserves the instruction fields."""
    decoded = decode(encode(instr))
    fields: Tuple[str, ...] = ("mnemonic", "rd", "ra", "rb", "imm")
    return all(getattr(decoded, f) == getattr(instr, f) for f in fields)
