"""Two-pass assembler for the MicroBlaze-like instruction set.

The assembler turns human-readable (or compiler-generated) assembly text
into a :class:`repro.isa.program.Program`, i.e. the instruction and data
BRAM images that a MicroBlaze system loads at configuration time.

Supported syntax
----------------

* one instruction or directive per line, ``#`` and ``;`` start comments,
* labels end with ``:`` and may share a line with an instruction,
* directives: ``.text``, ``.data``, ``.word``, ``.half``, ``.byte``,
  ``.space N``, ``.align N``, ``.entry LABEL``,
* pseudo-instructions:

  - ``nop`` → ``or r0, r0, r0``
  - ``li rd, imm32`` → ``addi rd, r0, imm`` or ``imm``-prefixed pair
  - ``la rd, label`` → ``addi rd, r0, <address of label>``
  - ``mv rd, ra`` → ``add rd, ra, r0``

* branch targets may be labels; PC-relative offsets are computed in the
  second pass (absolute for ``brai``/``bralid``).

The assembler is deliberately strict: immediates that do not fit their
field, unknown mnemonics, instructions that require an absent operand and
duplicate labels all raise :class:`AssemblyError` with the source line
number, because silent mis-assembly would corrupt every experiment built on
top of it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .encoding import encode
from .instructions import OPCODES, Instruction
from .program import Program, Symbol
from .registers import RegisterError, parse_register


class AssemblyError(ValueError):
    """Raised for any syntactic or semantic assembly problem."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


@dataclass
class _PendingInstruction:
    """An instruction recorded during pass one, awaiting label resolution."""

    instr: Instruction
    address: int
    line_number: int
    label_is_absolute: bool = False
    label_is_data: bool = False


@dataclass
class Assembler:
    """Two-pass assembler producing :class:`Program` images.

    Parameters
    ----------
    data_base:
        Byte address at which the ``.data`` section starts inside the data
        block RAM.  The default of zero matches the Harvard organisation of
        the MicroBlaze local memory busses (instruction and data BRAMs are
        separate address spaces).
    """

    data_base: int = 0

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` and return the resulting program image."""
        pending: List[_PendingInstruction] = []
        data_image = bytearray()
        symbols: Dict[str, Symbol] = {}
        entry_label: Optional[str] = None

        section = "text"
        text_address = 0
        data_address = self.data_base

        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw_line).strip()
            if not line:
                continue
            # Labels (possibly several) at the start of the line.
            while True:
                match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$", line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                if label in symbols:
                    raise AssemblyError(f"duplicate label {label!r}", line_number)
                address = text_address if section == "text" else data_address
                symbols[label] = Symbol(label, address, section)
            if not line:
                continue

            if line.startswith("."):
                section, text_address, data_address, entry_label = self._directive(
                    line, line_number, section, text_address, data_address,
                    data_image, entry_label,
                )
                continue

            if section != "text":
                raise AssemblyError("instructions are only allowed in .text", line_number)

            expanded = self._expand(line, line_number)
            for instr, absolute, is_data_ref in expanded:
                instr.address = text_address
                pending.append(_PendingInstruction(instr, text_address, line_number,
                                                   absolute, is_data_ref))
                text_address += 4

        text_words = self._resolve_and_encode(pending, symbols)
        entry_point = 0
        if entry_label is not None:
            if entry_label not in symbols:
                raise AssemblyError(f".entry refers to unknown label {entry_label!r}")
            entry_point = symbols[entry_label].address

        program = Program(
            name=name,
            text=text_words,
            data=data_image,
            symbols=symbols,
            entry_point=entry_point,
            data_size=len(data_image),
            source=source,
        )
        return program

    # ------------------------------------------------------------------ pass 1
    @staticmethod
    def _strip_comment(line: str) -> str:
        for marker in ("#", ";"):
            index = line.find(marker)
            if index >= 0:
                line = line[:index]
        return line

    def _directive(
        self,
        line: str,
        line_number: int,
        section: str,
        text_address: int,
        data_address: int,
        data_image: bytearray,
        entry_label: Optional[str],
    ) -> Tuple[str, int, int, Optional[str]]:
        parts = line.split(None, 1)
        directive = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""

        if directive == ".text":
            return "text", text_address, data_address, entry_label
        if directive == ".data":
            return "data", text_address, data_address, entry_label
        if directive == ".entry":
            if not argument:
                raise AssemblyError(".entry requires a label", line_number)
            return section, text_address, data_address, argument
        if directive in (".word", ".half", ".byte"):
            if section != "data":
                raise AssemblyError(f"{directive} only allowed in .data", line_number)
            width = {".word": 4, ".half": 2, ".byte": 1}[directive]
            for token in self._split_operands(argument):
                value = self._parse_integer(token, line_number)
                data_image.extend(self._to_bytes(value, width, line_number))
                data_address += width
            return section, text_address, data_address, entry_label
        if directive == ".space":
            if section != "data":
                raise AssemblyError(".space only allowed in .data", line_number)
            count = self._parse_integer(argument, line_number)
            if count < 0:
                raise AssemblyError(".space size must be non-negative", line_number)
            data_image.extend(b"\x00" * count)
            return section, text_address, data_address + count, entry_label
        if directive == ".align":
            boundary = self._parse_integer(argument, line_number) if argument else 4
            if boundary <= 0 or boundary & (boundary - 1):
                raise AssemblyError(".align requires a power of two", line_number)
            if section == "data":
                while data_address % boundary:
                    data_image.append(0)
                    data_address += 1
            else:
                raise AssemblyError(".align in .text is not supported", line_number)
            return section, text_address, data_address, entry_label
        raise AssemblyError(f"unknown directive {directive!r}", line_number)

    @staticmethod
    def _to_bytes(value: int, width: int, line_number: int) -> bytes:
        limit = 1 << (8 * width)
        if not -(limit // 2) <= value < limit:
            raise AssemblyError(f"value {value} does not fit in {width} bytes", line_number)
        return (value & (limit - 1)).to_bytes(width, "little")

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        return [token.strip() for token in text.split(",") if token.strip()]

    @staticmethod
    def _parse_integer(token: str, line_number: int) -> int:
        try:
            return int(token, 0)
        except ValueError as exc:
            raise AssemblyError(f"invalid integer {token!r}", line_number) from exc

    # ---------------------------------------------------------------- expansion
    def _expand(self, line: str, line_number: int) -> List[Tuple[Instruction, bool, bool]]:
        """Expand one source line into concrete instructions.

        Returns a list of ``(instruction, target_is_absolute, target_is_data)``
        tuples; most lines expand to exactly one instruction, pseudo
        instructions may expand to two.
        """
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = self._split_operands(operand_text)

        if mnemonic == "nop":
            if operands:
                raise AssemblyError("nop takes no operands", line_number)
            return [(Instruction("or", rd=0, ra=0, rb=0), False, False)]

        if mnemonic == "mv":
            if len(operands) != 2:
                raise AssemblyError("mv requires two operands", line_number)
            rd = self._reg(operands[0], line_number)
            ra = self._reg(operands[1], line_number)
            return [(Instruction("add", rd=rd, ra=ra, rb=0), False, False)]

        if mnemonic == "li":
            if len(operands) != 2:
                raise AssemblyError("li requires two operands", line_number)
            rd = self._reg(operands[0], line_number)
            value = self._parse_integer(operands[1], line_number)
            return self._load_immediate(rd, value)

        if mnemonic == "la":
            if len(operands) != 2:
                raise AssemblyError("la requires two operands", line_number)
            rd = self._reg(operands[0], line_number)
            instr = Instruction("addi", rd=rd, ra=0, target=operands[1])
            return [(instr, True, True)]

        if mnemonic not in OPCODES:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_number)

        spec = OPCODES[mnemonic]
        if len(operands) != len(spec.operands):
            raise AssemblyError(
                f"{mnemonic} expects {len(spec.operands)} operands "
                f"({', '.join(spec.operands)}), got {len(operands)}",
                line_number,
            )
        instr = Instruction(mnemonic)
        absolute = spec.func & 0x08 != 0 and spec.opcode in (0x26, 0x2E)
        is_data_ref = False
        for field_name, token in zip(spec.operands, operands):
            if field_name == "imm":
                if self._looks_like_register(token):
                    raise AssemblyError(
                        f"{mnemonic} expects an immediate, got register {token!r}",
                        line_number,
                    )
                try:
                    instr.imm = int(token, 0)
                except ValueError:
                    instr.target = token
                    # Non-branch uses of labels refer to data/text addresses.
                    if not spec.is_branch:
                        absolute = True
                        is_data_ref = True
            else:
                setattr(instr, field_name, self._reg(token, line_number))
        return [(instr, absolute, is_data_ref)]

    @staticmethod
    def _looks_like_register(token: str) -> bool:
        try:
            parse_register(token)
            return True
        except RegisterError:
            return False

    def _reg(self, token: str, line_number: int) -> int:
        try:
            return parse_register(token)
        except RegisterError as exc:
            raise AssemblyError(str(exc), line_number) from exc

    @staticmethod
    def _load_immediate(rd: int, value: int) -> List[Tuple[Instruction, bool, bool]]:
        """Expand ``li`` into one or two instructions depending on the value."""
        if -0x8000 <= value <= 0x7FFF:
            return [(Instruction("addi", rd=rd, ra=0, imm=value), False, False)]
        value &= 0xFFFFFFFF
        high = (value >> 16) & 0xFFFF
        low = value & 0xFFFF
        if low >= 0x8000:
            # The processor concatenates the IMM prefix with the raw low 16
            # bits (no sign extension), so encode the low half as the signed
            # bit pattern that reproduces those 16 bits.
            low -= 0x10000
        return [
            (Instruction("imm", imm=high), False, False),
            (Instruction("addi", rd=rd, ra=0, imm=low), False, False),
        ]

    # ------------------------------------------------------------------ pass 2
    def _resolve_and_encode(
        self,
        pending: Sequence[_PendingInstruction],
        symbols: Dict[str, Symbol],
    ) -> List[int]:
        words: List[int] = []
        for item in pending:
            instr = item.instr
            if instr.target is not None:
                if instr.target not in symbols:
                    raise AssemblyError(
                        f"undefined label {instr.target!r}", item.line_number
                    )
                symbol = symbols[instr.target]
                if item.label_is_absolute:
                    instr.imm = symbol.address
                else:
                    instr.imm = symbol.address - item.address
                if not -0x8000 <= instr.imm <= 0x7FFF:
                    raise AssemblyError(
                        f"resolved offset {instr.imm} for label {instr.target!r} "
                        "does not fit in 16 bits",
                        item.line_number,
                    )
            try:
                words.append(encode(instr))
            except Exception as exc:
                raise AssemblyError(f"cannot encode {instr}: {exc}", item.line_number) from exc
        return words


def assemble(source: str, name: str = "program") -> Program:
    """Convenience wrapper: assemble ``source`` with default settings."""
    return Assembler().assemble(source, name=name)
