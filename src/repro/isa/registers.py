"""General purpose register file definitions for the MicroBlaze-like ISA.

The MicroBlaze soft processor core has thirty-two 32-bit general purpose
registers.  Register ``r0`` always reads as zero and writes to it are
discarded.  The remaining registers are general purpose, but the standard
Xilinx ABI assigns conventional roles to several of them; the compiler and
the runtime library in :mod:`repro.compiler` follow those conventions so
that generated binaries look like the binaries the paper's dynamic
partitioning tools would have observed.

The ABI roles reproduced here:

===========  =====================================================
Register     Role
===========  =====================================================
``r0``       constant zero
``r1``       stack pointer
``r2``       read-only small-data-area anchor (unused by our compiler)
``r3, r4``   return values
``r5 - r10`` subroutine arguments
``r11, r12`` caller-saved temporaries
``r13``      read/write small-data-area anchor (unused)
``r14``      interrupt return address
``r15``      subroutine return address (link register)
``r16``      trap/debug return address
``r17``      exception return address
``r18``      assembler/compiler temporary
``r19-r31``  callee-saved registers
===========  =====================================================
"""

from __future__ import annotations

NUM_REGISTERS = 32
WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF

#: Register used as the constant zero source.
ZERO_REG = 0
#: Stack pointer register per the MicroBlaze ABI.
STACK_POINTER = 1
#: First return-value register.
RETURN_VALUE = 3
#: Registers used to pass the first six subroutine arguments.
ARGUMENT_REGISTERS = (5, 6, 7, 8, 9, 10)
#: Caller saved scratch registers.
CALLER_SAVED = (3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
#: Link register written by ``brlid`` and consumed by ``rtsd``.
LINK_REGISTER = 15
#: Reserved assembler temporary (used by the code generator for spills).
ASSEMBLER_TEMP = 18
#: Callee saved registers available to the register allocator.
CALLEE_SAVED = tuple(range(19, 32))


class RegisterError(ValueError):
    """Raised when a register name or index is invalid."""


def register_name(index: int) -> str:
    """Return the canonical assembly name (``r0`` .. ``r31``) for ``index``."""
    if not 0 <= index < NUM_REGISTERS:
        raise RegisterError(f"register index out of range: {index}")
    return f"r{index}"


def parse_register(name: str) -> int:
    """Parse a register operand such as ``r12`` into its numeric index.

    Accepts the ``rN`` syntax used by the MicroBlaze assembler as well as a
    handful of ABI aliases (``sp``, ``lr``, ``zero``) which make compiler
    generated assembly easier to read.
    """
    text = name.strip().lower().rstrip(",")
    aliases = {"zero": 0, "sp": STACK_POINTER, "lr": LINK_REGISTER}
    if text in aliases:
        return aliases[text]
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index < NUM_REGISTERS:
            return index
    raise RegisterError(f"invalid register operand: {name!r}")


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    """Interpret ``value`` (a non-negative bit pattern) as a signed integer."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = WORD_BITS) -> int:
    """Truncate a Python integer to an unsigned ``bits``-wide bit pattern."""
    return value & ((1 << bits) - 1)
