"""MicroBlaze-like instruction set architecture.

This package provides the ISA substrate the whole reproduction rests on:
instruction definitions and classification (:mod:`~repro.isa.instructions`),
bit-level encoding/decoding (:mod:`~repro.isa.encoding`), the assembler and
disassembler, and the :class:`~repro.isa.program.Program` image container
that the MicroBlaze system simulator loads into its block RAMs and the
dynamic partitioning module later reads back and patches.
"""

from .assembler import Assembler, AssemblyError, assemble
from .disassembler import (disassemble, disassemble_bram,
                           format_instruction, listing)
from .encoding import EncodingError, decode, decode_program, encode, encode_program
from .instructions import (
    CONDITION_BY_STEM,
    Condition,
    HwUnit,
    Instruction,
    InstrClass,
    InstrFormat,
    OPCODES,
    OpSpec,
    is_backward_branch,
    nop,
)
from .program import Program, Symbol, SymbolError
from .registers import (
    ARGUMENT_REGISTERS,
    ASSEMBLER_TEMP,
    CALLEE_SAVED,
    CALLER_SAVED,
    LINK_REGISTER,
    NUM_REGISTERS,
    RETURN_VALUE,
    STACK_POINTER,
    WORD_MASK,
    ZERO_REG,
    RegisterError,
    parse_register,
    register_name,
    to_signed,
    to_unsigned,
)

__all__ = [
    "Assembler",
    "AssemblyError",
    "assemble",
    "disassemble",
    "disassemble_bram",
    "format_instruction",
    "listing",
    "EncodingError",
    "decode",
    "decode_program",
    "encode",
    "encode_program",
    "CONDITION_BY_STEM",
    "Condition",
    "HwUnit",
    "Instruction",
    "InstrClass",
    "InstrFormat",
    "OPCODES",
    "OpSpec",
    "is_backward_branch",
    "nop",
    "Program",
    "Symbol",
    "SymbolError",
    "ARGUMENT_REGISTERS",
    "ASSEMBLER_TEMP",
    "CALLEE_SAVED",
    "CALLER_SAVED",
    "LINK_REGISTER",
    "NUM_REGISTERS",
    "RETURN_VALUE",
    "STACK_POINTER",
    "WORD_MASK",
    "ZERO_REG",
    "RegisterError",
    "parse_register",
    "register_name",
    "to_signed",
    "to_unsigned",
]
