"""Declarative warp jobs and service-level results.

A :class:`WarpJob` describes one unit of warp-as-a-service work: *what* to
run (a built-in suite benchmark by name, or arbitrary kernel-language
source), *on what* (a :class:`~repro.microblaze.config.MicroBlazeConfig`
and :class:`~repro.fabric.architecture.WclaParameters`), and *how*
(execution engine, instruction budget, priority).  Jobs are frozen,
hashable and picklable, so the scheduler can deduplicate them by content
and the worker pool can ship them to other processes unchanged.

A :class:`ServiceResult` is the flat, picklable outcome of one job —
speedup, energy, wall time, CAD-cache accounting — and a
:class:`ServiceReport` aggregates results into the suite-level tables,
reusing the row builders of :mod:`repro.eval.figures`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.figures import metric_rows
from ..eval.reporting import format_table
from ..fabric.architecture import DEFAULT_WCLA, WclaParameters
from ..microblaze.config import MicroBlazeConfig, PAPER_CONFIG

#: Column order of the service's suite-level tables (the service compares
#: software-only MicroBlaze against the warp-processed MicroBlaze; the ARM
#: comparison points of Figure 6/7 belong to the evaluation harness).
SERVICE_PLATFORM_ORDER = ("MicroBlaze", "MicroBlaze (Warp)")


class JobSpecError(ValueError):
    """Raised for malformed job specifications (CLI job files included)."""


@dataclass(frozen=True)
class WarpJob:
    """One declarative warp-service job.

    Exactly one of ``benchmark`` (a suite benchmark name, built with
    ``small``-sized parameters when requested) or ``source`` (raw
    kernel-language text) must be given.  ``name`` and ``priority`` are
    scheduling metadata and do not participate in content deduplication.
    """

    name: str
    benchmark: Optional[str] = None
    source: Optional[str] = None
    small: bool = False
    config: MicroBlazeConfig = PAPER_CONFIG
    config_label: str = "paper"
    wcla: WclaParameters = DEFAULT_WCLA
    engine: Optional[str] = None
    max_instructions: int = 50_000_000
    priority: int = 0

    def __post_init__(self) -> None:
        if (self.benchmark is None) == (self.source is None):
            raise JobSpecError(
                f"job {self.name!r}: specify exactly one of 'benchmark' or "
                f"'source'"
            )

    def dedup_key(self) -> Tuple:
        """Content identity: two jobs with equal keys compute the same
        result, whatever they are named or prioritized."""
        return (self.benchmark, self.source, self.small, self.config,
                self.wcla, self.engine, self.max_instructions)

    def describe(self) -> str:
        workload = self.benchmark if self.benchmark else "<inline source>"
        engine = self.engine if self.engine else "default"
        return (f"{self.name}: {workload}"
                f"{' (small)' if self.small else ''} on "
                f"{self.config_label}/{engine}")


@dataclass
class ServiceResult:
    """Flat, picklable outcome of one executed job."""

    job_name: str
    workload: str
    config_label: str
    engine: str
    ok: bool = True
    error: Optional[str] = None
    #: Warp-pipeline outcome.
    partitioned: bool = False
    partition_reason: Optional[str] = None
    checksum_ok: bool = True
    speedup: float = 1.0
    software_ms: float = 0.0
    warp_ms: float = 0.0
    dpm_ms: float = 0.0
    #: Figure-5 energies (millijoules) and the warp energy normalized to
    #: the software-only MicroBlaze run.
    mb_energy_mj: float = 0.0
    warp_energy_mj: float = 0.0
    normalized_warp_energy: float = 1.0
    #: CAD artifact cache accounting for this job (delta while it ran).
    cad_cache_hit: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    #: Host-side execution accounting.
    wall_seconds: float = 0.0
    worker_pid: int = 0
    #: Set on results fanned out from a deduplicated job: the name of the
    #: job whose execution produced these numbers.
    deduped_from: Optional[str] = None

    # ----------------------------------------------------------------- metrics
    def speedups(self) -> Dict[str, float]:
        return {"MicroBlaze": 1.0, "MicroBlaze (Warp)": self.speedup}

    def normalized_energies(self) -> Dict[str, float]:
        return {"MicroBlaze": 1.0,
                "MicroBlaze (Warp)": self.normalized_warp_energy}

    def to_plain(self) -> Dict:
        return asdict(self)


@dataclass
class ServiceReport:
    """Aggregate of one service run (one batch of jobs)."""

    results: List[ServiceResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    mode: str = "serial"
    workers: int = 0

    # ------------------------------------------------------------- accounting
    @property
    def num_jobs(self) -> int:
        return len(self.results)

    @property
    def num_failed(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    @property
    def cache_hits(self) -> int:
        return sum(result.cache_hits for result in self.results)

    @property
    def cache_misses(self) -> int:
        return sum(result.cache_misses for result in self.results)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def succeeded(self) -> List[ServiceResult]:
        return [result for result in self.results if result.ok]

    # ----------------------------------------------------------------- tables
    def speedup_rows(self) -> List[List[object]]:
        """Suite-level speedup rows via the Figure-6 row builder."""
        return metric_rows([(result.job_name, result.speedups())
                            for result in self.succeeded()],
                           SERVICE_PLATFORM_ORDER)

    def energy_rows(self) -> List[List[object]]:
        """Suite-level normalized-energy rows via the Figure-7 row builder."""
        return metric_rows([(result.job_name, result.normalized_energies())
                            for result in self.succeeded()],
                           SERVICE_PLATFORM_ORDER)

    def speedup_table(self) -> str:
        return format_table(["Job"] + list(SERVICE_PLATFORM_ORDER),
                            self.speedup_rows())

    def energy_table(self) -> str:
        return format_table(["Job"] + list(SERVICE_PLATFORM_ORDER),
                            self.energy_rows(), float_format="{:.3f}")

    def summary(self) -> str:
        lines = [
            f"{self.num_jobs} jobs ({self.num_failed} failed) in "
            f"{self.wall_seconds:.2f}s wall "
            f"[{self.mode}, workers={self.workers}]",
            f"CAD artifact cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"({100 * self.cache_hit_rate:.0f}% hit rate)",
        ]
        if self.succeeded():
            lines.append("")
            lines.append(self.speedup_table())
        return "\n".join(lines)

    # ------------------------------------------------------------------- JSON
    def to_plain(self) -> Dict:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 4),
            "num_jobs": self.num_jobs,
            "num_failed": self.num_failed,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
            "jobs": [result.to_plain() for result in self.results],
            "tables": {
                "speedup": self.speedup_table() if self.succeeded() else "",
                "energy": self.energy_table() if self.succeeded() else "",
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_plain(), indent=indent)


# --------------------------------------------------------------------------- sweeps
def suite_sweep_jobs(
    configs: Optional[Sequence[Tuple[str, MicroBlazeConfig]]] = None,
    engines: Sequence[str] = ("threaded",),
    benchmarks: Optional[Sequence[str]] = None,
    small: bool = False,
    wcla: WclaParameters = DEFAULT_WCLA,
    max_instructions: int = 50_000_000,
) -> List[WarpJob]:
    """The built-in suite sweep: benchmarks × configurations × engines.

    ``configs`` is a sequence of ``(label, config)`` pairs, defaulting to
    the paper configuration alone.
    """
    from ..apps import benchmark_names

    if configs is None:
        configs = [("paper", PAPER_CONFIG)]
    names = list(benchmarks) if benchmarks else benchmark_names()
    jobs: List[WarpJob] = []
    for name in names:
        for label, config in configs:
            for engine in engines:
                jobs.append(WarpJob(
                    name=f"{name}/{label}/{engine}",
                    benchmark=name,
                    small=small,
                    config=config,
                    config_label=label,
                    wcla=wcla,
                    engine=engine,
                    max_instructions=max_instructions,
                ))
    return jobs


def expand_duplicate(result: ServiceResult, job: WarpJob) -> ServiceResult:
    """Clone the primary job's result for a deduplicated twin job.

    Scheduling metadata that is *not* part of the dedup key — the name and
    the configuration label — comes from the twin itself, so reports label
    every submitted job correctly.
    """
    return replace(result, job_name=job.name, config_label=job.config_label,
                   deduped_from=result.job_name,
                   cache_hits=0, cache_misses=0, wall_seconds=0.0)
