"""Declarative warp jobs and service-level results.

A :class:`WarpJob` describes one unit of warp-as-a-service work: *what* to
run (a built-in suite benchmark by name, or arbitrary kernel-language
source), *on what* (a :class:`~repro.microblaze.config.MicroBlazeConfig`
and :class:`~repro.fabric.architecture.WclaParameters`), and *how*
(execution engine, instruction budget, priority).  Jobs are frozen,
hashable and picklable, so the scheduler can deduplicate them by content
and the worker pool can ship them to other processes unchanged.

A :class:`ServiceResult` is the flat, picklable outcome of one job —
speedup, energy, wall time, CAD-cache accounting — and a
:class:`ServiceReport` aggregates results into the suite-level tables,
reusing the row builders of :mod:`repro.eval.figures`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from dataclasses import fields as dataclasses_fields
from typing import Dict, List, Optional, Sequence, Tuple

from ..cad import (
    SOURCE_BUNDLE,
    SOURCE_DISK,
    SOURCE_HIT,
    SOURCE_MISS,
    SOURCE_NEGATIVE,
    SOURCE_PEER,
    validate_job_stage_names,
)
from ..eval.figures import metric_rows
from ..eval.reporting import format_table
from ..fabric.architecture import DEFAULT_WCLA, WclaParameters
from ..microblaze.config import MicroBlazeConfig, PAPER_CONFIG
from ..microblaze.engines import UnknownEngineError, validate_engine_name

#: Column order of the service's suite-level tables (the service compares
#: software-only MicroBlaze against the warp-processed MicroBlaze; the ARM
#: comparison points of Figure 6/7 belong to the evaluation harness).
SERVICE_PLATFORM_ORDER = ("MicroBlaze", "MicroBlaze (Warp)")

#: Column order of the per-stage CAD flow table.
STAGE_METRIC_ORDER = ("wall ms", "hits", "misses", "hit rate")

#: Stage record sources that count as stage-level cache hits (the bundle
#: fast path serves every bundled stage at once; a negative hit replays a
#: memoized capacity rejection without re-running the stage; disk and peer
#: hits are served by the persistent store tier — also tallied separately).
_STAGE_HIT_SOURCES = (SOURCE_HIT, SOURCE_BUNDLE, SOURCE_NEGATIVE, SOURCE_DISK,
                      SOURCE_PEER)

#: The single mapping from report metric names (``"<block>.<key>"``) to the
#: :class:`ServiceResult` field carrying the per-job count.  Report
#: aggregation, the ``cache``/``resilience`` blocks of
#: :meth:`ServiceReport.to_plain` and :meth:`ServiceReport.summary` all
#: derive from this dict — adding a counter here is the *only* edit needed
#: for it to appear everywhere (and the live ``metrics`` snapshot must
#: carry it too; see ROADMAP invariants).
RESULT_METRIC_FIELDS: Dict[str, str] = {
    "cache.hits": "cache_hits",
    "cache.misses": "cache_misses",
    "cache.negative_hits": "cache_negative_hits",
    "cache.disk_hits": "cache_disk_hits",
    "cache.peer_hits": "cache_peer_hits",
    "resilience.retries": "retries",
    "resilience.timeouts": "timeouts",
    "fuzz.programs": "fuzz_programs",
    "fuzz.instructions": "fuzz_instructions",
    "fuzz.divergences": "fuzz_divergences",
    "fuzz.known_divergences": "fuzz_known_divergences",
    "fuzz.bisect_steps": "fuzz_bisect_steps",
}


class JobSpecError(ValueError):
    """Raised for malformed job specifications (CLI job files included)."""


@dataclass(frozen=True)
class WarpJob:
    """One declarative warp-service job.

    Exactly one of ``benchmark`` (a suite benchmark name, built with
    ``small``-sized parameters when requested), ``source`` (raw
    kernel-language text) or ``fuzz_profile`` (a differential fuzzing
    campaign over generated programs — see :mod:`repro.fuzz`) must be
    given.  ``name`` and ``priority`` are scheduling metadata and do not
    participate in content deduplication.
    ``stages`` optionally swaps registered CAD flow passes for this job
    (e.g. ``("decompile", "synthesis", "place", "route-greedy",
    "implement", "binary-update")``); it changes the computed result, so
    it is part of the dedup key.
    """

    name: str
    benchmark: Optional[str] = None
    source: Optional[str] = None
    small: bool = False
    config: MicroBlazeConfig = PAPER_CONFIG
    config_label: str = "paper"
    wcla: WclaParameters = DEFAULT_WCLA
    engine: Optional[str] = None
    max_instructions: int = 50_000_000
    priority: int = 0
    stages: Optional[Tuple[str, ...]] = None
    #: Wall-clock budget for this job's execution (``None`` = unbounded).
    #: Enforced by the pool watchdog: a pooled job still running past its
    #: budget has its shard killed and is reported as a timeout, while
    #: innocent jobs queued behind it are retried in a fresh pool.  Like
    #: ``name``/``priority`` this is scheduling metadata, not content —
    #: it does not participate in :meth:`dedup_key`.
    timeout_s: Optional[float] = None
    #: Telemetry identity: assigned by the service when a telemetry sink
    #: is active (see :mod:`repro.obs`), carried through the wire codec
    #: and into the worker process so every span of this job's execution
    #: joins one trace.  Observability metadata, not content — it does not
    #: participate in :meth:`dedup_key`.
    trace_id: Optional[str] = None
    #: Differential fuzzing campaign (third workload kind): generator
    #: profile name, start seed, number of consecutive seeds, the engines
    #: cross-checked against the reference (``None`` = every registered
    #: engine) and whether ``precise_fault_stats`` mode is also swept.
    #: ``max_instructions`` bounds each generated run.
    fuzz_profile: Optional[str] = None
    fuzz_seed: int = 0
    fuzz_count: int = 25
    fuzz_engines: Optional[Tuple[str, ...]] = None
    fuzz_precise: bool = False

    def __post_init__(self) -> None:
        kinds = sum(1 for workload in (self.benchmark, self.source,
                                       self.fuzz_profile)
                    if workload is not None)
        if kinds != 1:
            raise JobSpecError(
                f"job {self.name!r}: specify exactly one of 'benchmark', "
                f"'source' or 'fuzz_profile'"
            )
        if self.fuzz_profile is not None:
            self._validate_fuzz()
        if self.timeout_s is not None:
            if not isinstance(self.timeout_s, (int, float)) \
                    or isinstance(self.timeout_s, bool) \
                    or self.timeout_s <= 0:
                raise JobSpecError(
                    f"job {self.name!r}: 'timeout_s' must be a positive "
                    f"number of seconds, not {self.timeout_s!r}"
                )
        if self.trace_id is not None and not isinstance(self.trace_id, str):
            raise JobSpecError(
                f"job {self.name!r}: 'trace_id' must be a string, not "
                f"{self.trace_id!r}"
            )
        if self.engine is not None:
            # Validate against the engine registry at submission time, so
            # a typo fails with one clear error naming the registered
            # engines instead of a ValueError deep inside a pool worker.
            try:
                validate_engine_name(self.engine)
            except UnknownEngineError as error:
                raise JobSpecError(f"job {self.name!r}: {error}") from error
        if self.stages is not None:
            if isinstance(self.stages, str):
                raise JobSpecError(
                    f"job {self.name!r}: 'stages' must be a sequence of "
                    f"stage names, not a single string"
                )
            if not isinstance(self.stages, tuple):
                try:
                    object.__setattr__(self, "stages", tuple(self.stages))
                except TypeError as error:
                    raise JobSpecError(
                        f"job {self.name!r}: 'stages' must be a sequence "
                        f"of stage names"
                    ) from error
            if not self.stages or not all(isinstance(stage, str)
                                          for stage in self.stages):
                raise JobSpecError(
                    f"job {self.name!r}: 'stages' must be a non-empty "
                    f"sequence of stage names"
                )
            try:
                validate_job_stage_names(self.stages)
            except ValueError as error:
                raise JobSpecError(f"job {self.name!r}: {error}") from error

    def _validate_fuzz(self) -> None:
        from ..fuzz.generator import profile_names
        if self.fuzz_profile not in profile_names():
            raise JobSpecError(
                f"job {self.name!r}: unknown fuzz profile "
                f"{self.fuzz_profile!r} (profiles: "
                f"{', '.join(profile_names())})"
            )
        if not isinstance(self.fuzz_count, int) \
                or isinstance(self.fuzz_count, bool) or self.fuzz_count <= 0:
            raise JobSpecError(
                f"job {self.name!r}: 'fuzz_count' must be a positive "
                f"integer, not {self.fuzz_count!r}"
            )
        if not isinstance(self.fuzz_seed, int) \
                or isinstance(self.fuzz_seed, bool) or self.fuzz_seed < 0:
            raise JobSpecError(
                f"job {self.name!r}: 'fuzz_seed' must be a non-negative "
                f"integer, not {self.fuzz_seed!r}"
            )
        if self.fuzz_engines is not None:
            if isinstance(self.fuzz_engines, str):
                raise JobSpecError(
                    f"job {self.name!r}: 'fuzz_engines' must be a sequence "
                    f"of engine names, not a single string"
                )
            if not isinstance(self.fuzz_engines, tuple):
                object.__setattr__(self, "fuzz_engines",
                                   tuple(self.fuzz_engines))
            for engine in self.fuzz_engines:
                try:
                    validate_engine_name(engine)
                except UnknownEngineError as error:
                    raise JobSpecError(
                        f"job {self.name!r}: {error}") from error

    def dedup_key(self) -> Tuple:
        """Content identity: two jobs with equal keys compute the same
        result, whatever they are named or prioritized."""
        return (self.benchmark, self.source, self.small, self.config,
                self.wcla, self.engine, self.max_instructions, self.stages,
                self.fuzz_profile, self.fuzz_seed, self.fuzz_count,
                self.fuzz_engines, self.fuzz_precise)

    def describe(self) -> str:
        if self.fuzz_profile is not None:
            workload = (f"fuzz:{self.fuzz_profile}"
                        f"[{self.fuzz_seed}.."
                        f"{self.fuzz_seed + self.fuzz_count})")
        else:
            workload = self.benchmark if self.benchmark \
                else "<inline source>"
        engine = self.engine if self.engine else "default"
        return (f"{self.name}: {workload}"
                f"{' (small)' if self.small else ''} on "
                f"{self.config_label}/{engine}")


@dataclass
class ServiceResult:
    """Flat, picklable outcome of one executed job."""

    job_name: str
    workload: str
    config_label: str
    engine: str
    ok: bool = True
    error: Optional[str] = None
    #: Warp-pipeline outcome.
    partitioned: bool = False
    partition_reason: Optional[str] = None
    checksum_ok: bool = True
    speedup: float = 1.0
    software_ms: float = 0.0
    warp_ms: float = 0.0
    dpm_ms: float = 0.0
    #: Figure-5 energies (millijoules) and the warp energy normalized to
    #: the software-only MicroBlaze run.
    mb_energy_mj: float = 0.0
    warp_energy_mj: float = 0.0
    normalized_warp_energy: float = 1.0
    #: CAD artifact cache accounting for this job (delta while it ran).
    cad_cache_hit: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    #: Stage lookups served by the persistent disk store tier (counted
    #: separately from in-memory stage hits).
    cache_disk_hits: int = 0
    #: Stage lookups pulled from a mesh peer's store on a local miss
    #: (counted separately from ``cache_disk_hits`` — a peer hit is a
    #: network round-trip, not a local file read).
    cache_peer_hits: int = 0
    #: Per-stage CAD flow accounting: host wall milliseconds per stage and
    #: how each stage was satisfied ("miss"/"hit"/"bundle"/"negative-hit"/
    #: "uncached"); memoized capacity rejections served to this job.
    stage_wall_ms: Dict[str, float] = field(default_factory=dict)
    stage_cache: Dict[str, str] = field(default_factory=dict)
    cache_negative_hits: int = 0
    #: Host-side execution accounting.
    wall_seconds: float = 0.0
    worker_pid: int = 0
    #: Set on results fanned out from a deduplicated job: the name of the
    #: job whose execution produced these numbers.
    deduped_from: Optional[str] = None
    #: Resilience accounting: transient-fault / crash / remote retries
    #: absorbed while producing this result, and watchdog timeouts
    #: (``timeouts > 0`` with ``ok=True`` means this innocent job was
    #: re-run after a neighbour hung its shard).
    retries: int = 0
    timeouts: int = 0
    #: The trace id of the execution that produced this result (``None``
    #: when no telemetry sink was active).  Random per run — excluded
    #: from :attr:`CANONICAL_FIELDS` so differential comparisons hold.
    trace_id: Optional[str] = None
    #: Differential fuzzing accounting (fuzz jobs only): campaign size,
    #: instructions executed across the fleet, divergence tallies split
    #: into documented-known and unexplained, bisection probes spent and
    #: the replayable repro bundles for every unexplained divergence.
    fuzz_programs: int = 0
    fuzz_instructions: int = 0
    fuzz_divergences: int = 0
    fuzz_known_divergences: int = 0
    fuzz_bisect_steps: int = 0
    fuzz_bundles: List[Dict] = field(default_factory=list)

    # ----------------------------------------------------------------- metrics
    def metrics_snapshot(self) -> Dict[str, int]:
        """This result's counters keyed by report metric name — the one
        projection everything downstream aggregates (see
        :data:`RESULT_METRIC_FIELDS`)."""
        return {metric: getattr(self, field_name)
                for metric, field_name in RESULT_METRIC_FIELDS.items()}

    def speedups(self) -> Dict[str, float]:
        return {"MicroBlaze": 1.0, "MicroBlaze (Warp)": self.speedup}

    def normalized_energies(self) -> Dict[str, float]:
        return {"MicroBlaze": 1.0,
                "MicroBlaze (Warp)": self.normalized_warp_energy}

    def to_plain(self) -> Dict:
        return asdict(self)

    #: The deterministic projection of a result: the fields that must be
    #: bit-identical between a fault-free run and a run under a recovered
    #: fault plan.  Cache counters, wall times, pids and the resilience
    #: counters are *execution* accounting — they legitimately differ
    #: when a fault forces a retry or a recompute.  (The same field list
    #: the CI gateway smoke test compares.)
    CANONICAL_FIELDS = (
        "job_name", "workload", "config_label", "engine", "ok", "error",
        "partitioned", "partition_reason", "checksum_ok", "speedup",
        "software_ms", "warp_ms", "dpm_ms", "mb_energy_mj",
        "warp_energy_mj", "normalized_warp_energy", "deduped_from",
    )

    def canonical(self) -> Dict:
        """Deterministic fields only — the chaos-differential identity."""
        return {name: getattr(self, name) for name in self.CANONICAL_FIELDS}

    @classmethod
    def from_plain(cls, plain: Dict) -> "ServiceResult":
        """Rebuild a result from :meth:`to_plain` output (wire transport).

        Unknown keys are ignored so a newer gateway can talk to an older
        client; missing keys fall back to the dataclass defaults.
        """
        names = {f.name for f in dataclasses_fields(cls)}
        return cls(**{key: value for key, value in plain.items()
                      if key in names})


@dataclass
class ServiceReport:
    """Aggregate of one service run (one batch of jobs)."""

    results: List[ServiceResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    mode: str = "serial"
    workers: int = 0

    # ------------------------------------------------------------- accounting
    @property
    def num_jobs(self) -> int:
        return len(self.results)

    @property
    def num_failed(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    def metrics_totals(self) -> Dict[str, int]:
        """Batch-wide counter totals keyed by report metric name.

        The one aggregation over :data:`RESULT_METRIC_FIELDS` that the
        cache/resilience properties, :meth:`summary` and the
        ``cache``/``resilience`` blocks of :meth:`to_plain` all read —
        a new counter lands everywhere by extending the mapping.
        """
        totals = dict.fromkeys(RESULT_METRIC_FIELDS, 0)
        for result in self.results:
            for metric, value in result.metrics_snapshot().items():
                totals[metric] += value
        return totals

    def metrics_block(self, prefix: str) -> Dict[str, int]:
        """One report block (``"cache"``/``"resilience"``) of
        :meth:`metrics_totals`, keys stripped of the prefix."""
        marker = prefix + "."
        return {metric[len(marker):]: value
                for metric, value in self.metrics_totals().items()
                if metric.startswith(marker)}

    @property
    def cache_hits(self) -> int:
        return self.metrics_totals()["cache.hits"]

    @property
    def cache_misses(self) -> int:
        return self.metrics_totals()["cache.misses"]

    @property
    def cache_hit_rate(self) -> float:
        totals = self.metrics_totals()
        lookups = totals["cache.hits"] + totals["cache.misses"]
        return totals["cache.hits"] / lookups if lookups else 0.0

    @property
    def cache_negative_hits(self) -> int:
        """Memoized capacity rejections served across the batch."""
        return self.metrics_totals()["cache.negative_hits"]

    @property
    def cache_disk_hits(self) -> int:
        """Stage lookups served by the persistent disk store tier."""
        return self.metrics_totals()["cache.disk_hits"]

    @property
    def cache_peer_hits(self) -> int:
        """Stage lookups pulled from a mesh peer's store."""
        return self.metrics_totals()["cache.peer_hits"]

    @property
    def total_retries(self) -> int:
        """Retries absorbed across the batch (transient faults, crashed
        or hung neighbours, remote resubmissions)."""
        return self.metrics_totals()["resilience.retries"]

    @property
    def total_timeouts(self) -> int:
        """Watchdog timeouts across the batch."""
        return self.metrics_totals()["resilience.timeouts"]

    @property
    def fuzz_programs(self) -> int:
        """Generated programs differentially executed across the batch."""
        return self.metrics_totals()["fuzz.programs"]

    @property
    def fuzz_unexplained_divergences(self) -> int:
        """Engine divergences not matching a documented known shape."""
        totals = self.metrics_totals()
        return totals["fuzz.divergences"] - totals["fuzz.known_divergences"]

    def succeeded(self) -> List[ServiceResult]:
        return [result for result in self.results if result.ok]

    def warp_results(self) -> List[ServiceResult]:
        """Successful warp-pipeline results — fuzz campaign shards carry
        no speedup/energy numbers and stay out of the suite tables."""
        return [result for result in self.succeeded()
                if not result.workload.startswith("fuzz:")]

    def canonical(self) -> List[Dict]:
        """The report's deterministic identity, in job order — what the
        chaos differential harness compares bit-for-bit."""
        return [result.canonical() for result in self.results]

    # ---------------------------------------------------------------- stages
    def stage_order(self) -> List[str]:
        """Stage names in flow order (first occurrence across results)."""
        order: List[str] = []
        for result in self.results:
            for stage in result.stage_wall_ms:
                if stage not in order:
                    order.append(stage)
        return order

    def stage_summary(self) -> List[Tuple[str, Dict[str, float]]]:
        """Per-stage aggregate: total host wall ms, cache hits/misses and
        the stage-level hit rate across every executed job.

        ``hits`` counts every cache-served stage (memory, bundle, negative,
        disk and peer); ``disk hits`` / ``peer hits`` additionally break
        out the subsets served by the persistent store tier locally and
        pulled from a mesh peer.
        """
        entries: List[Tuple[str, Dict[str, float]]] = []
        for stage in self.stage_order():
            wall_ms = 0.0
            hits = misses = disk = peer = 0
            for result in self.results:
                wall_ms += result.stage_wall_ms.get(stage, 0.0)
                source = result.stage_cache.get(stage)
                if source in _STAGE_HIT_SOURCES:
                    hits += 1
                    if source == SOURCE_DISK:
                        disk += 1
                    elif source == SOURCE_PEER:
                        peer += 1
                elif source == SOURCE_MISS:
                    misses += 1
            lookups = hits + misses
            entries.append((stage, {
                "wall ms": wall_ms,
                "hits": hits,
                "misses": misses,
                "disk hits": disk,
                "peer hits": peer,
                "hit rate": hits / lookups if lookups else 0.0,
            }))
        return entries

    def stage_rows(self) -> List[List[object]]:
        """Per-stage timing/hit-rate rows (metric_rows conventions)."""
        return metric_rows(self.stage_summary(), STAGE_METRIC_ORDER)

    def stage_table(self) -> str:
        return format_table(["Stage"] + list(STAGE_METRIC_ORDER),
                            self.stage_rows())

    # ----------------------------------------------------------------- tables
    def speedup_rows(self) -> List[List[object]]:
        """Suite-level speedup rows via the Figure-6 row builder."""
        return metric_rows([(result.job_name, result.speedups())
                            for result in self.warp_results()],
                           SERVICE_PLATFORM_ORDER)

    def energy_rows(self) -> List[List[object]]:
        """Suite-level normalized-energy rows via the Figure-7 row builder."""
        return metric_rows([(result.job_name, result.normalized_energies())
                            for result in self.warp_results()],
                           SERVICE_PLATFORM_ORDER)

    def speedup_table(self) -> str:
        return format_table(["Job"] + list(SERVICE_PLATFORM_ORDER),
                            self.speedup_rows())

    def energy_table(self) -> str:
        return format_table(["Job"] + list(SERVICE_PLATFORM_ORDER),
                            self.energy_rows(), float_format="{:.3f}")

    def summary(self) -> str:
        lines = [
            f"{self.num_jobs} jobs ({self.num_failed} failed) in "
            f"{self.wall_seconds:.2f}s wall "
            f"[{self.mode}, workers={self.workers}]",
            f"CAD artifact cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"({100 * self.cache_hit_rate:.0f}% hit rate, "
            f"{self.cache_negative_hits} memoized capacity rejections)",
        ]
        if self.total_retries or self.total_timeouts:
            lines.append(f"Resilience: {self.total_retries} retries, "
                         f"{self.total_timeouts} watchdog timeouts")
        if self.fuzz_programs:
            totals = self.metrics_totals()
            lines.append(
                f"Fuzzing: {totals['fuzz.programs']} programs, "
                f"{totals['fuzz.instructions']} fuzzed instructions, "
                f"{totals['fuzz.known_divergences']} known / "
                f"{self.fuzz_unexplained_divergences} unexplained "
                f"divergences ({totals['fuzz.bisect_steps']} bisect steps)")
        if self.warp_results():
            lines.append("")
            lines.append(self.speedup_table())
        if self.stage_order():
            lines.append("")
            lines.append(self.stage_table())
        return "\n".join(lines)

    # ------------------------------------------------------------------- JSON
    def to_plain(self) -> Dict:
        cache = dict(self.metrics_block("cache"))
        cache["hit_rate"] = round(self.cache_hit_rate, 4)
        return {
            "mode": self.mode,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 4),
            "num_jobs": self.num_jobs,
            "num_failed": self.num_failed,
            "cache": cache,
            "resilience": self.metrics_block("resilience"),
            "fuzz": self.metrics_block("fuzz"),
            "stages": {
                stage: {
                    "wall_ms": round(metrics["wall ms"], 4),
                    "hits": metrics["hits"],
                    "misses": metrics["misses"],
                    "disk_hits": metrics["disk hits"],
                    "peer_hits": metrics["peer hits"],
                    "hit_rate": round(metrics["hit rate"], 4),
                }
                for stage, metrics in self.stage_summary()
            },
            "jobs": [result.to_plain() for result in self.results],
            "tables": {
                "speedup": self.speedup_table()
                if self.warp_results() else "",
                "energy": self.energy_table() if self.warp_results() else "",
                "stages": self.stage_table() if self.stage_order() else "",
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_plain(), indent=indent)

    @classmethod
    def from_plain(cls, plain: Dict) -> "ServiceReport":
        """Rebuild a report from :meth:`to_plain` output (wire transport).

        Only the results and run metadata are carried; tables and
        aggregate counters are derived properties and recompute
        identically on the receiving side.
        """
        return cls(
            results=[ServiceResult.from_plain(entry)
                     for entry in plain.get("jobs", [])],
            wall_seconds=plain.get("wall_seconds", 0.0),
            mode=plain.get("mode", "serial"),
            workers=plain.get("workers", 0),
        )


# --------------------------------------------------------------------------- sweeps
def suite_sweep_jobs(
    configs: Optional[Sequence[Tuple[str, MicroBlazeConfig]]] = None,
    engines: Sequence[str] = ("threaded",),
    benchmarks: Optional[Sequence[str]] = None,
    small: bool = False,
    wcla: WclaParameters = DEFAULT_WCLA,
    max_instructions: int = 50_000_000,
    stages: Optional[Sequence[str]] = None,
) -> List[WarpJob]:
    """The built-in suite sweep: benchmarks × configurations × engines.

    ``configs`` is a sequence of ``(label, config)`` pairs, defaulting to
    the paper configuration alone.  ``stages`` optionally swaps registered
    CAD flow passes for every job of the sweep (validated by
    :class:`WarpJob`, and part of each job's dedup key exactly like
    ``WarpJob(stages=...)``).
    """
    from ..apps import benchmark_names

    if configs is None:
        configs = [("paper", PAPER_CONFIG)]
    names = list(benchmarks) if benchmarks else benchmark_names()
    stages = tuple(stages) if stages is not None else None
    jobs: List[WarpJob] = []
    for name in names:
        for label, config in configs:
            for engine in engines:
                jobs.append(WarpJob(
                    name=f"{name}/{label}/{engine}",
                    benchmark=name,
                    small=small,
                    config=config,
                    config_label=label,
                    wcla=wcla,
                    engine=engine,
                    max_instructions=max_instructions,
                    stages=stages,
                ))
    return jobs


def expand_duplicate(result: ServiceResult, job: WarpJob) -> ServiceResult:
    """Clone the primary job's result for a deduplicated twin job.

    Scheduling metadata that is *not* part of the dedup key — the name and
    the configuration label — comes from the twin itself, so reports label
    every submitted job correctly.
    """
    return replace(result, job_name=job.name, config_label=job.config_label,
                   deduped_from=result.job_name,
                   cache_hits=0, cache_misses=0, cache_negative_hits=0,
                   cache_disk_hits=0, cache_peer_hits=0, retries=0,
                   timeouts=0,
                   stage_wall_ms={}, stage_cache={}, wall_seconds=0.0,
                   fuzz_programs=0, fuzz_instructions=0, fuzz_divergences=0,
                   fuzz_known_divergences=0, fuzz_bisect_steps=0,
                   fuzz_bundles=[])
