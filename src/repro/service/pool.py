"""Worker pool and the :class:`WarpService` façade.

Execution model:

* **serial** (``workers=0``) — jobs run in-process, sharing the process's
  CAD artifact cache and compile cache.  This is also the fallback when a
  platform cannot host a process pool.
* **pooled** (``workers>=1``) — jobs run across ``workers`` process
  *shards*, each a single-worker
  :class:`concurrent.futures.ProcessPoolExecutor`.  A job routes to the
  shard addressed by the hash of its content
  (:meth:`~repro.service.jobs.WarpJob.dedup_key`), so repeated submissions
  of the same content always land on the same worker — whose module-level
  compile cache and CAD artifact cache stay warm for the worker's whole
  lifetime.  A second identical sweep through a living service is
  therefore served almost entirely from worker memory.  Job and result
  payloads are plain picklable dataclasses; on POSIX (fork start method)
  workers additionally inherit whatever the parent had already cached at
  shard creation.

Fault handling: a job that raises is caught *inside* the worker and comes
back as a failed :class:`~repro.service.jobs.ServiceResult`; transient
faults (:class:`~repro.chaos.ChaosError`) are retried in place first.  A
job that kills its worker outright (the interpreter dies) breaks only its
own shard — the other shards keep computing — and every job queued on the
broken shard is retried once in a fresh isolated single-worker pool:
innocent victims complete normally (their results count one retry), and
only the job that kills its worker a second time is reported as failed.
A job with a ``timeout_s`` budget that is still running past it is
handled by the pool *watchdog*: the hung shard's worker is killed, the
job is reported as a timeout (``timeouts=1``), and the jobs queued behind
it go through the same innocent-retry path as a crash.  Broken shards
are replaced lazily; subsequent batches run normally.  (Timeouts are a
pool feature: the serial path runs jobs on the service's own thread and
cannot preempt them.)
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import replace
from pathlib import Path
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence

from .. import chaos, obs
from ..cad import SOURCE_DISK, SOURCE_NEGATIVE, SOURCE_PEER
from ..compiler import compile_source_cached
from ..digest import shard_index
from ..microblaze.engines import DEFAULT_ENGINE
from ..power.energy import microblaze_energy, warp_energy
from ..warp.processor import WarpProcessor
from .artifact_cache import CadArtifactCache
from .jobs import ServiceReport, ServiceResult, WarpJob
from .scheduler import JobScheduler, ScheduledJob

# --------------------------------------------------------------------------- per-process cache
_PROCESS_CACHE: Optional[CadArtifactCache] = None

#: Environment variable naming a persistent on-disk artifact store
#: directory.  It is read when the per-process cache is first created, so
#: setting it before a pool spins up makes every worker — a forked local
#: shard or a gateway started from the CLI — share one store.
STORE_ENV_VAR = "REPRO_CAD_STORE"


def _store_from_environment():
    path = os.environ.get(STORE_ENV_VAR)
    if not path:
        return None
    from ..server.store import DiskArtifactStore
    return DiskArtifactStore(path)


def process_artifact_cache() -> CadArtifactCache:
    """The calling process's CAD artifact cache (created on first use).

    In a pool worker this is the per-worker warm cache; in serial mode it
    is the service process's own.  When :data:`STORE_ENV_VAR` names a
    directory, the cache is backed by a persistent
    :class:`~repro.server.store.DiskArtifactStore` tier.  Tests reset it
    with ``.clear()`` (memory tiers only).
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = CadArtifactCache(store=_store_from_environment())
    return _PROCESS_CACHE


def configure_process_store(path) -> CadArtifactCache:
    """Attach a persistent store at ``path`` to this process (and, via the
    environment, to every worker process created afterwards).

    The store is *process-wide* state (it backs the per-process cache and
    the environment workers inherit), so reconfiguring to a different
    path is refused rather than silently redirecting whoever attached
    the first store.  Calling again with the same path is a no-op.
    """
    cache = process_artifact_cache()
    store = cache.disk_store
    if store is not None and getattr(store, "root", None) != Path(str(path)):
        raise ValueError(
            f"this process already persists CAD artifacts to {store.root}; "
            f"refusing to redirect it to {path} (one store per process — "
            f"run a second gateway in its own process instead)")
    os.environ[STORE_ENV_VAR] = str(path)
    if store is None:
        cache.disk_store = _store_from_environment()
    return cache


# --------------------------------------------------------------------------- job execution
#: Transient-fault (``ChaosError``) retries per job on top of the
#: per-stage retries of the CAD flow.
JOB_TRANSIENT_RETRIES = 2


def execute_job(job: WarpJob,
                artifact_cache: Optional[CadArtifactCache] = None) -> ServiceResult:
    """Run one warp job to a :class:`ServiceResult` (never raises).

    This is the single execution path for both the serial mode and the
    pool workers.  Transient faults (:class:`~repro.chaos.ChaosError`,
    injected or real environment hiccups classified as retryable) restart
    the whole attempt up to :data:`JOB_TRANSIENT_RETRIES` times — each
    attempt builds a *fresh* result, so a half-filled attempt never leaks
    stage accounting into the report — with the absorbed retries counted
    on the final result.  Everything else fails the job immediately.
    """
    chaos.ensure_process_plan()
    obs.ensure_process_telemetry()
    start = time.perf_counter()
    retries = 0
    # The execute span joins the trace the submitting service assigned to
    # the job (parenting to its root); without one it becomes its own
    # root, so directly-invoked jobs still trace.
    with obs.span("execute", trace_id=job.trace_id,
                  job=job.name) as execute_span:
        while True:
            try:
                if chaos.ACTIVE_PLAN is not None:
                    chaos.fire(chaos.SITE_WORKER_JOB, label=job.name)
                result = _execute_attempt(job, artifact_cache)
            except chaos.ChaosError as error:
                if retries >= JOB_TRANSIENT_RETRIES:
                    result = _failed_result(
                        job, f"{type(error).__name__}: {error}")
                    break
                retries += 1
                if obs.ACTIVE is not None:
                    obs.inc("warp_retries_total", site="worker-transient")
                continue
            break
        if execute_span is not None:
            execute_span.set(status="ok" if result.ok else "failed",
                             retries=retries)
    result.retries += retries
    result.worker_pid = os.getpid()
    result.wall_seconds = time.perf_counter() - start
    result.trace_id = job.trace_id
    if obs.ACTIVE is not None:
        obs.inc("warp_jobs_total", engine=result.engine,
                status="ok" if result.ok else "failed")
        obs.observe("warp_job_wall_seconds", result.wall_seconds,
                    engine=result.engine)
        obs.flush_worker_telemetry()
    return result


def _workload_label(job: WarpJob) -> str:
    if job.fuzz_profile is not None:
        return (f"fuzz:{job.fuzz_profile}"
                f"[{job.fuzz_seed}..{job.fuzz_seed + job.fuzz_count})")
    return job.benchmark if job.benchmark else "<inline source>"


def _execute_fuzz(job: WarpJob, result: ServiceResult) -> None:
    """Run one differential fuzzing campaign shard (see :mod:`repro.fuzz`).

    The shard fails (``ok=False``) exactly when an *unexplained*
    divergence survives; each one arrives pre-bisected as a replayable
    repro bundle on ``result.fuzz_bundles``.
    """
    from ..fuzz.harness import run_campaign
    engines = list(job.fuzz_engines) if job.fuzz_engines is not None \
        else None
    precise_modes = (False, True) if job.fuzz_precise else (False,)
    report = run_campaign(
        job.fuzz_count, start_seed=job.fuzz_seed, profile=job.fuzz_profile,
        engines=engines, precise_modes=precise_modes, config=job.config,
        max_instructions=job.max_instructions)
    result.fuzz_programs = report.programs
    result.fuzz_instructions = report.instructions
    result.fuzz_divergences = (report.known_divergences
                               + report.unexplained_divergences)
    result.fuzz_known_divergences = report.known_divergences
    result.fuzz_bisect_steps = report.bisect_steps
    result.fuzz_bundles = list(report.bundles)
    if report.unexplained_divergences:
        result.ok = False
        engines_hit = sorted({entry["engine"]
                              for entry in report.divergences
                              if not entry["known"]})
        result.error = (
            f"{report.unexplained_divergences} unexplained divergence(s) "
            f"against {', '.join(engines_hit)} "
            f"({len(result.fuzz_bundles)} repro bundle(s) attached)")


def _execute_attempt(job: WarpJob,
                     artifact_cache: Optional[CadArtifactCache]) -> ServiceResult:
    """One execution attempt: compile (memoized), profile, partition
    (through the content-addressed CAD cache), co-simulate, and evaluate
    the Figure-5 energies for the software-only and warp-processed runs.
    Fuzz jobs run their differential campaign instead of the warp
    pipeline.

    Transient :class:`~repro.chaos.ChaosError` faults propagate (the
    caller owns the retry loop); every other exception is absorbed into a
    failed result — the job isolation boundary.
    """
    start = time.perf_counter()
    result = ServiceResult(
        job_name=job.name,
        workload=_workload_label(job),
        config_label=job.config_label,
        engine=job.engine if job.engine else DEFAULT_ENGINE,
        worker_pid=os.getpid(),
    )
    if job.fuzz_profile is not None:
        try:
            _execute_fuzz(job, result)
        except chaos.ChaosError:
            raise
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            result.ok = False
            result.error = f"{type(error).__name__}: {error}"
        result.wall_seconds = time.perf_counter() - start
        return result
    try:
        cache = artifact_cache if artifact_cache is not None \
            else process_artifact_cache()
        if job.benchmark is not None:
            from ..apps import build_benchmark
            bench = build_benchmark(job.benchmark, small=job.small)
            source, name = bench.source, bench.name
        else:
            source, name = job.source, job.name
        program = compile_source_cached(source, name=name,
                                        config=job.config).program
        processor = WarpProcessor(config=job.config, wcla=job.wcla,
                                  engine=job.engine, artifact_cache=cache,
                                  stage_names=job.stages)
        hits_before, misses_before = cache.counters()
        warp = processor.run(program, max_instructions=job.max_instructions)
        hits_after, misses_after = cache.counters()

        outcome = warp.partitioning
        result.partitioned = outcome.success
        result.partition_reason = outcome.reason
        result.checksum_ok = warp.checksums_match
        result.speedup = warp.speedup
        result.software_ms = warp.software_seconds * 1e3
        result.warp_ms = warp.warp_seconds * 1e3
        result.dpm_ms = outcome.dpm_seconds * 1e3
        result.cad_cache_hit = outcome.cad_cache_hit
        result.cache_hits = hits_after - hits_before
        result.cache_misses = misses_after - misses_before
        for record in outcome.stage_records:
            result.stage_wall_ms[record.stage] = record.wall_seconds * 1e3
            result.stage_cache[record.stage] = record.source
        result.cache_negative_hits = sum(
            1 for record in outcome.stage_records
            if record.source == SOURCE_NEGATIVE)
        result.cache_disk_hits = sum(
            1 for record in outcome.stage_records
            if record.source == SOURCE_DISK)
        result.cache_peer_hits = sum(
            1 for record in outcome.stage_records
            if record.source == SOURCE_PEER)
        if obs.ACTIVE is not None:
            software = warp.software_result
            obs.inc("warp_engine_instructions_total",
                    float(software.instructions), engine=result.engine)
            obs.inc("warp_engine_cycles_total", float(software.cycles),
                    engine=result.engine)

        mb_energy = microblaze_energy(warp.software_seconds,
                                      job.config.clock_mhz)
        if outcome.success:
            synthesis = outcome.synthesis
            w_energy = warp_energy(
                mb_active_seconds=warp.microblaze_seconds,
                hw_seconds=warp.hw_seconds,
                clock_mhz=job.config.clock_mhz,
                wcla_luts=synthesis.total_luts,
                uses_mac=synthesis.mac_operations > 0,
            )
        else:
            w_energy = microblaze_energy(warp.software_seconds,
                                         job.config.clock_mhz,
                                         label="MicroBlaze (Warp)")
        result.mb_energy_mj = mb_energy.total_mj
        result.warp_energy_mj = w_energy.total_mj
        result.normalized_warp_energy = w_energy.normalized_to(mb_energy)
    except chaos.ChaosError:
        raise
    except Exception as error:  # noqa: BLE001 - job isolation boundary
        result.ok = False
        result.error = f"{type(error).__name__}: {error}"
    result.wall_seconds = time.perf_counter() - start
    return result


def _worker_entry(job: WarpJob) -> ServiceResult:
    """Module-level pool entry point (must be picklable by reference)."""
    return execute_job(job)


def _collect_cache_metrics(registry) -> None:
    """Snapshot-time collector: republish this process's cache tiers'
    bespoke counters as live metric families.

    Cumulative totals *set* (not incremented) at snapshot time, so they
    are gauges; each process publishes its own totals and the spool
    merge sums them to the fleet value.  Registered at import — it only
    runs when a telemetry snapshot is taken.
    """
    cache = _PROCESS_CACHE
    if cache is not None:
        events = registry.gauge(
            "warp_cache_events",
            "CAD artifact cache events by kind (cumulative)")
        events.set(cache.hits, kind="bundle-hit")
        events.set(cache.misses, kind="bundle-miss")
        events.set(cache.negative_hits, kind="negative-hit")
        events.set(cache.disk_hits, kind="disk-hit")
        events.set(cache.peer_hits, kind="peer-hit")
        events.set(cache.store_put_errors, kind="store-put-error")
        stage_family = registry.gauge(
            "warp_cache_stage_lookups",
            "Per-stage CAD cache lookups by result (cumulative)")
        for stage, (hits, misses) in cache.stage_counters().items():
            stage_family.set(hits, stage=stage, result="hit")
            stage_family.set(misses, stage=stage, result="miss")
        for stage, disk in cache.stage_disk_hits().items():
            stage_family.set(disk, stage=stage, result="disk-hit")
        for stage, peer in cache.stage_peer_hits().items():
            stage_family.set(peer, stage=stage, result="peer-hit")
        store = cache.disk_store
        if store is not None:
            store_family = registry.gauge(
                "warp_store_events",
                "Persistent artifact store events by kind (cumulative)")
            for kind, value in store.stats().items():
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    store_family.set(value, kind=kind)
    from ..compiler import compile_cache_stats
    compile_family = registry.gauge(
        "warp_compile_cache_events",
        "Compilation memo cache events by kind (cumulative)")
    for kind, value in compile_cache_stats().items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            compile_family.set(value, kind=kind)


obs.add_collector(_collect_cache_metrics)


def _failed_result(job: WarpJob, message: str) -> ServiceResult:
    return ServiceResult(
        job_name=job.name,
        workload=_workload_label(job),
        config_label=job.config_label,
        engine=job.engine if job.engine else DEFAULT_ENGINE,
        ok=False,
        error=message,
    )


def _worker_died(job: WarpJob, error: BaseException) -> ServiceResult:
    return _failed_result(
        job, f"worker process died while running this job: {error}")


def _timed_out_result(job: WarpJob, timeout_s: float) -> ServiceResult:
    result = _failed_result(
        job, f"TimeoutError: job exceeded its {timeout_s:g}s wall-clock "
             f"budget; the watchdog killed its worker")
    result.timeouts = 1
    return result


def _backend_failed(job: WarpJob, error: BaseException) -> ServiceResult:
    """A backend raised instead of returning a result — report *what* it
    raised (e.g. a gateway's typed busy rejection), not a worker death."""
    return _failed_result(
        job, f"worker backend error: {type(error).__name__}: {error}")


# --------------------------------------------------------------------------- the service
class WarpService:
    """Batch warp-as-a-service orchestrator.

    Combines the deduplicating :class:`~repro.service.scheduler.JobScheduler`,
    the worker pool (or the serial path) and the content-addressed CAD
    cache into one object whose :meth:`run` takes a batch of
    :class:`WarpJob` specs and returns a :class:`ServiceReport`.  The
    service — and with it the pool's warm worker caches — survives across
    :meth:`run` calls, so a repeated sweep is served from cache.
    """

    def __init__(self, workers: int = 0, policy: str = "priority",
                 artifact_cache: Optional[CadArtifactCache] = None,
                 worker_fn: Callable[[WarpJob], ServiceResult] = _worker_entry):
        """``worker_fn`` is the backend seam: any ``WarpJob ->
        ServiceResult`` callable, picklable by reference (or by value, e.g.
        :class:`repro.server.client.RemoteWorkerBackend`, which fans jobs
        out to networked gateway processes).  With ``workers=0`` a custom
        backend runs in-process, one job at a time; with ``workers>=1`` it
        runs inside the content-affinity sharded pool."""
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial in-process)")
        self.workers = workers
        self.policy = policy
        #: Cache used by the serial path (pool workers use their own
        #: per-process instances).
        self.artifact_cache = artifact_cache if artifact_cache is not None \
            else process_artifact_cache()
        self._worker_fn = worker_fn
        #: Shard index -> its single-worker executor (created lazily).
        #: Guarded by ``_shards_lock``: the gateway's concurrent batch
        #: executors share one service, so shard creation, watchdog
        #: kills and close() race across threads.
        self._shards: Dict[int, ProcessPoolExecutor] = {}
        self._shards_lock = threading.Lock()

    # ------------------------------------------------------------------ pool
    @property
    def mode(self) -> str:
        return "pool" if self.workers >= 1 else "serial"

    def _shard_index(self, job: WarpJob) -> int:
        """Content-affinity routing: same job content, same worker.

        A stable digest (:func:`repro.digest.shard_index`) rather than the
        builtin ``hash()``: string hashing is salted per interpreter launch
        (``PYTHONHASHSEED``), which would make job-to-worker distribution —
        and therefore pool load balance and benchmark wall times — random
        per run.  ``dedup_key()`` is a tuple of strings/bools/ints and
        frozen dataclasses whose ``repr`` is deterministic and
        field-ordered.  :class:`repro.server.client.RemoteWorkerBackend`
        routes jobs to gateways with the same digest, so a pool of remote
        shards keeps the same content affinity as a local one.
        """
        return shard_index(repr(job.dedup_key()), self.workers)

    def _shard(self, index: int) -> ProcessPoolExecutor:
        with self._shards_lock:
            executor = self._shards.get(index)
            if executor is None:
                executor = ProcessPoolExecutor(max_workers=1)
                self._shards[index] = executor
            return executor

    def _drop_shard(self, index: int) -> None:
        with self._shards_lock:
            executor = self._shards.pop(index, None)
        if executor is not None:
            executor.shutdown(wait=False)

    def _kill_shard(self, index: int) -> None:
        """Forcibly terminate a shard whose worker is *hung* (not dead).

        ``ProcessPoolExecutor`` has no public cancel-running-work API,
        and simply dropping the executor would leave the hung worker
        alive — a non-daemon child that blocks interpreter exit at the
        atexit join.  Killing the worker process flags the executor
        broken, which fails its queued futures with
        ``BrokenProcessPool`` — the same signal a crash produces, so the
        innocent-retry path downstream handles both identically.
        """
        with self._shards_lock:
            executor = self._shards.pop(index, None)
        if executor is None:
            return
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:  # noqa: BLE001 - already-dead race
                pass
        executor.shutdown(wait=False)

    def close(self) -> None:
        """Shut every shard down (idempotent)."""
        with self._shards_lock:
            executors = list(self._shards.values())
            self._shards.clear()
        for executor in executors:
            executor.shutdown()

    def __enter__(self) -> "WarpService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- runs
    def run(self, jobs: Sequence[WarpJob]) -> ServiceReport:
        """Schedule, deduplicate and execute ``jobs``; aggregate a report.

        Results are returned in submission order, duplicates included
        (each carries ``deduped_from`` naming the job that actually ran).
        """
        scheduler = JobScheduler(policy=self.policy)
        scheduler.add_many(jobs)
        plan = scheduler.plan()

        if obs.ACTIVE is not None:
            # Assign every planned job a trace identity: the id rides the
            # job into the worker process (and across the wire), so the
            # worker-side execute/stage/store spans join the parent-side
            # root/wait/dispatch spans in one reconstructable timeline.
            for slot in plan:
                if slot.job.trace_id is None:
                    slot.job = replace(slot.job,
                                       trace_id=obs.new_trace_id())
            obs.set_gauge("warp_scheduler_planned_jobs", len(plan))
            duplicates = sum(len(slot.duplicates) for slot in plan)
            if duplicates:
                obs.inc("warp_scheduler_deduped_total", float(duplicates))

        start = time.perf_counter()
        if self.workers >= 1:
            primary = self._run_pooled(plan)
        elif self._worker_fn is not _worker_entry:
            # Custom backend, serial: every job goes through the backend
            # seam (a backend that raises is isolated to a failed result,
            # matching the in-process contract that jobs never raise).
            primary = {slot.job.name:
                       self._run_serial_slot(slot, start, self._run_backend)
                       for slot in plan}
        else:
            primary = {slot.job.name: self._run_serial_slot(
                           slot, start,
                           lambda job: execute_job(job, self.artifact_cache))
                       for slot in plan}
        wall = time.perf_counter() - start
        if obs.ACTIVE is not None:
            obs.inc("warp_batches_total", mode=self.mode)
            obs.observe("warp_batch_wall_seconds", wall, mode=self.mode)

        by_name: Dict[str, ServiceResult] = {}
        for slot in plan:
            for result in JobScheduler.expand(slot, primary[slot.job.name]):
                by_name[result.job_name] = result
        ordered = [by_name[job.name] for job in jobs]
        return ServiceReport(results=ordered, wall_seconds=wall,
                             mode=self.mode, workers=self.workers)

    def _run_serial_slot(self, slot: ScheduledJob, batch_start_perf: float,
                         run: Callable[[WarpJob], ServiceResult]) -> ServiceResult:
        """Execute one planned job on the serial path, recording its
        scheduler-wait and root trace spans when telemetry is active."""
        job = slot.job
        if obs.ACTIVE is None:
            return run(job)
        wait_s = time.perf_counter() - batch_start_perf
        obs.record_span("scheduler-wait", wait_s,
                        start_s=time.time() - wait_s,
                        trace_id=job.trace_id, parent_id=job.trace_id,
                        policy=self.policy)
        result = run(job)
        total_s = time.perf_counter() - batch_start_perf
        obs.record_span("job", total_s, start_s=time.time() - total_s,
                        trace_id=job.trace_id, span_id=job.trace_id,
                        job=job.name, mode="serial",
                        status="ok" if result.ok else "failed")
        return result

    def _record_pooled_spans(self, slot: ScheduledJob, shard: int,
                             submit_wall: float, submit_perf: float,
                             result: ServiceResult) -> None:
        """Parent-side spans for one collected pooled job: the root span,
        the shard-dispatch span, and the scheduler wait (dispatch time not
        spent executing — i.e. queueing behind shard neighbours)."""
        job = slot.job
        dispatch_s = time.perf_counter() - submit_perf
        obs.record_span("job", dispatch_s, start_s=submit_wall,
                        trace_id=job.trace_id, span_id=job.trace_id,
                        job=job.name, mode="pool",
                        status="ok" if result.ok else "failed")
        obs.record_span("shard-dispatch", dispatch_s, start_s=submit_wall,
                        trace_id=job.trace_id, parent_id=job.trace_id,
                        shard=shard)
        wait_s = max(0.0, dispatch_s - result.wall_seconds)
        obs.record_span("scheduler-wait", wait_s, start_s=submit_wall,
                        trace_id=job.trace_id, parent_id=job.trace_id,
                        policy=self.policy)

    def _run_pooled(self, plan: List[ScheduledJob]) -> Dict[str, ServiceResult]:
        telemetry = obs.ACTIVE is not None
        submissions = []
        submit_time = time.monotonic()
        submit_perf = time.perf_counter()
        submit_wall = time.time()
        for slot in plan:
            shard = self._shard_index(slot.job)
            if telemetry:
                obs.inc("warp_shard_jobs_total", shard=shard)
            submissions.append(
                (slot, shard, self._shard(shard).submit(self._worker_fn,
                                                        slot.job)))
        if telemetry:
            obs.set_gauge("warp_shards_active", len(self._shards))
        results: Dict[str, ServiceResult] = {}
        broken: List[ScheduledJob] = []
        dead_shards = set()
        timed_out_shards = set()
        for slot, shard, future in submissions:
            if shard in dead_shards:
                # The shard died (crash or watchdog kill) while an
                # earlier job was being collected; everything queued
                # behind it is an innocent victim — retry, don't wait.
                broken.append(slot)
                continue
            # Watchdog deadline: shard queues are FIFO and collected in
            # the same order, so when this wait times out, *this* job is
            # the one hogging the worker — innocents behind it go to the
            # broken-shard retry path.
            deadline = None
            if slot.timeout_s is not None:
                deadline = max(0.0, submit_time + slot.timeout_s
                               - time.monotonic())
            try:
                result = future.result(timeout=deadline)
                results[slot.job.name] = result
                if telemetry:
                    self._record_pooled_spans(slot, shard, submit_wall,
                                              submit_perf, result)
            except FuturesTimeoutError:
                self._kill_shard(shard)
                dead_shards.add(shard)
                timed_out_shards.add(shard)
                results[slot.job.name] = _timed_out_result(slot.job,
                                                           slot.timeout_s)
                if telemetry:
                    obs.inc("warp_timeouts_total")
                    obs.inc("warp_worker_restarts_total", reason="timeout")
            except BrokenProcessPool:
                broken.append(slot)
                dead_shards.add(shard)
                if telemetry:
                    obs.inc("warp_worker_restarts_total", reason="crash")
            except Exception as error:  # noqa: BLE001 - submission-side fault
                results[slot.job.name] = _backend_failed(slot.job, error)
        for shard in dead_shards - timed_out_shards:
            # The shard's worker died; drop the executor (a fresh one is
            # created lazily on the next submission to this shard).
            # Watchdog-killed shards were already removed by _kill_shard.
            self._drop_shard(shard)
        for slot in broken:
            # Re-run every job queued on a dead shard in an isolated pool:
            # innocent victims complete (counted as one retry), the
            # actual crasher fails cleanly.
            result = self._retry_isolated(slot.job,
                                          timeout_s=slot.timeout_s)
            result.retries += 1
            results[slot.job.name] = result
            if telemetry:
                obs.inc("warp_retries_total", site="pool-crash")
                self._record_pooled_spans(slot, self._shard_index(slot.job),
                                          submit_wall, submit_perf, result)
        if telemetry:
            obs.set_gauge("warp_shards_active", len(self._shards))
        return results

    def _run_backend(self, job: WarpJob) -> ServiceResult:
        try:
            return self._worker_fn(job)
        except Exception as error:  # noqa: BLE001 - backend isolation boundary
            return _backend_failed(job, error)

    def _retry_isolated(self, job: WarpJob,
                        timeout_s: Optional[float] = None) -> ServiceResult:
        try:
            with ProcessPoolExecutor(max_workers=1) as isolated:
                future = isolated.submit(self._worker_fn, job)
                try:
                    return future.result(timeout=timeout_s)
                except FuturesTimeoutError:
                    # Hung again, alone this time: kill the worker so
                    # the ``with`` join below can complete, and report
                    # the timeout.
                    for process in list(getattr(isolated, "_processes",
                                                {}).values()):
                        try:
                            process.kill()
                        except Exception:  # noqa: BLE001
                            pass
                    return _timed_out_result(job, timeout_s)
        except BrokenProcessPool as error:
            return _worker_died(job, error)
