"""``repro-warp`` — command-line front end of the warp service.

Local subcommands::

    repro-warp suite [--benchmarks brev,matmul] [--configs paper,minimal]
                     [--engines threaded,jit,interp] [--small] [--workers N]
                     [--stages decompile,synthesis,...] [--store DIR]
                     [--repeat N] [--out report.json]

runs the built-in suite sweep (benchmarks × configurations × engines;
``--stages`` swaps registered CAD passes for every job of the sweep,
entering each job's dedup key exactly like ``WarpJob(stages=...)``), and ::

    repro-warp jobs examples/service_jobs.json [--workers N] [--out ...]

runs a declarative job file.  Networked subcommands::

    repro-warp serve [--host H] [--port P] [--workers N]
                     [--queue-limit N] [--store DIR] [--peer H:P]
                     [--max-batches N] [--client-quota N]

starts a WARPNET gateway fronting a warp service (``--store`` persists
CAD artifacts across restarts, ``--peer`` joins a gateway mesh that
replicates warm stage artifacts, ``--max-batches`` bounds concurrent
batch execution and ``--client-quota`` caps per-client admission), ::

    repro-warp submit examples/service_jobs.json --gateway HOST:PORT
                      [--no-wait] [--out report.json]

submits a job file to a running gateway, ::

    repro-warp remote-suite --gateways H:P[,H:P...] [suite flags]

runs the built-in sweep through remote gateways via the
:class:`~repro.server.client.RemoteWorkerBackend` (one local relay shard
per gateway, content-affinity routed), and the observability verbs ::

    repro-warp metrics --gateway HOST:PORT [--prom] [--spans] [--out F]
    repro-warp top     --gateway HOST:PORT [--interval S] [--iterations N]
    repro-warp mesh    --gateway HOST:PORT

scrape a running gateway's live telemetry (``--prom`` renders the
Prometheus text exposition) and poll it into a terminal dashboard of
queue depth, shard occupancy, per-stage hit rates and retry/timeout
counters.  Local runs accept ``--trace-out spans.jsonl`` to record and
export the run's trace spans.  Finally ::

    repro-warp hot-edges [--benchmarks brev,...] [--engine threaded]
                         [--top N] [--small] [--out edges.json]

profiles each kernel with the on-chip profiler model and dumps its
hottest taken-branch edges — the counts the region engine's promotion
threshold (and ``_seed_from_hooks`` pre-warming) operates on, and ::

    repro-warp fuzz [--seeds N] [--seed-start S] [--profile mixed]
                    [--engines interp,threaded,...] [--jobs N]
                    [--precise-fault-stats] [--workers N] [--out ...]

runs a differential fuzzing campaign (see :mod:`repro.fuzz`): N generated
programs cross-checked across the engine registry, the seed range
sharded into jobs across the worker pool, and every unexplained
divergence automatically bisected to a replayable repro bundle in the
JSON report.

Job files are JSON::

    {"jobs": [
        {"name": "brev-fast", "benchmark": "brev", "engine": "threaded"},
        {"name": "brev-nobs", "benchmark": "brev", "small": true,
         "priority": 5, "config": {"use_barrel_shifter": false},
         "config_label": "no-bs"},
        {"name": "greedy", "benchmark": "idct",
         "stages": ["decompile", "synthesis", "place", "route-greedy",
                    "implement", "binary-update"]},
        {"name": "inline", "source": "int main() { ... }"}
    ]}

where ``config`` holds :class:`~repro.microblaze.config.MicroBlazeConfig`
field overrides applied to the paper configuration and ``stages``
optionally swaps registered CAD flow passes (see
:func:`repro.cad.available_stage_names`).  Both subcommands print the
suite-level speedup/energy tables and write the full JSON report (per-job
metrics, CAD-cache and per-stage hit/miss counters, per-stage wall times)
to ``--out``.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..microblaze.config import MINIMAL_CONFIG, PAPER_CONFIG, MicroBlazeConfig
from .jobs import JobSpecError, ServiceReport, WarpJob, suite_sweep_jobs
from .pool import WarpService

#: Named processor configurations selectable from the command line.
NAMED_CONFIGS: Dict[str, MicroBlazeConfig] = {
    "paper": PAPER_CONFIG,
    "minimal": MINIMAL_CONFIG,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-warp",
        description="Batch warp-processing service: run warp jobs over a "
                    "worker pool with a content-addressed CAD cache.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def output(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--out", type=Path, default=None,
                         help="write the JSON report here")
        sub.add_argument("--quiet", action="store_true",
                         help="suppress the table output")

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workers", type=int, default=0,
                         help="pool worker processes (0 = serial in-process, "
                              "the default)")
        sub.add_argument("--policy", choices=("priority", "fifo"),
                         default="priority", help="job ordering policy")
        sub.add_argument("--store", type=Path, default=None,
                         help="persistent on-disk CAD artifact store "
                              "directory (created if missing; shared by "
                              "pool workers)")
        sub.add_argument("--chaos-seed", type=int, default=None,
                         help="install the standard deterministic fault "
                              "plan with this seed (exported to pool "
                              "workers): injected wire/store/CAD faults "
                              "exercise the recovery policies — the report "
                              "stays identical to a fault-free run, only "
                              "slower")
        sub.add_argument("--trace-out", type=Path, default=None,
                         help="record telemetry during the run and export "
                              "its trace spans (scheduler→shard→stage→"
                              "store timelines) as JSONL here")
        output(sub)

    def sweep_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--benchmarks", default=None,
                         help="comma-separated benchmark names "
                              "(default: the full six-benchmark suite)")
        sub.add_argument("--configs", default="paper",
                         help=f"comma-separated configuration names from "
                              f"{sorted(NAMED_CONFIGS)} (default: paper)")
        from ..microblaze.engines import engine_names
        sub.add_argument("--engines", default="threaded",
                         help="comma-separated execution engines from the "
                              f"registry ({', '.join(engine_names())})")
        sub.add_argument("--small", action="store_true",
                         help="use the reduced-size benchmark parameters")
        sub.add_argument("--stages", default=None,
                         help="comma-separated CAD stage names replacing the "
                              "default flow for every job of the sweep "
                              "(e.g. decompile,synthesis,place,route-greedy,"
                              "implement,binary-update); part of each job's "
                              "dedup key, exactly like a job file's "
                              "'stages' field")

    suite = subparsers.add_parser(
        "suite", help="run the built-in suite sweep (benchmarks × configs "
                      "× engines)")
    sweep_flags(suite)
    suite.add_argument("--repeat", type=int, default=1,
                       help="run the sweep N times through one service "
                            "(later repeats are served by the CAD cache)")
    common(suite)

    jobs = subparsers.add_parser("jobs", help="run a JSON job file")
    jobs.add_argument("jobfile", type=Path)
    common(jobs)

    serve = subparsers.add_parser(
        "serve", help="start a WARPNET gateway fronting a warp service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7877,
                       help="listening port (0 = ephemeral; default 7877)")
    serve.add_argument("--workers", type=int, default=0,
                       help="pool worker processes behind the gateway")
    serve.add_argument("--policy", choices=("priority", "fifo"),
                       default="priority")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="admission limit: queued+running jobs beyond "
                            "this are rejected with a typed busy reply")
    serve.add_argument("--store", type=Path, default=None,
                       help="persistent CAD artifact store directory (the "
                            "gateway starts warm after a restart)")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the telemetry plane (the metrics verb "
                            "answers with enabled=false; zero per-job "
                            "overhead)")
    serve.add_argument("--peer", action="append", default=None,
                       metavar="HOST:PORT",
                       help="join the gateway mesh through this running "
                            "peer (repeatable; the gateways replicate "
                            "warm stage artifacts over the ring)")
    serve.add_argument("--max-batches", type=int, default=None,
                       help="batches executed concurrently against the "
                            "shared worker pool (default 4)")
    serve.add_argument("--client-quota", type=int, default=None,
                       help="per-client admission cap: a client whose "
                            "pending jobs would exceed this gets a typed "
                            "busy reply (default: no per-client cap)")

    submit = subparsers.add_parser(
        "submit", help="submit a JSON job file to a running gateway")
    submit.add_argument("jobfile", type=Path)
    submit.add_argument("--gateway", default="127.0.0.1:7877",
                        help="gateway address host:port")
    submit.add_argument("--no-wait", action="store_true",
                        help="enqueue and print the batch id instead of "
                             "waiting for the report")
    submit.add_argument("--no-retry", action="store_true",
                        help="fail on the first transient gateway error "
                             "instead of retrying with backoff")
    output(submit)

    remote = subparsers.add_parser(
        "remote-suite", help="run the built-in sweep on remote gateways "
                             "via the RemoteWorkerBackend")
    remote.add_argument("--gateways", required=True,
                        help="comma-separated gateway addresses host:port")
    sweep_flags(remote)
    output(remote)

    metrics_cmd = subparsers.add_parser(
        "metrics", help="scrape a running gateway's live telemetry "
                        "snapshot (metric families + trace spans)")
    metrics_cmd.add_argument("--gateway", default="127.0.0.1:7877",
                             help="gateway address host:port")
    metrics_cmd.add_argument("--prom", action="store_true",
                             help="render the Prometheus text exposition "
                                  "instead of JSON")
    metrics_cmd.add_argument("--spans", action="store_true",
                             help="include the trace spans in the JSON "
                                  "output")
    metrics_cmd.add_argument("--out", type=Path, default=None,
                             help="write the output here instead of stdout")

    top = subparsers.add_parser(
        "top", help="poll a gateway's telemetry into a live terminal view "
                    "(queue depth, shard occupancy, stage hit rates, "
                    "retries/timeouts)")
    top.add_argument("--gateway", default="127.0.0.1:7877",
                     help="gateway address host:port")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls (default 2)")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N polls (0 = run until Ctrl-C)")

    mesh = subparsers.add_parser(
        "mesh", help="show a gateway's mesh membership, hash ring version "
                     "and peer replication counters")
    mesh.add_argument("--gateway", default="127.0.0.1:7877",
                      help="gateway address host:port")

    fuzz = subparsers.add_parser(
        "fuzz", help="run a differential fuzzing campaign: generated "
                     "programs cross-checked across every registered "
                     "engine, unexplained divergences auto-bisected to "
                     "replayable repro bundles")
    fuzz.add_argument("--seeds", type=int, default=200,
                      help="number of consecutive generator seeds "
                           "(default 200)")
    fuzz.add_argument("--seed-start", type=int, default=0,
                      help="first seed of the campaign (default 0)")
    from ..fuzz.generator import profile_names as _profile_names
    fuzz.add_argument("--profile", default="mixed",
                      help="generator profile "
                           f"({', '.join(_profile_names())})")
    from ..microblaze.engines import engine_names as _fuzz_engine_names
    fuzz.add_argument("--engines", default=None,
                      help="comma-separated engines to cross-check "
                           f"({', '.join(_fuzz_engine_names())}; "
                           "default: all registered)")
    fuzz.add_argument("--jobs", type=int, default=0,
                      help="split the seed range into N campaign shards "
                           "(0 = one shard per worker, or a single shard "
                           "when serial)")
    fuzz.add_argument("--precise-fault-stats", action="store_true",
                      help="also sweep precise_fault_stats mode")
    fuzz.add_argument("--max-instructions", type=int, default=2_000_000,
                      help="per-run instruction budget (default 2M)")
    common(fuzz)

    hot = subparsers.add_parser(
        "hot-edges", help="profile benchmark kernels and dump their "
                          "hottest branch edges (the candidates the "
                          "region engine promotes past its threshold)")
    hot.add_argument("--benchmarks", default=None,
                     help="comma-separated benchmark names "
                          "(default: the full six-benchmark suite)")
    hot.add_argument("--config", choices=sorted(NAMED_CONFIGS),
                     default="paper", help="processor configuration")
    from ..microblaze.engines import engine_names as _engine_names
    hot.add_argument("--engine", default="threaded",
                     help="execution engine carrying the profiler hook "
                          f"({', '.join(_engine_names())})")
    hot.add_argument("--small", action="store_true",
                     help="use the reduced-size benchmark parameters")
    hot.add_argument("--top", type=int, default=10,
                     help="edges listed per kernel (default 10)")
    hot.add_argument("--out", type=Path, default=None,
                     help="also write the full dump as JSON here")
    hot.add_argument("--quiet", action="store_true",
                     help="suppress the table output")
    return parser


# --------------------------------------------------------------------------- job files
def _config_from_spec(spec: Dict, job_name: str) -> MicroBlazeConfig:
    if not isinstance(spec, dict):
        raise JobSpecError(f"job {job_name!r}: 'config' must be an object of "
                           f"MicroBlazeConfig field overrides")
    valid = {field.name for field in dataclasses.fields(MicroBlazeConfig)}
    unknown = set(spec) - valid
    if unknown:
        raise JobSpecError(f"job {job_name!r}: unknown config fields "
                           f"{sorted(unknown)}")
    # Only scalar fields are overridable from a job file; structured fields
    # (the pipeline timing table) would also break the frozen config's
    # hashability, which the scheduler's dedup key relies on.
    for key, value in spec.items():
        if not isinstance(value, (bool, int, float)) or value is None:
            raise JobSpecError(
                f"job {job_name!r}: config field {key!r} must be a scalar "
                f"(bool/int/float), got {type(value).__name__}"
            )
    try:
        return dataclasses.replace(PAPER_CONFIG, **spec)
    except (TypeError, ValueError) as error:
        raise JobSpecError(f"job {job_name!r}: invalid config overrides: "
                           f"{error}") from error


def _int_field(entry: Dict, key: str, default: int, path: Path) -> int:
    value = entry.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobSpecError(f"{path}: job {entry['name']!r}: {key!r} must be "
                           f"an integer, got {type(value).__name__}")
    return value


def load_job_file(path: Path) -> List[WarpJob]:
    """Parse a JSON job file into :class:`WarpJob` specs."""
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise JobSpecError(f"{path}: not valid JSON: {error}") from error
    entries = payload.get("jobs") if isinstance(payload, dict) else None
    if not isinstance(entries, list) or not entries:
        raise JobSpecError(f"{path}: expected an object with a non-empty "
                           f"'jobs' array")
    jobs: List[WarpJob] = []
    allowed = {"name", "benchmark", "source", "small", "engine", "priority",
               "max_instructions", "config", "config_label", "stages",
               "timeout_s", "fuzz_profile", "fuzz_seed", "fuzz_count",
               "fuzz_engines", "fuzz_precise"}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or "name" not in entry:
            raise JobSpecError(f"{path}: job #{index} must be an object with "
                               f"a 'name'")
        unknown = set(entry) - allowed
        if unknown:
            raise JobSpecError(f"{path}: job {entry['name']!r} has unknown "
                               f"fields {sorted(unknown)}")
        config_spec = entry.get("config", {})
        config = _config_from_spec(config_spec, entry["name"]) if config_spec \
            else PAPER_CONFIG
        jobs.append(WarpJob(
            name=entry["name"],
            benchmark=entry.get("benchmark"),
            source=entry.get("source"),
            small=bool(entry.get("small", False)),
            config=config,
            config_label=entry.get("config_label",
                                   "custom" if config_spec else "paper"),
            engine=entry.get("engine"),
            priority=_int_field(entry, "priority", 0, path),
            max_instructions=_int_field(entry, "max_instructions",
                                        50_000_000, path),
            # Shape, registry membership and slot coverage are validated by
            # WarpJob itself (JobSpecError).
            stages=entry.get("stages"),
            timeout_s=entry.get("timeout_s"),
            fuzz_profile=entry.get("fuzz_profile"),
            fuzz_seed=_int_field(entry, "fuzz_seed", 0, path),
            fuzz_count=_int_field(entry, "fuzz_count", 25, path),
            fuzz_engines=entry.get("fuzz_engines"),
            fuzz_precise=bool(entry.get("fuzz_precise", False)),
        ))
    return jobs


def _split(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


# --------------------------------------------------------------------------- helpers
def _sweep_jobs_from_args(args) -> List[WarpJob]:
    configs = []
    for label in _split(args.configs):
        if label not in NAMED_CONFIGS:
            raise JobSpecError(f"unknown config {label!r}; choose "
                               f"from {sorted(NAMED_CONFIGS)}")
        configs.append((label, NAMED_CONFIGS[label]))
    engines = _split(args.engines)
    benchmarks = _split(args.benchmarks) if args.benchmarks else None
    stages = _split(args.stages) if args.stages else None
    return suite_sweep_jobs(configs=configs, engines=engines,
                            benchmarks=benchmarks, small=args.small,
                            stages=stages)


def _fuzz_jobs_from_args(args) -> List[WarpJob]:
    """Shard one differential fuzzing campaign into :class:`WarpJob`\\ s.

    The seed range splits into contiguous shards (``--jobs``, defaulting
    to one per pool worker) so ``--workers N`` fans the campaign across
    the pool — or across remote gateways via ``submit`` with a fuzz job
    file.  Unknown engine names fail with exit code 2, matching
    ``suite --engines`` and ``hot-edges --engine``.
    """
    from ..microblaze.engines import UnknownEngineError, validate_engine_name

    if args.seeds <= 0:
        raise JobSpecError("--seeds must be positive")
    engines = None
    if args.engines:
        try:
            engines = tuple(validate_engine_name(name)
                            for name in _split(args.engines))
        except UnknownEngineError as error:
            raise JobSpecError(str(error)) from error
    shards = args.jobs if args.jobs > 0 else max(1, args.workers)
    shards = min(shards, args.seeds)
    base, extra = divmod(args.seeds, shards)
    jobs: List[WarpJob] = []
    start = args.seed_start
    for index in range(shards):
        count = base + (1 if index < extra else 0)
        jobs.append(WarpJob(
            name=f"fuzz-{args.profile}-{start}..{start + count}",
            fuzz_profile=args.profile,
            fuzz_seed=start,
            fuzz_count=count,
            fuzz_engines=engines,
            fuzz_precise=args.precise_fault_stats,
            max_instructions=args.max_instructions,
        ))
        start += count
    return jobs


def _emit_reports(reports: List[ServiceReport], args) -> int:
    """Print and/or write the reports; exit code reflects job failures in
    *any* sweep (a warm repeat can mask a cold-sweep worker death)."""
    report = reports[-1]
    repeats = len(reports)
    if not args.quiet:
        for index, item in enumerate(reports):
            if repeats > 1:
                print(f"--- sweep {index + 1}/{repeats} ---")
            print(item.summary())
            print()
    if args.out is not None:
        plain = report.to_plain()
        if repeats > 1:
            # The top level IS the final sweep; earlier sweeps are listed
            # separately (no duplicate serialization of the last one).
            plain["repeat_count"] = repeats
            plain["earlier_sweeps"] = [item.to_plain()
                                       for item in reports[:-1]]
        args.out.write_text(json.dumps(plain, indent=2) + "\n")
        if not args.quiet:
            print(f"report written to {args.out}")
    return 1 if any(item.num_failed for item in reports) else 0


# ---------------------------------------------------------------- networked verbs
def _cmd_serve(args) -> int:
    from ..server.gateway import DEFAULT_MAX_CONCURRENT_BATCHES, \
        WarpGateway, start_gateway_thread

    max_batches = (args.max_batches if args.max_batches is not None
                   else DEFAULT_MAX_CONCURRENT_BATCHES)
    gateway = WarpGateway(host=args.host, port=args.port,
                          workers=args.workers, policy=args.policy,
                          queue_limit=args.queue_limit,
                          store_path=args.store,
                          telemetry=not args.no_telemetry,
                          max_concurrent_batches=max_batches,
                          client_quota=args.client_quota,
                          peers=args.peer)
    thread = start_gateway_thread(gateway)
    print(f"repro-warp gateway listening on {gateway.address} "
          f"[{gateway.service.mode}, workers={gateway.service.workers}, "
          f"queue limit {gateway.queue_limit} jobs, "
          f"{max_batches} concurrent batches"
          + (f", store {args.store}" if args.store else "")
          + (f", mesh peers {','.join(args.peer)}" if args.peer else "")
          + (", telemetry off" if args.no_telemetry else "")
          + "]; stop with the shutdown verb or Ctrl-C", flush=True)
    try:
        thread.join()
    except KeyboardInterrupt:
        gateway.request_stop()
        thread.join(timeout=30)
    return 0


def _cmd_submit(args) -> int:
    from ..retry import DEFAULT_REMOTE_POLICY
    from ..server import client as server_client
    from ..server.protocol import GatewayBusyError, GatewayDrainingError, \
        HandshakeError, ProtocolError, RemoteError

    jobs = load_job_file(args.jobfile)
    try:
        server_client.parse_address(args.gateway)
    except ValueError as error:
        raise JobSpecError(str(error)) from error
    retry = None if args.no_retry else DEFAULT_REMOTE_POLICY
    try:
        with server_client.GatewayClient(args.gateway, retry=retry) as client:
            if args.no_wait:
                batch_id = client.submit(jobs, wait=False)
                print(batch_id)
                return 0
            report = client.submit(jobs, wait=True)
    except GatewayDrainingError as error:
        print(f"repro-warp: gateway draining: {error}", file=sys.stderr)
        return 3
    except GatewayBusyError as error:
        print(f"repro-warp: gateway busy (429): {error}", file=sys.stderr)
        return 3
    except (HandshakeError, ProtocolError, RemoteError,
            ConnectionError, OSError) as error:
        print(f"repro-warp: gateway {args.gateway}: {error}",
              file=sys.stderr)
        return 3
    return _emit_reports([report], args)


def _cmd_metrics(args) -> int:
    from .. import obs
    from ..server import client as server_client
    from ..server.protocol import HandshakeError, ProtocolError, RemoteError

    try:
        with server_client.GatewayClient(args.gateway) as client:
            reply = client.metrics(include_spans=args.spans or not args.prom)
    except (HandshakeError, ProtocolError, RemoteError,
            ConnectionError, OSError) as error:
        print(f"repro-warp: gateway {args.gateway}: {error}",
              file=sys.stderr)
        return 3
    if args.prom:
        text = obs.prometheus_text(reply.get("metrics") or {})
    else:
        payload = {key: reply.get(key)
                   for key in ("enabled", "queue_depth", "queue_limit",
                               "draining", "mode", "workers", "cursor",
                               "metrics")}
        if args.spans:
            payload["spans"] = reply.get("spans", [])
        text = json.dumps(payload, indent=2) + "\n"
    if args.out is not None:
        args.out.write_text(text)
        print(f"metrics written to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_mesh(args) -> int:
    from ..server import client as server_client
    from ..server.protocol import HandshakeError, ProtocolError, RemoteError

    try:
        with server_client.GatewayClient(args.gateway) as client:
            reply = client.mesh_peers()
    except (HandshakeError, ProtocolError, RemoteError,
            ConnectionError, OSError) as error:
        print(f"repro-warp: gateway {args.gateway}: {error}",
              file=sys.stderr)
        return 3
    members = reply.get("members") or []
    print(f"mesh of {reply.get('self')} — {len(members)} member(s), "
          f"ring version {reply.get('ring_version')}")
    for member in members:
        marker = " (self)" if member == reply.get("self") else ""
        print(f"  {member}{marker}")
    print(f"joins: {reply.get('joins', 0)}  "
          f"member drops: {reply.get('member_drops', 0)}")
    print(f"peer fetches: {reply.get('peer_fetch_hits', 0)} hits  "
          f"{reply.get('peer_fetch_misses', 0)} misses  "
          f"{reply.get('peer_fetch_failures', 0)} failures")
    return 0


# ----------------------------------------------------------------- repro-warp top
#: Stage-lookup sources that count as cache-served in the top view
#: (mirrors the report's stage hit accounting).
_TOP_HIT_SOURCES = ("hit", "bundle", "negative-hit", "disk-hit", "peer-hit")


def _samples(metrics: Dict, family: str) -> List[Dict]:
    return (metrics.get(family) or {}).get("samples", [])


def _render_top(reply: Dict, new_spans: int) -> str:
    """One ``repro-warp top`` frame from a ``metrics`` reply."""
    metrics = reply.get("metrics") or {}
    lines = [
        f"repro-warp top — mode={reply.get('mode')} "
        f"workers={reply.get('workers')}"
        + (" [DRAINING]" if reply.get("draining") else ""),
        f"queue: {reply.get('queue_depth')}/{reply.get('queue_limit')} jobs",
    ]
    for sample in _samples(metrics, "warp_queue_oldest_age_seconds"):
        if sample["value"] > 0:
            lines[-1] += f"  (oldest batch {sample['value']:.1f}s)"
    jobs: Dict[str, int] = {}
    for sample in _samples(metrics, "warp_jobs_total"):
        status = sample["labels"].get("status", "?")
        jobs[status] = jobs.get(status, 0) + int(sample["value"])
    if jobs:
        lines.append("jobs: " + "  ".join(f"{status}={count}" for
                                          status, count in sorted(jobs.items())))
    shards = _samples(metrics, "warp_shard_jobs_total")
    if shards:
        occupancy = "  ".join(
            f"shard {sample['labels'].get('shard')}:"
            f"{int(sample['value'])}" for sample in shards)
        lines.append(f"shard jobs: {occupancy}")
    stages: Dict[str, Dict[str, int]] = {}
    for sample in _samples(metrics, "warp_stage_lookups_total"):
        stage = sample["labels"].get("stage", "?")
        source = sample["labels"].get("source", "?")
        if source not in _TOP_HIT_SOURCES and source != "miss":
            continue  # uncached stages have no hit rate to show
        bucket = stages.setdefault(stage, {"hits": 0, "misses": 0})
        if source in _TOP_HIT_SOURCES:
            bucket["hits"] += int(sample["value"])
        else:
            bucket["misses"] += int(sample["value"])
    if stages:
        lines.append("stage hit rates:")
        for stage, bucket in stages.items():
            lookups = bucket["hits"] + bucket["misses"]
            rate = bucket["hits"] / lookups if lookups else 0.0
            lines.append(f"  {stage:<16s} {bucket['hits']:>5d} hits "
                         f"{bucket['misses']:>5d} misses  "
                         f"{100 * rate:5.1f}%")
    retries = {sample["labels"].get("site", "?"): int(sample["value"])
               for sample in _samples(metrics, "warp_retries_total")}
    timeouts = sum(int(sample["value"])
                   for sample in _samples(metrics, "warp_timeouts_total"))
    if retries or timeouts:
        parts = [f"{site}={count}" for site, count in sorted(retries.items())]
        lines.append(f"retries: {'  '.join(parts) if parts else 'none'}"
                     f"  timeouts: {timeouts}")
    lines.append(f"trace spans since last poll: {new_spans}")
    return "\n".join(lines) + "\n"


def _cmd_top(args) -> int:
    import time as _time

    from ..server import client as server_client
    from ..server.protocol import HandshakeError, ProtocolError, RemoteError

    cursor = 0
    polls = 0
    try:
        with server_client.GatewayClient(args.gateway) as client:
            while True:
                reply = client.metrics(since=cursor)
                new_spans = len(reply.get("spans", []))
                cursor = reply.get("cursor", cursor)
                if not reply.get("enabled", False):
                    print("gateway telemetry is disabled "
                          "(started with --no-telemetry)")
                    return 0
                if sys.stdout.isatty():  # pragma: no cover - interactive
                    sys.stdout.write("\x1b[2J\x1b[H")
                sys.stdout.write(_render_top(reply, new_spans))
                sys.stdout.flush()
                polls += 1
                if args.iterations and polls >= args.iterations:
                    return 0
                _time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0
    except (HandshakeError, ProtocolError, RemoteError,
            ConnectionError, OSError) as error:
        print(f"repro-warp: gateway {args.gateway}: {error}",
              file=sys.stderr)
        return 3


def _cmd_hot_edges(args) -> int:
    """Profile each selected kernel and dump its hottest branch edges.

    This is the offline view of what the region engine's promotion
    heuristic sees: taken-branch edges by execution count, hottest
    first, with backward (loop) edges marked — exactly the counts
    :meth:`RegionEngine._seed_from_hooks` would warm up from.
    """
    from ..apps import build_suite
    from ..compiler.driver import compile_source_cached
    from ..microblaze import UnknownEngineError, run_program
    from ..microblaze.engines import validate_engine_name
    from ..profiler.profiler import OnChipProfiler

    config = NAMED_CONFIGS[args.config]
    names = _split(args.benchmarks) if args.benchmarks else None
    try:
        engine = validate_engine_name(args.engine)
        benchmarks = build_suite(small=args.small, names=names)
    except (UnknownEngineError, KeyError, ValueError) as error:
        print(f"repro-warp: {error}", file=sys.stderr)
        return 2

    dump: Dict[str, List[Dict[str, object]]] = {}
    for benchmark in benchmarks:
        program = compile_source_cached(benchmark.source,
                                        name=benchmark.name,
                                        config=config).program
        profiler = OnChipProfiler()
        run_program(program, config, engine=engine, listeners=[profiler])
        ranked = sorted(profiler.edge_counts.items(),
                        key=lambda item: (-item[1], item[0]))
        dump[benchmark.name] = [
            {"src": src, "dst": dst, "count": count,
             "backward": dst <= src}
            for (src, dst), count in ranked[:max(1, args.top)]
        ]
        if not args.quiet:
            print(f"{benchmark.name}: {len(profiler.edge_counts)} edges, "
                  f"{profiler.total_branches} branches")
            for edge in dump[benchmark.name]:
                loop = "  loop" if edge["backward"] else ""
                print(f"  {edge['src']:#08x} -> {edge['dst']:#08x}"
                      f"  {edge['count']:>10}{loop}")
    if args.out is not None:
        args.out.write_text(json.dumps(dump, indent=2) + "\n")
        if not args.quiet:
            print(f"hot-edge dump written to {args.out}")
    return 0


def _cmd_remote_suite(args, jobs: List[WarpJob]) -> int:
    from ..server.client import RemoteWorkerBackend

    addresses = _split(args.gateways)
    try:
        backend = RemoteWorkerBackend(addresses)
    except ValueError as error:
        raise JobSpecError(str(error)) from error
    # One local relay shard per gateway: the shard digest and the
    # backend's gateway digest agree, so each shard talks to exactly one
    # gateway and the gateways execute concurrently.
    workers = len(addresses) if len(addresses) > 1 else 0
    try:
        with WarpService(workers=workers, worker_fn=backend) as service:
            report = service.run(jobs)
    finally:
        backend.close()
    return _emit_reports([report], args)


# --------------------------------------------------------------------------- entry point
def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "mesh":
            return _cmd_mesh(args)
        if args.command == "hot-edges":
            return _cmd_hot_edges(args)
        if args.command == "remote-suite":
            return _cmd_remote_suite(args, _sweep_jobs_from_args(args))
        if args.command == "suite":
            jobs = _sweep_jobs_from_args(args)
            repeats = max(1, args.repeat)
        elif args.command == "fuzz":
            jobs = _fuzz_jobs_from_args(args)
            repeats = 1
        else:
            jobs = load_job_file(args.jobfile)
            repeats = 1
    except JobSpecError as error:
        print(f"repro-warp: {error}", file=sys.stderr)
        return 2

    artifact_cache = None
    if args.store is not None:
        from .pool import configure_process_store
        artifact_cache = configure_process_store(args.store)

    with contextlib.ExitStack() as stack:
        if getattr(args, "chaos_seed", None) is not None:
            from .. import chaos
            # export=True ships the plan to pool workers through the
            # environment; recovery keeps the report identical to a
            # fault-free run, so this is a live drill, not a demo mode.
            stack.enter_context(chaos.active_plan(
                chaos.standard_plan(args.chaos_seed), export=True))
        telemetry = None
        if getattr(args, "trace_out", None) is not None:
            from .. import obs
            # export=True ships the spool directory to pool workers so
            # their spans fold into the exported timeline.
            telemetry = stack.enter_context(
                obs.active_telemetry(export=True))
        service = stack.enter_context(
            WarpService(workers=args.workers, policy=args.policy,
                        artifact_cache=artifact_cache))
        reports: List[ServiceReport] = []
        for _ in range(repeats):
            reports.append(service.run(jobs))
        if telemetry is not None:
            telemetry.collect()  # drain worker span spool before export
            telemetry.spans.export_jsonl(args.trace_out)
            print(f"trace spans written to {args.trace_out}",
                  file=sys.stderr)
    return _emit_reports(reports, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
