"""``repro-warp`` — command-line front end of the warp service.

Two subcommands::

    repro-warp suite [--benchmarks brev,matmul] [--configs paper,minimal]
                     [--engines threaded,interp] [--small] [--workers N]
                     [--repeat N] [--out report.json]

runs the built-in suite sweep (benchmarks × configurations × engines)
through the service, and ::

    repro-warp jobs examples/service_jobs.json [--workers N] [--out ...]

runs a declarative job file.  Job files are JSON::

    {"jobs": [
        {"name": "brev-fast", "benchmark": "brev", "engine": "threaded"},
        {"name": "brev-nobs", "benchmark": "brev", "small": true,
         "priority": 5, "config": {"use_barrel_shifter": false},
         "config_label": "no-bs"},
        {"name": "greedy", "benchmark": "idct",
         "stages": ["decompile", "synthesis", "place", "route-greedy",
                    "implement", "binary-update"]},
        {"name": "inline", "source": "int main() { ... }"}
    ]}

where ``config`` holds :class:`~repro.microblaze.config.MicroBlazeConfig`
field overrides applied to the paper configuration and ``stages``
optionally swaps registered CAD flow passes (see
:func:`repro.cad.available_stage_names`).  Both subcommands print the
suite-level speedup/energy tables and write the full JSON report (per-job
metrics, CAD-cache and per-stage hit/miss counters, per-stage wall times)
to ``--out``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..microblaze.config import MINIMAL_CONFIG, PAPER_CONFIG, MicroBlazeConfig
from .jobs import JobSpecError, ServiceReport, WarpJob, suite_sweep_jobs
from .pool import WarpService

#: Named processor configurations selectable from the command line.
NAMED_CONFIGS: Dict[str, MicroBlazeConfig] = {
    "paper": PAPER_CONFIG,
    "minimal": MINIMAL_CONFIG,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-warp",
        description="Batch warp-processing service: run warp jobs over a "
                    "worker pool with a content-addressed CAD cache.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workers", type=int, default=0,
                         help="pool worker processes (0 = serial in-process, "
                              "the default)")
        sub.add_argument("--policy", choices=("priority", "fifo"),
                         default="priority", help="job ordering policy")
        sub.add_argument("--out", type=Path, default=None,
                         help="write the JSON report here")
        sub.add_argument("--quiet", action="store_true",
                         help="suppress the table output")

    suite = subparsers.add_parser(
        "suite", help="run the built-in suite sweep (benchmarks × configs "
                      "× engines)")
    suite.add_argument("--benchmarks", default=None,
                       help="comma-separated benchmark names "
                            "(default: the full six-benchmark suite)")
    suite.add_argument("--configs", default="paper",
                       help=f"comma-separated configuration names from "
                            f"{sorted(NAMED_CONFIGS)} (default: paper)")
    suite.add_argument("--engines", default="threaded",
                       help="comma-separated engines from (threaded, interp)")
    suite.add_argument("--small", action="store_true",
                       help="use the reduced-size benchmark parameters")
    suite.add_argument("--repeat", type=int, default=1,
                       help="run the sweep N times through one service "
                            "(later repeats are served by the CAD cache)")
    common(suite)

    jobs = subparsers.add_parser("jobs", help="run a JSON job file")
    jobs.add_argument("jobfile", type=Path)
    common(jobs)
    return parser


# --------------------------------------------------------------------------- job files
def _config_from_spec(spec: Dict, job_name: str) -> MicroBlazeConfig:
    if not isinstance(spec, dict):
        raise JobSpecError(f"job {job_name!r}: 'config' must be an object of "
                           f"MicroBlazeConfig field overrides")
    valid = {field.name for field in dataclasses.fields(MicroBlazeConfig)}
    unknown = set(spec) - valid
    if unknown:
        raise JobSpecError(f"job {job_name!r}: unknown config fields "
                           f"{sorted(unknown)}")
    # Only scalar fields are overridable from a job file; structured fields
    # (the pipeline timing table) would also break the frozen config's
    # hashability, which the scheduler's dedup key relies on.
    for key, value in spec.items():
        if not isinstance(value, (bool, int, float)) or value is None:
            raise JobSpecError(
                f"job {job_name!r}: config field {key!r} must be a scalar "
                f"(bool/int/float), got {type(value).__name__}"
            )
    try:
        return dataclasses.replace(PAPER_CONFIG, **spec)
    except (TypeError, ValueError) as error:
        raise JobSpecError(f"job {job_name!r}: invalid config overrides: "
                           f"{error}") from error


def _int_field(entry: Dict, key: str, default: int, path: Path) -> int:
    value = entry.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobSpecError(f"{path}: job {entry['name']!r}: {key!r} must be "
                           f"an integer, got {type(value).__name__}")
    return value


def load_job_file(path: Path) -> List[WarpJob]:
    """Parse a JSON job file into :class:`WarpJob` specs."""
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise JobSpecError(f"{path}: not valid JSON: {error}") from error
    entries = payload.get("jobs") if isinstance(payload, dict) else None
    if not isinstance(entries, list) or not entries:
        raise JobSpecError(f"{path}: expected an object with a non-empty "
                           f"'jobs' array")
    jobs: List[WarpJob] = []
    allowed = {"name", "benchmark", "source", "small", "engine", "priority",
               "max_instructions", "config", "config_label", "stages"}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or "name" not in entry:
            raise JobSpecError(f"{path}: job #{index} must be an object with "
                               f"a 'name'")
        unknown = set(entry) - allowed
        if unknown:
            raise JobSpecError(f"{path}: job {entry['name']!r} has unknown "
                               f"fields {sorted(unknown)}")
        config_spec = entry.get("config", {})
        config = _config_from_spec(config_spec, entry["name"]) if config_spec \
            else PAPER_CONFIG
        jobs.append(WarpJob(
            name=entry["name"],
            benchmark=entry.get("benchmark"),
            source=entry.get("source"),
            small=bool(entry.get("small", False)),
            config=config,
            config_label=entry.get("config_label",
                                   "custom" if config_spec else "paper"),
            engine=entry.get("engine"),
            priority=_int_field(entry, "priority", 0, path),
            max_instructions=_int_field(entry, "max_instructions",
                                        50_000_000, path),
            # Shape, registry membership and slot coverage are validated by
            # WarpJob itself (JobSpecError).
            stages=entry.get("stages"),
        ))
    return jobs


def _split(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


# --------------------------------------------------------------------------- entry point
def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    try:
        if args.command == "suite":
            configs = []
            for label in _split(args.configs):
                if label not in NAMED_CONFIGS:
                    raise JobSpecError(f"unknown config {label!r}; choose "
                                       f"from {sorted(NAMED_CONFIGS)}")
                configs.append((label, NAMED_CONFIGS[label]))
            engines = _split(args.engines)
            benchmarks = _split(args.benchmarks) if args.benchmarks else None
            jobs = suite_sweep_jobs(configs=configs, engines=engines,
                                    benchmarks=benchmarks, small=args.small)
            repeats = max(1, args.repeat)
        else:
            jobs = load_job_file(args.jobfile)
            repeats = 1
    except JobSpecError as error:
        print(f"repro-warp: {error}", file=sys.stderr)
        return 2

    with WarpService(workers=args.workers, policy=args.policy) as service:
        reports: List[ServiceReport] = []
        for _ in range(repeats):
            reports.append(service.run(jobs))
    report = reports[-1]

    if not args.quiet:
        for index, item in enumerate(reports):
            if repeats > 1:
                print(f"--- sweep {index + 1}/{repeats} ---")
            print(item.summary())
            print()

    if args.out is not None:
        plain = report.to_plain()
        if repeats > 1:
            # The top level IS the final sweep; earlier sweeps are listed
            # separately (no duplicate serialization of the last one).
            plain["repeat_count"] = repeats
            plain["earlier_sweeps"] = [item.to_plain()
                                       for item in reports[:-1]]
        args.out.write_text(json.dumps(plain, indent=2) + "\n")
        if not args.quiet:
            print(f"report written to {args.out}")

    # A failure in *any* sweep fails the invocation, not just the last one
    # (a warm repeat can mask a cold-sweep worker death otherwise).
    return 1 if any(item.num_failed for item in reports) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
