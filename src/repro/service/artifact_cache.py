"""Content-addressed cache for on-chip CAD artifacts.

The expensive part of a warp job is not the simulation — it is the CAD
flow the dynamic partitioning module runs for each critical region:
synthesis, technology mapping, placement, routing and implementation.
Two jobs that partition *the same loop body* onto *the same WCLA* produce
identical artifacts, no matter which benchmark instance, processor core or
sweep configuration the loop came from.  The same decode-once instinct
that drives binary-translation caches (revamb's translated-block reuse,
the threaded-code engine of PR 1) applies one level up: perform the CAD
work once per distinct (kernel, fabric) content, then serve every repeat
from the cache.

The key is a SHA-256 over

* the *canonical form* of the kernel's decompiled dataflow graph — a
  deterministic, address-independent serialization of the register
  updates, stores, continue condition and live-in set.  Region byte
  addresses are deliberately excluded: the same loop body linked at a
  different address (or running on a different core of a
  :class:`~repro.warp.multiprocessor.MultiProcessorWarpSystem`) hits;
* the WCLA parameters (fabric geometry and timing, memory ports, register
  count — every field of the frozen dataclasses), because they shape all
  four artifact stages.

The cached value bundles all four stage outputs.  The bundle's
``implementation`` references the *cached* kernel; this is sound because
everything downstream (the WCLA execution engine, the timing/area/energy
models) depends only on content the key covers.  Per-run quantities — the
binary patch and the modelled on-chip partitioning time, which depend on
the region's concrete addresses — stay outside the cache.

The store is the repo-wide :class:`repro.caching.BoundedLRU`, so the
compile cache and the artifact cache share one eviction/accounting
implementation and one ``clear()`` convention.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..caching import BoundedLRU
from ..decompile.expr import (
    BinExpr,
    Condition,
    Const,
    LiveIn,
    Load,
    Mux,
    Node,
    UnExpr,
)
from ..decompile.kernel import HardwareKernel
from ..decompile.symexec import SymbolicLoopBody
from ..fabric.architecture import WclaParameters
from ..fabric.implementation import HardwareImplementation
from ..fabric.place import PlacementResult
from ..fabric.route import RoutingResult
from ..synthesis.datapath import SynthesisResult

#: Bump whenever the canonical serialization below changes shape.
CANONICAL_FORM_VERSION = 1


# --------------------------------------------------------------------------- canonical form
def _serialize_node(node: Node, memo: Dict[int, int],
                    lines: List[str]) -> int:
    """Append ``node`` (postorder) to ``lines`` and return its line index.

    Identity-memoized: the expression DAG is structurally hashed by its
    builder, so shared sub-terms serialize once and references are by line
    index — structurally identical DAGs produce identical line sequences
    regardless of the ``node_id`` values the builder happened to assign.
    """
    index = memo.get(id(node))
    if index is not None:
        return index
    if isinstance(node, Const):
        line = f"const {node.value & 0xFFFFFFFF}"
    elif isinstance(node, LiveIn):
        line = f"live r{node.register}"
    elif isinstance(node, BinExpr):
        left = _serialize_node(node.left, memo, lines)
        right = _serialize_node(node.right, memo, lines)
        line = f"bin {node.op.value} {left} {right}"
    elif isinstance(node, UnExpr):
        operand = _serialize_node(node.operand, memo, lines)
        line = f"un {node.op.value} {operand}"
    elif isinstance(node, Load):
        address = _serialize_node(node.address, memo, lines)
        line = f"load w{node.width} seq{node.sequence} {address}"
    elif isinstance(node, Mux):
        condition = _serialize_node(node.condition, memo, lines)
        if_true = _serialize_node(node.if_true, memo, lines)
        if_false = _serialize_node(node.if_false, memo, lines)
        line = f"mux {condition} {if_true} {if_false}"
    elif isinstance(node, Condition):
        value = _serialize_node(node.value, memo, lines)
        line = f"cond {node.relation} {value}"
    else:  # pragma: no cover - defensive: new node kinds must be added here
        raise TypeError(f"cannot canonicalize node {node!r}")
    lines.append(line)
    memo[id(node)] = len(lines) - 1
    return len(lines) - 1


def canonical_body_form(body: SymbolicLoopBody) -> str:
    """Deterministic, address-independent text form of one loop body's DADG.

    Register updates are emitted in register order, stores in program
    order, the continue condition last, followed by the live-in set — the
    complete content the CAD flow consumes.  Two regions with the same
    canonical form synthesize, place and route identically.
    """
    memo: Dict[int, int] = {}
    lines: List[str] = [f"v{CANONICAL_FORM_VERSION}"]
    for register in sorted(body.register_updates):
        index = _serialize_node(body.register_updates[register], memo, lines)
        lines.append(f"update r{register} {index}")
    for store in body.stores:
        address = _serialize_node(store.address, memo, lines)
        value = _serialize_node(store.value, memo, lines)
        guard = (-1 if store.guard is None
                 else _serialize_node(store.guard, memo, lines))
        lines.append(f"store w{store.width} seq{store.sequence} "
                     f"{address} {value} {guard}")
    if body.continue_condition is not None:
        index = _serialize_node(body.continue_condition, memo, lines)
        lines.append(f"continue {index}")
    lines.append("livein " + ",".join(str(r)
                                      for r in sorted(body.live_in_registers)))
    return "\n".join(lines)


def canonical_wcla_form(wcla: WclaParameters) -> str:
    """Deterministic text form of the WCLA parameters (frozen dataclasses
    have a stable field-ordered ``repr``)."""
    return repr(wcla)


def artifact_cache_key(kernel: HardwareKernel, wcla: WclaParameters) -> str:
    """SHA-256 content address of ``(kernel DADG canonical form, WCLA)``."""
    digest = hashlib.sha256()
    digest.update(canonical_body_form(kernel.body).encode())
    digest.update(b"\x00")
    digest.update(canonical_wcla_form(wcla).encode())
    return digest.hexdigest()


# --------------------------------------------------------------------------- the cache
@dataclass
class CadArtifacts:
    """The four memoized stage outputs of one (kernel, WCLA) content."""

    synthesis: SynthesisResult
    placement: PlacementResult
    routing: RoutingResult
    implementation: HardwareImplementation


class CadArtifactCache:
    """Bounded content-addressed store of :class:`CadArtifacts`.

    One instance is typically shared per process: the serial service path
    keeps a module-level instance, every pool worker owns its own (warmed
    for the worker's lifetime), and a
    :class:`~repro.warp.multiprocessor.MultiProcessorWarpSystem` shares one
    across its cores, mirroring the paper's single DPM serving all
    processors.
    """

    def __init__(self, maxsize: Optional[int] = 256):
        self._lru = BoundedLRU(maxsize)

    # ------------------------------------------------------------------ lookup
    def key_for(self, kernel: HardwareKernel, wcla: WclaParameters) -> str:
        return artifact_cache_key(kernel, wcla)

    def lookup(self, key: str) -> Optional[CadArtifacts]:
        """Fetch by key, counting a hit or a miss."""
        return self._lru.get(key)

    def store(self, key: str, artifacts: CadArtifacts) -> None:
        self._lru.put(key, artifacts)

    def clear(self) -> None:
        self._lru.clear()

    # -------------------------------------------------------------- accounting
    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def counters(self) -> Tuple[int, int]:
        """``(hits, misses)`` snapshot for per-job delta accounting."""
        return self._lru.counters()

    def stats(self) -> Dict:
        return self._lru.stats()
