"""Compatibility shim — the CAD artifact cache moved to :mod:`repro.cad`.

The content-addressed cache, the artifact bundle type and the canonical
forms used to live here, which made the partitioning layer import from the
service layer above it.  Their home is now the :mod:`repro.cad` package
(next to the staged flow that produces them); this module re-exports the
public names so existing ``repro.service.artifact_cache`` imports keep
working.  See :mod:`repro.cad.keys` for the key-versioning rules and
:mod:`repro.cad.artifacts` for the per-stage cache semantics.
"""

from __future__ import annotations

from ..cad.artifacts import (
    CadArtifactCache,
    CadArtifacts,
    CapacityRejection,
    is_negative_artifact,
)
from ..cad.keys import (
    CANONICAL_FORM_VERSION,
    artifact_cache_key,
    canonical_body_form,
    canonical_wcla_form,
)

__all__ = [
    "CANONICAL_FORM_VERSION",
    "CadArtifactCache",
    "CadArtifacts",
    "CapacityRejection",
    "artifact_cache_key",
    "canonical_body_form",
    "canonical_wcla_form",
    "is_negative_artifact",
]
