"""Warp-as-a-service: batch orchestration for the warp pipeline.

The paper frames dynamic hw/sw partitioning as a *service* the platform
performs transparently on running binaries.  This package scales that
framing from one simulation to batches:

* :mod:`~repro.service.jobs` — declarative :class:`WarpJob` specs
  (benchmark or source × processor configuration × WCLA × engine),
  flat :class:`ServiceResult` outcomes, suite-level :class:`ServiceReport`
  tables reusing the Figure-6/7 row builders.
* :mod:`~repro.service.scheduler` — content deduplication plus
  priority/FIFO ordering.
* :mod:`~repro.service.pool` — a process worker pool with a serial
  in-process fallback, per-worker warm caches and worker-fault isolation;
  :class:`WarpService` ties scheduler, pool and cache together.
* :mod:`~repro.service.artifact_cache` — compatibility shim over
  :mod:`repro.cad`, the home of the staged CAD flow and its two-level
  (whole-bundle + per-stage) content-addressed cache.
* :mod:`~repro.service.cli` — the ``repro-warp`` command-line front end.

CPU checkpoint/restore — the primitive behind job preemption, migration
and scenario fan-out — lives at the simulator layer in
:mod:`repro.microblaze.checkpoint`.
"""

from ..cad import (
    CadArtifactCache,
    CadArtifacts,
    CapacityRejection,
    artifact_cache_key,
    canonical_body_form,
)
from .jobs import (
    SERVICE_PLATFORM_ORDER,
    JobSpecError,
    ServiceReport,
    ServiceResult,
    WarpJob,
    suite_sweep_jobs,
)
from .pool import (
    STORE_ENV_VAR,
    WarpService,
    configure_process_store,
    execute_job,
    process_artifact_cache,
)
from .scheduler import JobScheduler, ScheduledJob

__all__ = [
    "CadArtifactCache",
    "CadArtifacts",
    "CapacityRejection",
    "artifact_cache_key",
    "canonical_body_form",
    "SERVICE_PLATFORM_ORDER",
    "JobSpecError",
    "ServiceReport",
    "ServiceResult",
    "WarpJob",
    "suite_sweep_jobs",
    "WarpService",
    "execute_job",
    "process_artifact_cache",
    "configure_process_store",
    "STORE_ENV_VAR",
    "JobScheduler",
    "ScheduledJob",
]
