"""Job scheduling: content deduplication and priority/FIFO ordering.

The scheduler turns a batch of submitted :class:`~repro.service.jobs.WarpJob`
specs into an execution plan:

* **deduplication** — jobs with equal :meth:`~repro.service.jobs.WarpJob.
  dedup_key` compute byte-identical results, so only the first submission
  executes; its twins are recorded as duplicates and fanned back out after
  execution (each duplicate gets a copy of the primary's result tagged
  with ``deduped_from``).  A duplicate's priority still counts: the
  executed job runs at the *highest* priority of its group.
* **ordering** — ``policy="priority"`` (default) runs higher ``priority``
  first, FIFO within a priority level; ``policy="fifo"`` preserves pure
  submission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .jobs import ServiceResult, WarpJob, expand_duplicate

_POLICIES = ("priority", "fifo")


@dataclass
class ScheduledJob:
    """One executable slot of the plan: a primary job plus its twins."""

    job: WarpJob
    sequence: int
    #: Effective priority (max over the dedup group).
    priority: int
    duplicates: List[WarpJob] = field(default_factory=list)

    @property
    def fan_out(self) -> int:
        """How many submitted jobs this slot satisfies."""
        return 1 + len(self.duplicates)

    @property
    def timeout_s(self):
        """Effective wall-clock budget: the *tightest* timeout across the
        dedup group — one execution satisfies every twin, so it must meet
        the strictest submitter's deadline.  ``None`` when no job of the
        group set one."""
        timeouts = [job.timeout_s
                    for job in [self.job] + self.duplicates
                    if job.timeout_s is not None]
        return min(timeouts) if timeouts else None


class JobScheduler:
    """Deduplicating priority/FIFO scheduler for warp jobs."""

    def __init__(self, policy: str = "priority"):
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose one of "
                             f"{_POLICIES}")
        self.policy = policy
        self._slots: List[ScheduledJob] = []
        self._by_key: Dict[Tuple, ScheduledJob] = {}
        self._names: set = set()
        self._sequence = 0

    # -------------------------------------------------------------- submission
    def add(self, job: WarpJob) -> ScheduledJob:
        """Submit one job; returns the slot that will satisfy it."""
        if job.name in self._names:
            raise ValueError(f"duplicate job name {job.name!r}; names must "
                             f"be unique within a batch")
        self._names.add(job.name)
        key = job.dedup_key()
        slot = self._by_key.get(key)
        if slot is not None:
            slot.duplicates.append(job)
            slot.priority = max(slot.priority, job.priority)
            return slot
        slot = ScheduledJob(job=job, sequence=self._sequence,
                            priority=job.priority)
        self._sequence += 1
        self._slots.append(slot)
        self._by_key[key] = slot
        return slot

    def add_many(self, jobs: Sequence[WarpJob]) -> None:
        for job in jobs:
            self.add(job)

    # --------------------------------------------------------------- the plan
    @property
    def num_submitted(self) -> int:
        return len(self._names)

    @property
    def num_unique(self) -> int:
        return len(self._slots)

    def plan(self) -> List[ScheduledJob]:
        """The execution order under the configured policy."""
        if self.policy == "fifo":
            return sorted(self._slots, key=lambda slot: slot.sequence)
        return sorted(self._slots,
                      key=lambda slot: (-slot.priority, slot.sequence))

    # ------------------------------------------------------------------ fan-out
    @staticmethod
    def expand(slot: ScheduledJob, result: ServiceResult) -> List[ServiceResult]:
        """The primary's result plus one tagged copy per duplicate."""
        return [result] + [expand_duplicate(result, twin)
                           for twin in slot.duplicates]
