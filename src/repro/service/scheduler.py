"""Job scheduling: content deduplication and priority/FIFO ordering.

The scheduler turns a batch of submitted :class:`~repro.service.jobs.WarpJob`
specs into an execution plan:

* **deduplication** — jobs with equal :meth:`~repro.service.jobs.WarpJob.
  dedup_key` compute byte-identical results, so only the first submission
  executes; its twins are recorded as duplicates and fanned back out after
  execution (each duplicate gets a copy of the primary's result tagged
  with ``deduped_from``).  A duplicate's priority still counts: the
  executed job runs at the *highest* priority of its group.
* **ordering** — ``policy="priority"`` (default) runs higher ``priority``
  first, FIFO within a priority level; ``policy="fifo"`` preserves pure
  submission order.
* **aging** — with an ``aging_interval_s``, a waiting slot's *effective*
  priority grows by one level per full interval waited
  (:func:`aged_priority`), so sustained high-priority traffic can delay a
  low-priority submission but never starve it.  Off by default: a
  scheduler that plans a batch once has no meaningful wait, so the
  classic instantaneous plan stays bit-identical.  The gateway's batch
  queue uses the same helper with its own clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .jobs import ServiceResult, WarpJob, expand_duplicate

_POLICIES = ("priority", "fifo")

#: Default aging cadence (seconds of waiting per priority level gained)
#: for callers that turn aging on without picking their own interval.
DEFAULT_AGING_INTERVAL_S = 30.0


def aged_priority(priority: int, waited_s: float,
                  aging_interval_s: Optional[float]) -> int:
    """Effective priority of a submission that has waited ``waited_s``.

    One priority level is gained per *full* ``aging_interval_s`` waited,
    so ordering within an interval is unchanged and a low-priority
    submission overtakes priority ``P`` traffic after at most
    ``(P - priority) * aging_interval_s`` seconds of waiting.  ``None``
    (or a non-positive interval) disables aging.
    """
    if aging_interval_s is None or aging_interval_s <= 0 or waited_s <= 0:
        return priority
    return priority + int(waited_s // aging_interval_s)


@dataclass
class ScheduledJob:
    """One executable slot of the plan: a primary job plus its twins."""

    job: WarpJob
    sequence: int
    #: Effective priority (max over the dedup group).
    priority: int
    duplicates: List[WarpJob] = field(default_factory=list)
    #: When the slot was submitted (the aging clock; monotonic seconds).
    enqueued_monotonic: float = 0.0

    @property
    def fan_out(self) -> int:
        """How many submitted jobs this slot satisfies."""
        return 1 + len(self.duplicates)

    @property
    def timeout_s(self):
        """Effective wall-clock budget: the *tightest* timeout across the
        dedup group — one execution satisfies every twin, so it must meet
        the strictest submitter's deadline.  ``None`` when no job of the
        group set one."""
        timeouts = [job.timeout_s
                    for job in [self.job] + self.duplicates
                    if job.timeout_s is not None]
        return min(timeouts) if timeouts else None


class JobScheduler:
    """Deduplicating priority/FIFO scheduler for warp jobs.

    ``aging_interval_s`` turns on priority aging for the ``priority``
    policy: :meth:`plan` ranks each slot by its :func:`aged_priority` at
    planning time, so a long-lived scheduler (the gateway's batch queue)
    cannot starve old low-priority work behind a stream of fresh
    high-priority submissions.  The default (``None``) keeps the classic
    instantaneous plan.
    """

    def __init__(self, policy: str = "priority",
                 aging_interval_s: Optional[float] = None):
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose one of "
                             f"{_POLICIES}")
        self.policy = policy
        self.aging_interval_s = aging_interval_s
        self._slots: List[ScheduledJob] = []
        self._by_key: Dict[Tuple, ScheduledJob] = {}
        self._names: set = set()
        self._sequence = 0

    # -------------------------------------------------------------- submission
    def add(self, job: WarpJob,
            enqueued_monotonic: Optional[float] = None) -> ScheduledJob:
        """Submit one job; returns the slot that will satisfy it.

        ``enqueued_monotonic`` stamps the slot's aging clock (defaults to
        now); a deduplicated twin keeps the group's *earliest* stamp, so
        re-submitting content never resets its accumulated age.
        """
        if job.name in self._names:
            raise ValueError(f"duplicate job name {job.name!r}; names must "
                             f"be unique within a batch")
        self._names.add(job.name)
        enqueued = time.monotonic() if enqueued_monotonic is None \
            else enqueued_monotonic
        key = job.dedup_key()
        slot = self._by_key.get(key)
        if slot is not None:
            slot.duplicates.append(job)
            slot.priority = max(slot.priority, job.priority)
            slot.enqueued_monotonic = min(slot.enqueued_monotonic, enqueued)
            return slot
        slot = ScheduledJob(job=job, sequence=self._sequence,
                            priority=job.priority,
                            enqueued_monotonic=enqueued)
        self._sequence += 1
        self._slots.append(slot)
        self._by_key[key] = slot
        return slot

    def add_many(self, jobs: Sequence[WarpJob]) -> None:
        for job in jobs:
            self.add(job)

    # --------------------------------------------------------------- the plan
    @property
    def num_submitted(self) -> int:
        return len(self._names)

    @property
    def num_unique(self) -> int:
        return len(self._slots)

    def effective_priority(self, slot: ScheduledJob,
                           now: Optional[float] = None) -> int:
        """The slot's priority after aging (its submitted priority when
        aging is off)."""
        if self.aging_interval_s is None:
            return slot.priority
        moment = time.monotonic() if now is None else now
        return aged_priority(slot.priority,
                             moment - slot.enqueued_monotonic,
                             self.aging_interval_s)

    def plan(self, now: Optional[float] = None) -> List[ScheduledJob]:
        """The execution order under the configured policy.

        ``now`` (a monotonic timestamp) fixes the aging clock for the
        whole plan — passed by tests for determinism, defaulted for
        callers.  Without aging, all slots share one effective priority
        clock and the plan is the classic ``(-priority, sequence)`` sort.
        """
        if self.policy == "fifo":
            return sorted(self._slots, key=lambda slot: slot.sequence)
        if self.aging_interval_s is None:
            return sorted(self._slots,
                          key=lambda slot: (-slot.priority, slot.sequence))
        moment = time.monotonic() if now is None else now
        return sorted(
            self._slots,
            key=lambda slot: (-self.effective_priority(slot, moment),
                              slot.sequence))

    # ------------------------------------------------------------------ fan-out
    @staticmethod
    def expand(slot: ScheduledJob, result: ServiceResult) -> List[ServiceResult]:
        """The primary's result plus one tagged copy per duplicate."""
        return [result] + [expand_duplicate(result, twin)
                           for twin in slot.duplicates]
