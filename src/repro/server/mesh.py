"""Consistent-hash gateway mesh: membership, routing, replication.

A **mesh** is a set of peer gateways that (a) partition routing keys
over a consistent-hash ring so clients send repeated content to the
member whose caches are warm for it, and (b) replicate warm
:class:`~repro.server.store.DiskArtifactStore` entries on demand — a
member that misses locally pulls the immutable, content-addressed entry
blob from a peer instead of re-synthesizing it.

Three pieces live here:

* :class:`HashRing` — the pure data structure.  Each node is hashed to
  ``vnodes`` positions on a 64-bit ring (:func:`repro.digest.digest_int`
  of ``"node#i"``); a key routes to the first node position at or after
  the key's own ring position.  Adding or removing one member therefore
  reshuffles only the key ranges adjacent to its virtual nodes —
  ~``1/N`` of the keyspace — where the fixed-list modulo hashing of
  :class:`~repro.server.client.RemoteWorkerBackend` reshuffles nearly
  everything.
* :class:`GatewayMesh` — a gateway's live membership view plus the
  peer-fetch client side.  Membership travels over additive ``WARPNET``
  verbs (``mesh-join`` / ``mesh-peers`` — no protocol version bump) and
  is deliberately simple: joins are explicit (``--peer`` / ``join_via``),
  a member that fails a fetch is dropped from the local view and
  re-admitted the next time it joins or is seen in a peer list.  Every
  membership change bumps ``ring_version`` so stale clients can detect
  they are behind.
* :class:`MeshBackend` — a drop-in ring-aware replacement for
  :class:`~repro.server.client.RemoteWorkerBackend`: routes each job by
  dedup-key ring position, marks submissions ``route="ring"`` (so a
  non-owner gateway forwards them onward instead of executing cold), and
  fails over by dropping a dead member from its ring — which re-routes
  only that member's key ranges.

Trust model: mesh peers are the same trust domain as a shared store
directory — entry blobs are pickles, so membership is explicit
configuration (``--peer``), never discovery.  Chaos sites
:data:`~repro.chaos.SITE_MESH_MEMBER` (contacting a member) and
:data:`~repro.chaos.SITE_PEER_FETCH` (one fetch attempt) fire inside
:meth:`GatewayMesh.fetch_blob`, and every injected failure degrades to
a local recompute — the chaos differential stays bit-identical.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .. import chaos, obs
from ..digest import digest_int
from ..retry import DEFAULT_REMOTE_POLICY, RetryPolicy
from ..service.jobs import ServiceResult, WarpJob
from . import protocol
from .client import (Address, DEFAULT_TIMEOUT, GatewayClient,
                     RemoteWorkerBackend, _drop_pooled_client,
                     _pooled_client, parse_address)

#: Virtual nodes per member.  More vnodes smooth the partition (the
#: per-member share concentrates toward 1/N) at the cost of a longer
#: sorted-positions array; 64 keeps the imbalance under ~25% for small
#: meshes while lookups stay a single bisect.
DEFAULT_VNODES = 64

#: Timeout for mesh control traffic (join/peers/fetch): these are
#: in-memory lookups on the peer, not CAD computations, so a member that
#: cannot answer quickly is treated as down.
MESH_TIMEOUT = 30.0


def format_address(address: Address) -> str:
    """Canonical ``"host:port"`` string form of a member address."""
    host, port = parse_address(address)
    return f"{host}:{port}"


class HashRing:
    """A consistent-hash ring over string node names.

    Positions are the 64-bit content digests of ``"<node>#<i>"`` for
    ``i`` in ``range(vnodes)``; a key owned by node ``n`` stays with
    ``n`` when unrelated members come or go.  Not thread-safe by itself
    — callers that mutate concurrently (the mesh) hold their own lock.
    """

    def __init__(self, nodes: Sequence[str] = (),
                 vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._nodes: set = set()
        self._positions: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def _rebuild(self) -> None:
        self._positions = sorted(
            (digest_int(f"{node}#{index}"), node)
            for node in self._nodes
            for index in range(self.vnodes))
        self._keys = [position for position, _ in self._positions]

    def add(self, node: str) -> bool:
        """Add a member; ``True`` if it was new."""
        if node in self._nodes:
            return False
        self._nodes.add(node)
        self._rebuild()
        return True

    def remove(self, node: str) -> bool:
        """Remove a member; ``True`` if it was present."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._rebuild()
        return True

    def node_for(self, key: str) -> Optional[str]:
        """The member owning ``key`` (``None`` on an empty ring)."""
        if not self._positions:
            return None
        index = bisect.bisect_right(self._keys, digest_int(key))
        if index == len(self._positions):
            index = 0           # wrap: past the last vnode -> the first
        return self._positions[index][1]


class GatewayMesh:
    """One gateway's membership view and peer-fetch client.

    Thread-safe: the gateway's concurrent batch executors (and the
    asyncio side via ``run_in_executor``) share one instance.  All
    counters are plain ints mirrored into ``warp_mesh_*`` metric
    families when telemetry is live.
    """

    def __init__(self, self_address: Address,
                 vnodes: int = DEFAULT_VNODES,
                 timeout: float = MESH_TIMEOUT):
        self.self_address = format_address(self_address)
        self.timeout = timeout
        self._lock = threading.Lock()
        self.ring = HashRing([self.self_address], vnodes=vnodes)
        self.ring_version = 1
        self.joins = 0
        self.member_drops = 0
        self.peer_fetch_hits = 0
        self.peer_fetch_misses = 0
        self.peer_fetch_failures = 0
        self._set_member_gauges_locked()

    # ------------------------------------------------------------- membership
    def _set_member_gauges_locked(self) -> None:
        if obs.ACTIVE is not None:
            obs.set_gauge("warp_mesh_members", float(len(self.ring)),
                          help_text="Gateway mesh members in the local "
                                    "ring view (including self).")
            obs.set_gauge("warp_mesh_ring_version",
                          float(self.ring_version),
                          help_text="Local mesh ring version (bumps on "
                                    "every membership change).")

    def add_member(self, address: Address) -> bool:
        """Admit a member into the local ring view (idempotent)."""
        member = format_address(address)
        with self._lock:
            added = self.ring.add(member)
            if added:
                self.ring_version += 1
                self.joins += 1
                self._set_member_gauges_locked()
        if added and obs.ACTIVE is not None:
            obs.inc("warp_mesh_joins_total",
                    help_text="Mesh members admitted into the local "
                              "ring view.")
        return added

    def drop_member(self, address: Address) -> bool:
        """Remove a member from the local view (it rejoins explicitly)."""
        member = format_address(address)
        if member == self.self_address:
            return False
        with self._lock:
            dropped = self.ring.remove(member)
            if dropped:
                self.ring_version += 1
                self.member_drops += 1
                self._set_member_gauges_locked()
        if dropped:
            if obs.ACTIVE is not None:
                obs.inc("warp_mesh_member_drops_total",
                        help_text="Mesh members dropped from the local "
                                  "ring view after a failure.")
        return dropped

    def handle_join(self, address: str) -> Dict:
        """Server side of ``mesh-join``: admit the caller, return our
        membership so it can merge."""
        self.add_member(address)
        return self.members()

    def absorb(self, members: Sequence[str]) -> None:
        """Merge a peer's member list into the local view (additive:
        members we dropped stay dropped until they rejoin *us*)."""
        for member in members:
            if member != self.self_address:
                self.add_member(member)

    def join_via(self, peer: Address) -> Dict:
        """Join the mesh through ``peer``: announce ourselves, then merge
        the membership it returns.  Raises on a dead peer — a bad
        ``--peer`` flag should fail loudly at startup, not silently
        leave the gateway meshless."""
        with GatewayClient(peer, timeout=self.timeout) as client:
            reply = client.mesh_join(self.self_address)
        self.add_member(peer)
        self.absorb(reply.get("members", ()))
        return reply

    def members(self) -> Dict:
        """The additive ``mesh`` info block for status/metrics replies."""
        with self._lock:
            return {
                "self": self.self_address,
                "members": list(self.ring.nodes),
                "ring_version": self.ring_version,
                "joins": self.joins,
                "member_drops": self.member_drops,
                "peer_fetch_hits": self.peer_fetch_hits,
                "peer_fetch_misses": self.peer_fetch_misses,
                "peer_fetch_failures": self.peer_fetch_failures,
            }

    # ------------------------------------------------------------- peer fetch
    def _fetch_candidates(self, ring_key: str) -> List[str]:
        """Peers to ask for an entry, ring owner first: the owner is the
        member whose caches the mesh keeps warm for this key, so it is
        the most likely holder; the rest are fallbacks."""
        with self._lock:
            peers = [node for node in self.ring.nodes
                     if node != self.self_address]
            if not peers:
                return []
            owner = self.ring.node_for(ring_key)
        if owner in peers:
            peers.remove(owner)
            peers.insert(0, owner)
        return peers

    def _count_fetch(self, outcome: str) -> None:
        if obs.ACTIVE is not None:
            obs.inc("warp_mesh_peer_fetches_total", result=outcome,
                    help_text="Mesh peer store-entry fetch attempts by "
                              "outcome.")

    def fetch_blob(self, stage: str, key: str) -> Optional[bytes]:
        """The store's ``peer_fetcher``: pull one raw entry blob from the
        mesh, or ``None`` — every failure (chaos-injected or real)
        degrades to a miss, and a member that cannot be reached is
        dropped from the local ring view."""
        label = f"{stage}-{key}"
        for member in self._fetch_candidates(label):
            if chaos.ACTIVE_PLAN is not None:
                try:
                    chaos.fire(chaos.SITE_MESH_MEMBER, label=member)
                except ConnectionResetError:
                    # An injected member failure: drop it, try the next.
                    with self._lock:
                        self.peer_fetch_failures += 1
                    self._count_fetch("error")
                    self.drop_member(member)
                    continue
            try:
                if chaos.ACTIVE_PLAN is not None:
                    chaos.fire(chaos.SITE_PEER_FETCH, label=label)
                with _pooled_client(parse_address(member),
                                    self.timeout) as client:
                    blob = client.mesh_fetch(stage, key)
            except chaos.ChaosError:
                with self._lock:
                    self.peer_fetch_failures += 1
                self._count_fetch("error")
                continue
            except (protocol.ProtocolError, TimeoutError,
                    ConnectionError, OSError, EOFError):
                _drop_pooled_client(parse_address(member))
                with self._lock:
                    self.peer_fetch_failures += 1
                self._count_fetch("error")
                self.drop_member(member)
                continue
            if blob is not None:
                with self._lock:
                    self.peer_fetch_hits += 1
                self._count_fetch("hit")
                return blob
            with self._lock:
                self.peer_fetch_misses += 1
            self._count_fetch("miss")
        return None


class MeshBackend(RemoteWorkerBackend):
    """Ring-aware remote worker backend.

    Same contract as :class:`~repro.server.client.RemoteWorkerBackend`
    (picklable ``worker_fn``, pooled connections, bounded retries) but
    jobs route by consistent-hash ring position of their dedup key, so
    membership changes re-route only ~``1/N`` of content — and
    submissions carry ``route="ring"`` so a gateway that is *not* the
    owner under its (possibly newer) ring forwards the batch onward
    rather than executing it against cold caches.

    Failover: a connection-level failure drops the dead member from the
    backend's ring (``_note_failure``), and the retry loop re-routes the
    job to the next owner.  :meth:`refresh_membership` re-synchronizes
    the ring with a live gateway's view (``mesh-peers``).
    """

    def __init__(self, addresses: Sequence[Address],
                 vnodes: int = DEFAULT_VNODES,
                 timeout: float = DEFAULT_TIMEOUT,
                 retry: RetryPolicy = DEFAULT_REMOTE_POLICY,
                 client_id: Optional[str] = None):
        super().__init__(addresses, timeout=timeout, retry=retry)
        self.vnodes = vnodes
        self.client_id = client_id
        self._ring_lock = threading.Lock()
        self._ring = HashRing(
            [format_address(address) for address in self.addresses],
            vnodes=vnodes)

    def address_for(self, job: WarpJob) -> Tuple[str, int]:
        with self._ring_lock:
            member = self._ring.node_for(repr(job.dedup_key()))
        if member is None:      # every member dropped: fall back to the
            member = format_address(self.addresses[0])  # configured list
        return parse_address(member)

    def _note_failure(self, address: Tuple[str, int]) -> None:
        member = format_address(address)
        with self._ring_lock:
            if len(self._ring) > 1:
                self._ring.remove(member)

    def refresh_membership(self, via: Optional[Address] = None) -> Dict:
        """Re-sync the routing ring from a gateway's ``mesh-peers`` view
        (``via`` defaults to the first configured address)."""
        target = parse_address(via) if via is not None else self.addresses[0]
        with _pooled_client(target, self.timeout) as client:
            reply = client.mesh_peers()
        members = reply.get("members") or [format_address(target)]
        with self._ring_lock:
            self._ring = HashRing(members, vnodes=self.vnodes)
        return reply

    def _submit_once(self, address: Tuple[str, int],
                     job: WarpJob) -> ServiceResult:
        with _pooled_client(address, self.timeout) as client:
            report = client.submit([job], wait=True,
                                   client_id=self.client_id, route="ring")
        if not report.results:
            raise protocol.ProtocolError("gateway returned an empty report")
        return report.results[0]

    def ring_members(self) -> Tuple[str, ...]:
        with self._ring_lock:
            return self._ring.nodes

    # Pickled like the base backend: the ring is rebuilt from the
    # configured addresses in the worker process.
    def __getstate__(self) -> Dict:
        state = super().__getstate__()
        state["vnodes"] = self.vnodes
        state["client_id"] = self.client_id
        return state

    def __setstate__(self, state: Dict) -> None:
        super().__setstate__(state)
        self.vnodes = state.get("vnodes", DEFAULT_VNODES)
        self.client_id = state.get("client_id")
        self._ring_lock = threading.Lock()
        self._ring = HashRing(
            [format_address(address) for address in self.addresses],
            vnodes=self.vnodes)
