"""The ``WARPNET`` wire protocol: length-prefixed JSON frames.

Every message on a gateway connection is one *frame*: a 4-byte big-endian
length followed by that many bytes of UTF-8 JSON.  JSON (not pickle)
deliberately: a gateway listens on a socket, and nothing read off a
socket may ever reach a deserializer that can execute code.  The frame
codec is shared by the blocking client, the asyncio client and the
gateway, in both directions.

Connection lifecycle::

    client                         gateway
    ------                         -------
    {"magic": "WARPNET",
     "version": 1}          ->
                            <-     {"magic": "WARPNET", "version": 1,
                                    "ok": true}
    {"verb": "submit", ...} ->
                            <-     {"ok": true, ...}        (or rejection)
    ...                            (any number of verbs per connection)

The handshake is versioned: a gateway that does not speak the client's
protocol version answers ``{"ok": false, "error": "version-mismatch"}``
and closes, so old clients fail with one clear message instead of a
JSON parse error three verbs later.

Verbs (the request's ``"verb"`` field): ``submit`` (a batch of jobs;
``wait`` for the report, or get a ``batch_id`` back), ``status``,
``stream-results`` (one frame per result, then a ``done`` frame),
``cache-stats``, ``metrics`` (the live telemetry snapshot: aggregated
metric families plus trace spans since a ``since`` cursor; pass
``"spans": false`` to skip span payloads), the mesh verbs ``mesh-join``
(announce a gateway address; the reply carries the receiver's member
list), ``mesh-peers`` (membership + ring version + peer-fetch counters)
and ``mesh-fetch`` (one raw store entry blob, base64 inside the JSON
frame — additive verbs per the versioning discipline below, NOT a
version bump), and ``shutdown``.  A ``submit`` may carry the additive
``client`` (per-client quota attribution) and ``route``/``forwarded``
keys (``route="ring"`` lets a mesh gateway forward a stale-ring
submission to the ring owner; the reply then gains ``forwarded_to``).
Error replies are
``{"ok": false, "error": <kind>, "message": ...}``; the admission-control
rejection additionally carries ``"code": 429`` and the queue occupancy so
clients can implement typed backpressure handling
(:class:`GatewayBusyError`).

Job and result payloads travel as plain JSON objects.  A job's processor
configuration and WCLA parameters are serialized field-by-field
(nested frozen dataclasses), so a job constructed on one machine
reconstructs bit-identically on another — which is what keeps the
content-addressed CAD keys, and therefore the distributed cache affinity,
stable across the wire.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence

from .. import chaos
from ..fabric.architecture import FabricParameters, WclaParameters
from ..microblaze.config import MicroBlazeConfig, PipelineTimings
from ..service.jobs import JobSpecError, WarpJob

#: Handshake magic and protocol version (bump on any frame-shape change).
#:
#: Versioning discipline: the version bumps only when an existing frame
#: shape changes incompatibly.  *Adding* reply keys is explicitly not a
#: bump — payloads are JSON objects and every decoder reads them with
#: ``.get()``, so old clients ignore keys they do not know.  This is how
#: the ``busy`` rejection grew ``queue_depth``/``queue_limit`` and the
#: ``draining`` rejection was introduced without breaking version-1
#: clients: an old client still sees a well-formed error reply; only new
#: clients exploit the extra fields for proportional backoff.
PROTOCOL_MAGIC = "WARPNET"
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload; a length prefix beyond this is
#: treated as a corrupt/hostile stream, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# --------------------------------------------------------------------------- errors
class ProtocolError(Exception):
    """The peer sent bytes that are not valid WARPNET frames."""


class HandshakeError(ProtocolError):
    """The peer speaks a different protocol (or none at all)."""


class GatewayBusyError(Exception):
    """Typed 429-style rejection: the gateway's admission queue is full.

    Carries the gateway's queue occupancy so callers can back off
    intelligently instead of string-matching an error message.
    """

    def __init__(self, message: str, pending_jobs: int = 0,
                 queue_limit: int = 0, queue_depth: Optional[int] = None):
        super().__init__(message)
        self.pending_jobs = pending_jobs
        self.queue_limit = queue_limit
        #: Jobs currently queued; falls back to ``pending_jobs`` for
        #: replies from gateways that predate the field.
        self.queue_depth = pending_jobs if queue_depth is None \
            else queue_depth

    def occupancy(self) -> float:
        """Queue fullness in [0, 1] — drives proportional client backoff."""
        if self.queue_limit <= 0:
            return 1.0
        return min(1.0, self.queue_depth / self.queue_limit)


class GatewayDrainingError(Exception):
    """Typed rejection: the gateway is draining — it is finishing the
    batch already running but accepts no new submissions.  Not a
    transient fault: retrying against the same gateway is pointless,
    callers should fail over or report the job as rejected."""


class RemoteError(Exception):
    """The gateway answered a verb with a non-busy error reply."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind


# --------------------------------------------------------------------------- frame codec
def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One frame: 4-byte big-endian length + compact UTF-8 JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") \
            from error
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


def frame_length(prefix: bytes) -> int:
    """Validate and decode the 4-byte length prefix."""
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return length


# ------------------------------------------------------------- blocking transport
#
# The wire injection sites live on the *blocking* transport — the client
# boundary of the channel.  Faulting either direction here exercises the
# full channel (a truncated write reaches the gateway as an EOF
# mid-frame; an injected reset on read is what a dropped gateway reply
# looks like), and it is the side that owns a retry policy.


def _abort_socket(sock) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass


def send_frame(sock, payload: Dict[str, Any]) -> None:
    blob = encode_frame(payload)
    if chaos.ACTIVE_PLAN is not None:
        injection = chaos.fire(chaos.SITE_WIRE_WRITE,
                               label=str(payload.get("verb", "")))
        if injection is not None and injection.kind == "truncate":
            sock.sendall(injection.mangle(blob))
            _abort_socket(sock)
            raise ConnectionResetError(
                "chaos: frame truncated on the wire")
    sock.sendall(blob)


def _recv_exactly(sock, count: int) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None  # clean EOF on a frame boundary
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    if chaos.ACTIVE_PLAN is not None:
        # "reset" rules raise ConnectionResetError from fire(); a
        # data-shape injection on the read side means the peer's frame
        # was cut short, which a real reader sees as a mid-frame close.
        injection = chaos.fire(chaos.SITE_WIRE_READ)
        if injection is not None:
            _abort_socket(sock)
            raise ProtocolError("chaos: connection closed mid-frame")
    prefix = _recv_exactly(sock, _LENGTH.size)
    if prefix is None:
        return None
    body = _recv_exactly(sock, frame_length(prefix))
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


# --------------------------------------------------------------- async transport
async def write_frame(writer, payload: Dict[str, Any]) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


async def read_frame(reader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from error
    try:
        body = await reader.readexactly(frame_length(prefix))
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    return decode_body(body)


# ------------------------------------------------------------------- handshake
def hello_frame() -> Dict[str, Any]:
    return {"magic": PROTOCOL_MAGIC, "version": PROTOCOL_VERSION}


def check_hello(frame: Optional[Dict[str, Any]]) -> None:
    """Validate the peer's handshake frame (either direction)."""
    if frame is None:
        raise HandshakeError("peer closed the connection before the "
                             "WARPNET handshake")
    if frame.get("magic") != PROTOCOL_MAGIC:
        raise HandshakeError(f"peer is not a WARPNET endpoint "
                             f"(magic={frame.get('magic')!r})")
    if frame.get("version") != PROTOCOL_VERSION:
        raise HandshakeError(
            f"protocol version mismatch: peer speaks WARPNET "
            f"{frame.get('version')!r}, this build speaks "
            f"{PROTOCOL_VERSION}"
        )
    if frame.get("ok") is False:
        raise HandshakeError(f"gateway refused the handshake: "
                             f"{frame.get('message', 'no reason given')}")


def raise_for_error(reply: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Turn an error reply into the matching typed exception."""
    if reply is None:
        raise ProtocolError("gateway closed the connection instead of "
                            "replying")
    if reply.get("ok", False):
        return reply
    kind = reply.get("error", "unknown")
    message = reply.get("message", "no detail")
    if kind == "busy":
        raise GatewayBusyError(message,
                               pending_jobs=reply.get("pending_jobs", 0),
                               queue_limit=reply.get("queue_limit", 0),
                               queue_depth=reply.get("queue_depth"))
    if kind == "draining":
        raise GatewayDrainingError(message)
    raise RemoteError(kind, message)


# ---------------------------------------------------------------- job codecs
def config_to_plain(config: MicroBlazeConfig) -> Dict[str, Any]:
    return dataclasses.asdict(config)


def config_from_plain(plain: Dict[str, Any]) -> MicroBlazeConfig:
    fields = dict(plain)
    fields["timings"] = PipelineTimings(**fields["timings"])
    return MicroBlazeConfig(**fields)


def wcla_to_plain(wcla: WclaParameters) -> Dict[str, Any]:
    return dataclasses.asdict(wcla)


def wcla_from_plain(plain: Dict[str, Any]) -> WclaParameters:
    fields = dict(plain)
    fields["fabric"] = FabricParameters(**fields["fabric"])
    return WclaParameters(**fields)


def job_to_plain(job: WarpJob) -> Dict[str, Any]:
    """Serialize one job for the wire (full config/WCLA, not overrides)."""
    return {
        "name": job.name,
        "benchmark": job.benchmark,
        "source": job.source,
        "small": job.small,
        "config": config_to_plain(job.config),
        "config_label": job.config_label,
        "wcla": wcla_to_plain(job.wcla),
        "engine": job.engine,
        "max_instructions": job.max_instructions,
        "priority": job.priority,
        "stages": list(job.stages) if job.stages is not None else None,
        "timeout_s": job.timeout_s,
        "trace_id": job.trace_id,
        # Fuzz-campaign jobs (additive keys — absent for classic jobs on
        # old senders, defaulted below; not a protocol version bump).
        "fuzz_profile": job.fuzz_profile,
        "fuzz_seed": job.fuzz_seed,
        "fuzz_count": job.fuzz_count,
        "fuzz_engines": list(job.fuzz_engines)
        if job.fuzz_engines is not None else None,
        "fuzz_precise": job.fuzz_precise,
    }


def job_from_plain(plain: Dict[str, Any]) -> WarpJob:
    """Reconstruct a job; malformed payloads raise :class:`JobSpecError`."""
    if not isinstance(plain, dict) or "name" not in plain:
        raise JobSpecError("wire job must be an object with a 'name'")
    try:
        config = config_from_plain(plain["config"])
        wcla = wcla_from_plain(plain["wcla"])
    except (KeyError, TypeError, ValueError) as error:
        raise JobSpecError(f"wire job {plain.get('name')!r}: bad config/"
                           f"wcla payload: {error}") from error
    stages = plain.get("stages")
    fuzz_engines = plain.get("fuzz_engines")
    return WarpJob(
        name=plain["name"],
        benchmark=plain.get("benchmark"),
        source=plain.get("source"),
        small=bool(plain.get("small", False)),
        config=config,
        config_label=plain.get("config_label", "paper"),
        wcla=wcla,
        engine=plain.get("engine"),
        max_instructions=plain.get("max_instructions", 50_000_000),
        priority=plain.get("priority", 0),
        stages=tuple(stages) if stages is not None else None,
        timeout_s=plain.get("timeout_s"),
        trace_id=plain.get("trace_id"),
        fuzz_profile=plain.get("fuzz_profile"),
        fuzz_seed=plain.get("fuzz_seed", 0),
        fuzz_count=plain.get("fuzz_count", 25),
        fuzz_engines=tuple(fuzz_engines)
        if fuzz_engines is not None else None,
        fuzz_precise=bool(plain.get("fuzz_precise", False)),
    )


def jobs_to_plain(jobs: Sequence[WarpJob]) -> List[Dict[str, Any]]:
    return [job_to_plain(job) for job in jobs]


def jobs_from_plain(entries: Sequence[Dict[str, Any]]) -> List[WarpJob]:
    if not isinstance(entries, list) or not entries:
        raise JobSpecError("submit payload must carry a non-empty job list")
    return [job_from_plain(entry) for entry in entries]
